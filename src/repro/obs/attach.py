"""Adapters wiring the bus onto engines, runs, and batch lanes.

This is the only module that knows both vocabularies: engine-side
snapshots (:class:`repro.sim.trace.RoundSnapshot`) on one side, bus
events on the other. Dependencies flow strictly extension -> core:
``repro.obs`` imports the simulation layer, never the reverse -- the
engine only ever sees an opaque callable appended to its
``observers`` list, and pays a single boolean check per round when
nothing is attached.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.obs.bus import ObserverBus
from repro.obs.events import (
    ConvergenceUpdate,
    PhaseAdvanced,
    RoundCompleted,
    RunFinished,
)
from repro.sim.metrics import PhaseRangeSeries

# Phase-0 ranges below this are treated as already collapsed when
# computing running contraction rates (matches PhaseRangeSeries).
_RATE_FLOOR = 1e-15


class EngineAdapter:
    """Translate per-round snapshots into bus events.

    An instance is a valid entry for ``engine.observers`` (called as
    ``adapter(engine, snapshot)``). Watched nodes are the fault plan's
    fault-free set, resolved on first call; per-phase ranges are
    tracked with the same :class:`PhaseRangeSeries` semantics the
    runner uses (Definition 6 jump-filling included).
    """

    def __init__(self, bus: ObserverBus) -> None:
        self.bus = bus
        self._watched: tuple[int, ...] | None = None
        self._series: PhaseRangeSeries | None = None
        self._max_phase = 0

    def __call__(self, engine: Any, snapshot: Any) -> None:
        if self._watched is None:
            self._watched = tuple(sorted(engine.fault_plan.fault_free))
            self._series = PhaseRangeSeries(self._watched)
        states = snapshot.states
        values: list[float] = []
        phases: list[int] = []
        for node in self._watched:
            state = states.get(node)
            if state is None:
                continue
            values.append(float(state["value"]))
            phases.append(int(state["phase"]))
        spread = (max(values) - min(values)) if values else 0.0
        self.bus.publish(
            RoundCompleted(
                round=snapshot.round,
                delivered=snapshot.delivered,
                bits=snapshot.bits,
                live_senders=len(snapshot.live_senders),
                spread=spread,
                min_phase=min(phases) if phases else 0,
                max_phase=max(phases) if phases else 0,
            )
        )
        self._series.observe_states(states)
        top = max(phases) if phases else 0
        if top > self._max_phase:
            self.bus.publish(
                PhaseAdvanced(
                    round=snapshot.round, phase=top, previous=self._max_phase
                )
            )
            for phase in range(self._max_phase + 1, top + 1):
                before = self._series.range_of(phase - 1)
                current = self._series.range_of(phase)
                rate = None
                if current is not None and before is not None and before > _RATE_FLOOR:
                    rate = current / before
                self.bus.publish(
                    ConvergenceUpdate(
                        round=snapshot.round,
                        phase=phase,
                        phase_range=current,
                        rate=rate,
                    )
                )
            self._max_phase = top


def attach_engine(bus: ObserverBus, engine: Any) -> EngineAdapter:
    """Register a snapshot adapter on an already-built engine."""
    adapter = EngineAdapter(bus)
    engine.observers.append(adapter)
    return adapter


def run_finisher(bus: ObserverBus) -> Callable[[Any, Any], None]:
    """An ``on_finish(engine, result)`` hook publishing RunFinished."""

    def on_finish(engine: Any, result: Any) -> None:
        values = engine.fault_free_values()
        ordered = [values[node] for node in sorted(values)]
        spread = (max(ordered) - min(ordered)) if ordered else 0.0
        bus.publish(
            RunFinished(
                rounds=engine.current_round,
                stopped=bool(result.stopped),
                spread=spread,
                delivered=engine.metrics.delivered,
                bits=engine.metrics.bits,
            )
        )

    return on_finish


def consensus_hooks(bus: ObserverBus) -> dict[str, Any]:
    """Keyword arguments attaching ``bus`` to one consensus run.

    Usage: ``run_consensus(..., **consensus_hooks(bus))`` -- supplies
    both the per-round ``observers`` entry and the ``on_finish`` hook.
    """
    return {
        "observers": (EngineAdapter(bus),),
        "on_finish": run_finisher(bus),
    }


def lane_finished(bus: ObserverBus, lane: Any) -> None:
    """Publish a :class:`RunFinished` for one batch lane result.

    Batch kernels report a :class:`repro.sim.batch.LaneResult` per
    lane; pass ``on_lane=lambda lane: lane_finished(bus, lane)`` to a
    batch runner to get one event per lane, in lane order.
    """
    outputs = [lane.outputs[node] for node in sorted(lane.outputs)]
    spread = (max(outputs) - min(outputs)) if outputs else 0.0
    bus.publish(
        RunFinished(
            rounds=lane.rounds,
            stopped=bool(lane.stopped),
            spread=spread,
            seed=lane.seed,
        )
    )
