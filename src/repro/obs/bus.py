"""The observer bus: typed publish/subscribe with deterministic order.

:class:`ObserverBus` is deliberately tiny -- a dict from event type to
handler list plus a list of catch-all observers -- because everything
interesting lives at the edges: adapters in :mod:`repro.obs.attach`
translate engine snapshots into events, and observers in
:mod:`repro.obs.observers` reduce events to summaries. Dispatch is
synchronous and in registration order, so a run with a fixed seed and
a fixed observer lineup produces a bit-identical event stream.

The bus is **read-only by contract**: handlers receive frozen events
and must never call mutating simulation APIs (the ``observer-readonly``
lint rule enforces this for everything under ``repro.obs``).
"""

from __future__ import annotations

from typing import Any, Callable


class ObserverBus:
    """Synchronous, deterministic event fan-out.

    Two subscription styles:

    - :meth:`subscribe` binds a callable to one event type;
    - :meth:`attach` registers an observer object whose ``on_event``
      method receives every event (the built-in observers' style,
      since most aggregate across several event types).

    ``publish`` delivers to attached observers first, then to
    type-specific handlers, each in registration order.
    """

    def __init__(self) -> None:
        self._handlers: dict[type, list[Callable[[Any], None]]] = {}
        self._observers: list[Any] = []

    def subscribe(
        self, event_type: type, handler: Callable[[Any], None]
    ) -> Callable[[Any], None]:
        """Call ``handler(event)`` for events of exactly ``event_type``."""
        self._handlers.setdefault(event_type, []).append(handler)
        return handler

    def attach(self, observer: Any) -> Any:
        """Register an object with ``on_event(event)``; returns it."""
        on_event = getattr(observer, "on_event", None)
        if not callable(on_event):
            raise TypeError(
                f"observer {observer!r} has no callable on_event method"
            )
        self._observers.append(observer)
        return observer

    @property
    def attached(self) -> tuple[Any, ...]:
        """The attached observer objects, in registration order."""
        return tuple(self._observers)

    def __len__(self) -> int:
        handler_count = sum(len(hs) for hs in self._handlers.values())
        return len(self._observers) + handler_count

    def publish(self, event: Any) -> None:
        """Deliver ``event`` synchronously to every subscriber."""
        for observer in self._observers:
            observer.on_event(event)
        for handler in self._handlers.get(type(event), ()):
            handler(event)
