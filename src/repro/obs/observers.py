"""Built-in observers: reusable reductions over the event stream.

Each observer is a plain object with ``on_event(event)`` (the
:meth:`~repro.obs.bus.ObserverBus.attach` contract) plus a
``summary()`` returning a JSON-ready dict of plain scalars. Summaries
are deterministic functions of the event stream, which is itself a
deterministic function of the run's seeds -- so a worker process can
ship its summary back to the parent and the parent can compare it
bit-for-bit against a serial rerun (the ``repro.sim.parallel``
forwarding contract is tested exactly that way).
"""

from __future__ import annotations

import json
import sys
from typing import Any, TextIO

from repro.analysis.convergence import fit_geometric_rate, summarize_rates
from repro.obs.events import (
    ConvergenceUpdate,
    PhaseAdvanced,
    RoundCompleted,
    RunFinished,
)


class MetricsAggregator:
    """Per-round delivered/bits/live-sender statistics.

    Streaming counterpart of :class:`repro.sim.metrics.MetricsCollector`
    that never stores per-round lists: O(1) state however long the run.
    """

    def __init__(self) -> None:
        self.rounds = 0
        self.delivered = 0
        self.bits = 0
        self.live_senders_min: int | None = None
        self.live_senders_max: int | None = None
        self._live_senders_sum = 0
        self.finished: dict[str, Any] | None = None

    def on_event(self, event: Any) -> None:
        if isinstance(event, RoundCompleted):
            self.rounds += 1
            self.delivered += event.delivered
            self.bits += event.bits
            live = event.live_senders
            self._live_senders_sum += live
            if self.live_senders_min is None or live < self.live_senders_min:
                self.live_senders_min = live
            if self.live_senders_max is None or live > self.live_senders_max:
                self.live_senders_max = live
        elif isinstance(event, RunFinished):
            self.finished = {
                "rounds": event.rounds,
                "stopped": event.stopped,
                "spread": event.spread,
            }

    def summary(self) -> dict[str, Any]:
        """Aggregate statistics as a JSON-ready dict."""
        rounds = self.rounds
        return {
            "rounds": rounds,
            "delivered": self.delivered,
            "bits": self.bits,
            "mean_bits_per_round": self.bits / rounds if rounds else 0.0,
            "live_senders_min": self.live_senders_min,
            "live_senders_max": self.live_senders_max,
            "mean_live_senders": (
                self._live_senders_sum / rounds if rounds else 0.0
            ),
            "finished": self.finished,
        }

    @staticmethod
    def merge_summaries(summaries: list[dict[str, Any]]) -> dict[str, Any]:
        """Combine per-run summaries into one sweep-level aggregate.

        Means are re-derived from the merged totals (not averaged over
        runs), so merging is associative and order-independent.
        """
        rounds = sum(s["rounds"] for s in summaries)
        delivered = sum(s["delivered"] for s in summaries)
        bits = sum(s["bits"] for s in summaries)
        mins = [
            s["live_senders_min"]
            for s in summaries
            if s["live_senders_min"] is not None
        ]
        maxes = [
            s["live_senders_max"]
            for s in summaries
            if s["live_senders_max"] is not None
        ]
        sender_sum = sum(s["mean_live_senders"] * s["rounds"] for s in summaries)
        return {
            "runs": len(summaries),
            "rounds": rounds,
            "delivered": delivered,
            "bits": bits,
            "mean_bits_per_round": bits / rounds if rounds else 0.0,
            "live_senders_min": min(mins) if mins else None,
            "live_senders_max": max(maxes) if maxes else None,
            "mean_live_senders": sender_sum / rounds if rounds else 0.0,
        }


class ConvergenceTracker:
    """Range-shrink telemetry from :class:`ConvergenceUpdate` events.

    Collects the running ``range(V(p))`` sequence and reduces it with
    the same :mod:`repro.analysis` reductions the result tables use
    (:func:`summarize_rates`, :func:`fit_geometric_rate`) -- so live
    progress and post-hoc analysis speak the same units.
    """

    def __init__(self) -> None:
        self._ranges: list[float | None] = []
        self._rates: list[float] = []

    def on_event(self, event: Any) -> None:
        if isinstance(event, ConvergenceUpdate):
            while len(self._ranges) <= event.phase:
                self._ranges.append(None)
            self._ranges[event.phase] = event.phase_range
            if event.rate is not None:
                self._rates.append(event.rate)

    @property
    def range_series(self) -> list[float | None]:
        """Running ``range(V(p))`` by phase (``None`` = not yet seen)."""
        return list(self._ranges)

    def summary(self) -> dict[str, Any]:
        """Rates summary plus a geometric fit over the range series."""
        return {
            "phases": len(self._ranges),
            "rates": summarize_rates(self._rates),
            "geometric_rate": fit_geometric_rate(self._ranges),
        }


class ProgressReporter:
    """Live progress: human lines to a stream, machine rows to JSONL.

    ``every`` controls the round sampling period for
    :class:`RoundCompleted`; :class:`PhaseAdvanced` and
    :class:`RunFinished` always report. Output carries no wall-clock
    or host state -- lines are a pure function of the event stream, so
    two runs of the same seed tail identically.
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        jsonl_path: Any | None = None,
        every: int = 100,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self._stream = stream if stream is not None else sys.stderr
        self._jsonl = open(jsonl_path, "w") if jsonl_path is not None else None

    def on_event(self, event: Any) -> None:
        if isinstance(event, RoundCompleted):
            if event.round % self.every != 0:
                return
            self._emit(
                f"round {event.round}: spread={event.spread:.3g} "
                f"phases=[{event.min_phase},{event.max_phase}] "
                f"live={event.live_senders}",
                {
                    "event": "round",
                    "round": event.round,
                    "spread": event.spread,
                    "min_phase": event.min_phase,
                    "max_phase": event.max_phase,
                    "live_senders": event.live_senders,
                },
            )
        elif isinstance(event, PhaseAdvanced):
            self._emit(
                f"round {event.round}: phase {event.previous} -> {event.phase}",
                {
                    "event": "phase",
                    "round": event.round,
                    "phase": event.phase,
                    "previous": event.previous,
                },
            )
        elif isinstance(event, RunFinished):
            self._emit(
                f"finished: rounds={event.rounds} stopped={event.stopped} "
                f"spread={event.spread:.3g}",
                {
                    "event": "finished",
                    "rounds": event.rounds,
                    "stopped": event.stopped,
                    "spread": event.spread,
                },
            )

    def _emit(self, line: str, row: dict[str, Any]) -> None:
        self._stream.write(line + "\n")
        if self._jsonl is not None:
            self._jsonl.write(json.dumps(row) + "\n")
            self._jsonl.flush()

    def close(self) -> None:
        """Close the JSONL file, if one was opened (idempotent)."""
        if self._jsonl is not None and not self._jsonl.closed:
            self._jsonl.close()

    def __enter__(self) -> ProgressReporter:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
