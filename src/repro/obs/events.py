"""Typed, immutable events on the observability bus.

Every event is a frozen dataclass of plain scalars -- no references
into live engine state -- so holding an event can never mutate (or
even pin) a run, and serializing one for a progress stream is just
``dataclasses.asdict``. The catalogue mirrors what the paper's
experiments watch: round-level delivery accounting
(:class:`RoundCompleted`), phase structure (:class:`PhaseAdvanced`),
per-phase ``range(V(p))`` contraction (:class:`ConvergenceUpdate`),
and the final verdict inputs (:class:`RunFinished`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RoundCompleted:
    """One round finished; delivery and watched-state aggregates."""

    round: int
    delivered: int
    bits: int
    live_senders: int
    #: max - min of the watched (fault-free) node values after the round.
    spread: float
    min_phase: int
    max_phase: int


@dataclass(frozen=True)
class PhaseAdvanced:
    """The maximum phase across watched nodes increased this round."""

    round: int
    #: The new maximum phase.
    phase: int
    #: The maximum phase before this round.
    previous: int


@dataclass(frozen=True)
class ConvergenceUpdate:
    """A new phase ``p`` opened; the contraction observed so far.

    ``phase_range`` is ``range(V(phase))`` at emission time and
    ``rate`` is ``range(V(phase)) / range(V(phase - 1))``; both are
    *running* figures -- laggards entering an old phase later can still
    widen its multiset -- so they are progress telemetry, while final
    tables should keep using the runner's post-hoc series.
    """

    round: int
    phase: int
    phase_range: float | None
    rate: float | None


@dataclass(frozen=True)
class RunFinished:
    """One execution (or batch lane) ended."""

    rounds: int
    stopped: bool
    #: Final spread of the watched values (0.0 when none are known).
    spread: float
    delivered: int = 0
    bits: int = 0
    #: Lane seed for batched runs; ``None`` for single executions.
    seed: int | None = None
