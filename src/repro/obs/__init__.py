"""Read-only observability plane (the SentientOS extension contract).

Observers are optional, strictly read-only, and dependencies flow
extension -> core: this package imports the simulation layer, the
simulation layer never imports it. A run with nothing attached pays a
single boolean check per round; a run with a bus attached gets typed
events (:mod:`repro.obs.events`) fanned out deterministically
(:mod:`repro.obs.bus`) into streaming reductions
(:mod:`repro.obs.observers`). See ``docs/observability.md``.
"""

from repro.obs.attach import (
    EngineAdapter,
    attach_engine,
    consensus_hooks,
    lane_finished,
    run_finisher,
)
from repro.obs.bus import ObserverBus
from repro.obs.events import (
    ConvergenceUpdate,
    PhaseAdvanced,
    RoundCompleted,
    RunFinished,
)
from repro.obs.observers import (
    ConvergenceTracker,
    MetricsAggregator,
    ProgressReporter,
)

__all__ = [
    "ConvergenceTracker",
    "ConvergenceUpdate",
    "EngineAdapter",
    "MetricsAggregator",
    "ObserverBus",
    "PhaseAdvanced",
    "ProgressReporter",
    "RoundCompleted",
    "RunFinished",
    "attach_engine",
    "consensus_hooks",
    "lane_finished",
    "run_finisher",
]
