"""Scenario command line: run single executions from a shell.

Usage::

    python -m repro.cli dac --n 9 --f 4 --epsilon 1e-3 --window 3
    python -m repro.cli dbac --n 11 --f 2 --strategy extreme
    python -m repro.cli theorem9 --n 8
    python -m repro.cli theorem10 --f 1
    python -m repro.cli figure1
    python -m repro.cli dac --save-trace run.json
    python -m repro.cli dac --n 9 --f 4 --observe --trace-out run.jsonl
    python -m repro.cli sweep --n 5 9 13 --window 1 2 --repeats 5 --workers 4
    python -m repro.cli sweep --n 9 --repeats 32 --workers 4 --batch 8
    python -m repro.cli sweep --family dbac --n 11 16 --strategy extreme --batch 8
    python -m repro.cli sweep --n 9 --workers 4 --batch 8 --pool fresh --no-arenas
    python -m repro.cli sweep --spec "algorithm: averaging@1(n=6); rounds: 40"
    python -m repro.cli spec "algorithm: dac@1(n=9); network: dynadegree@1(window=3)"
    python -m repro.cli serve --port 8787 --cache results.jsonl --workers 4
    python -m repro.cli submit "algorithm: dac@1(n=9); rounds: 500" --seeds 0 1 2
    python -m repro.cli submit - --stream < scenario.json

Exit status is 0 when the run's verdict matches the theory (correct
for the positive scenarios, violating for the impossibility ones).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.adversary.periodic import figure1_adversary
from repro.core.dac import DACProcess
from repro.net.ports import random_ports
from repro.sim.persistence import save_trace
from repro.sim.rng import child_rng
from repro.sim.runner import ExecutionReport, run_consensus
from repro.workloads import (
    TRIAL_BYZANTINE_STRATEGIES as _STRATEGIES,
    build_dac_execution,
    build_dbac_execution,
    theorem9_split_execution,
    theorem10_split_execution,
)


def _print_report(report: ExecutionReport, verbose: bool) -> None:
    print(report.summary())
    if verbose:
        print(f"  inputs  : { {k: round(v, 4) for k, v in sorted(report.inputs.items())} }")
        print(f"  outputs : { {k: round(v, 4) for k, v in sorted(report.outputs.items())} }")
        print(f"  promise : {report.dynadegree_promise} verified={report.dynadegree_verified}")
        print(f"  ranges  : {[None if r is None else round(r, 5) for r in report.phase_ranges]}")
        print(f"  rates   : {[round(r, 4) for r in report.convergence_rates]}")
        if report.metrics:
            print(
                f"  traffic : {report.metrics.delivered} msgs, "
                f"{report.metrics.bits} bits over {report.metrics.rounds} rounds"
            )


def _maybe_save(report: ExecutionReport, path: str | None) -> None:
    if path and report.trace is not None:
        save_trace(report.trace, path)
        print(f"  trace saved to {path}")


def _observation(args: argparse.Namespace, n: int):
    """(run_consensus extras, finish callback) for --observe/--trace-out.

    ``--observe`` wires a fresh observer bus (live progress on stderr,
    metrics summary printed by ``finish``); ``--trace-out`` streams
    the execution through a v3 :class:`TraceWriter` spill instead of
    holding the trace in memory. Both are read-only: the run is
    bit-identical with or without them.
    """
    extras: dict = {}
    closers = []
    if getattr(args, "observe", False):
        from repro.obs import (
            MetricsAggregator,
            ObserverBus,
            ProgressReporter,
            consensus_hooks,
        )

        bus = ObserverBus()
        aggregator = bus.attach(MetricsAggregator())
        bus.attach(ProgressReporter())
        extras.update(consensus_hooks(bus))

        def _print_metrics() -> None:
            summary = aggregator.summary()
            print(
                f"  observed: {summary['rounds']} rounds, "
                f"{summary['delivered']} msgs, {summary['bits']} bits, "
                f"live senders {summary['live_senders_min']}"
                f"-{summary['live_senders_max']}"
            )

        closers.append(_print_metrics)
    if getattr(args, "trace_out", None):
        from repro.sim.persistence import TraceWriter

        writer = TraceWriter(args.trace_out, n)
        extras["trace_sink"] = writer

        def _close_writer() -> None:
            writer.close()
            print(
                f"  trace   : {writer.rounds_written} rounds spilled "
                f"to {args.trace_out}"
            )

        closers.append(_close_writer)

    def finish() -> None:
        for closer in closers:
            closer()

    return extras, finish


def _cmd_dac(args: argparse.Namespace) -> int:
    kwargs = build_dac_execution(
        n=args.n,
        f=args.f,
        epsilon=args.epsilon,
        seed=args.seed,
        window=args.window,
        selector=args.selector,
    )
    extras, finish = _observation(args, kwargs["ports"].n)
    report = run_consensus(**kwargs, **extras)
    _print_report(report, args.verbose)
    finish()
    _maybe_save(report, args.save_trace)
    return 0 if report.correct else 1


def _cmd_dbac(args: argparse.Namespace) -> int:
    kwargs = build_dbac_execution(
        n=args.n,
        f=args.f,
        epsilon=args.epsilon,
        seed=args.seed,
        window=args.window,
        byzantine_factory=lambda node: _STRATEGIES[args.strategy](),
    )
    extras, finish = _observation(args, kwargs["ports"].n)
    report = run_consensus(**kwargs, **extras)
    _print_report(report, args.verbose)
    finish()
    _maybe_save(report, args.save_trace)
    ok = report.terminated and report.validity and report.epsilon_agreement
    return 0 if ok else 1


def _cmd_theorem9(args: argparse.Namespace) -> int:
    kwargs = theorem9_split_execution(
        n=args.n, seed=args.seed, eager_quorum=not args.plain
    )
    extras, finish = _observation(args, kwargs["ports"].n)
    report = run_consensus(**kwargs, **extras)
    _print_report(report, args.verbose)
    finish()
    _maybe_save(report, args.save_trace)
    expected = (not report.epsilon_agreement) if not args.plain else (not report.terminated)
    return 0 if expected else 1


def _cmd_theorem10(args: argparse.Namespace) -> int:
    kwargs = theorem10_split_execution(
        f=args.f, seed=args.seed, eager_quorum=not args.plain
    )
    extras, finish = _observation(args, kwargs["ports"].n)
    report = run_consensus(**kwargs, **extras)
    _print_report(report, args.verbose)
    finish()
    _maybe_save(report, args.save_trace)
    expected = (not report.epsilon_agreement) if not args.plain else (not report.terminated)
    return 0 if expected else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import inspect

    from repro.bench.sweep import Sweep
    from repro.scenario import SpecError, flat_params, parse_spec, resolve, spec_for

    if args.save_trace or args.trace_out:
        print("error: sweep runs untraced; --save-trace/--trace-out are not supported here")
        return 2
    try:
        if args.spec:
            if args.strategy is not None or args.sweep_selector is not None:
                print("error: with --spec, set strategy/selector inside the spec")
                return 2
            resolved = resolve(parse_spec(args.spec))
            ns = args.n if args.n is not None else [resolved.params["n"]]
        else:
            ns = args.n if args.n is not None else [5, 9]
            overrides: dict = {"n": ns[0], "epsilon": args.epsilon}
            if args.strategy is not None:
                overrides["strategy"] = args.strategy
            if args.sweep_selector is not None:
                overrides["selector"] = args.sweep_selector
            resolved = resolve(spec_for(args.family, overrides))
    except SpecError as exc:
        print(f"error: {exc}")
        return 2
    family = resolved.entry.name
    space = flat_params(resolved.entry)
    # Swept dimensions: explicit flags always; family-mode fills the
    # historical defaults, spec-mode leaves unswept knobs to the spec
    # (a single-value n dimension keeps the table grouping intact).
    grid: dict = {"n": ns}
    if args.window is not None:
        if "window" not in space:
            print(f"error: family {family!r} does not take --window")
            return 2
        grid["window"] = args.window
    elif not args.spec and "window" in space:
        grid["window"] = [1]
    if not args.spec and "epsilon" in space:
        # epsilon rides along as a single-value grid dimension so every
        # trial honors the common --epsilon flag (and records carry it).
        grid["epsilon"] = [args.epsilon]
    if not args.spec and family == "dbac":
        # DBAC grids historically carry the Byzantine strategy and
        # selector as single-value dimensions (records show them).
        grid["strategy"] = [resolved.params["strategy"]]
        grid["selector"] = [resolved.params["selector"]]
    if args.observe:
        # Per-trial observer bus: each record's result carries the
        # aggregator summary under "metrics" (identical at any
        # workers/batch -- batched forms delegate to observed serial
        # runs per seed).
        if "observe" not in inspect.signature(resolved.trial_fn).parameters:
            print(f"error: family {family!r} does not support --observe in sweeps")
            return 2
        grid["observe"] = [True]
    epsilon = resolved.params.get("epsilon", args.epsilon)
    if family == "dbac":
        title = (
            f"DBAC rounds to epsilon-spread (boundary adversary, "
            f"strategy={resolved.params['strategy']}, eps={epsilon:g})"
        )
    elif family == "dac":
        title = f"DAC rounds to output (boundary adversary, eps={epsilon:g})"
    else:
        title = (
            f"{family} rounds to stop "
            f"(spec {resolved.spec.content_hash[:12]}, eps={epsilon:g})"
        )
    sweep = Sweep(grid=grid, repeats=args.repeats, seed0=args.seed)
    started = time.perf_counter()
    sweep.run(
        # Spec mode: the spec's resolved params are the base and grid
        # cells override key-by-key. Family mode: the registry picks
        # the trial function, but cells carry only the explicit knobs,
        # so per-cell defaults (e.g. f from each cell's own n) keep the
        # historical CLI semantics.
        resolved.spec if args.spec else resolved.trial_fn,
        workers=args.workers,
        batch=args.batch,
        pool=args.pool,
        arenas=not args.no_arenas,
    )
    elapsed = time.perf_counter() - started
    table = sweep.to_table(
        *(("n", "window") if "window" in grid else ("n",)),
        title=title,
        value=lambda record: float(record.result["rounds"]),
    )
    print(table.render())
    if args.verbose:
        for record in sweep.records:
            cell = ", ".join(f"{k}={v}" for k, v in record.params)
            print(f"  {cell}, seed={record.seed}: {record.result}")
    trials = len(sweep.records)
    print(
        f"  {trials} trials in {elapsed:.2f}s "
        f"({trials / elapsed:.1f} trials/s, workers={args.workers}, "
        f"batch={args.batch})"
    )
    # dac/dbac sweeps assert the paper's positive results (correct);
    # other families (baselines, averaging, mobile omission) are run
    # *because* they may legitimately fail under the adversary, so
    # only a non-terminating trial is an error for them.
    verdict_key = "correct" if family in ("dac", "dbac") else "terminated"
    ok = all(record.result[verdict_key] for record in sweep.records)
    return 0 if ok else 1


def _cmd_spec(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.scenario import SpecError, resolve

    try:
        resolved = resolve(args.text)
    except SpecError as exc:
        print(f"error: {exc}")
        return 2
    canonical = resolved.canonical_spec()
    print(
        f"spec   : {canonical.content_hash}  "
        f"{resolved.entry.name}@{resolved.entry.version}"
    )
    for line in canonical.encode().splitlines():
        print(f"  {line}")
    summary = resolved.run(args.seed or None)
    print(f"result : {summary}")
    if args.out:
        payload = {
            "hash": canonical.content_hash,
            "spec": canonical.to_dict(),
            "params": dict(resolved.params),
            "result": summary,
        }
        Path(args.out).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )
        print(f"  resolved spec written to {args.out}")
    return 0 if summary["terminated"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import serve as service_serve

    def announce(host: str, port: int) -> None:
        cache = args.cache or "in-memory"
        print(
            f"repro service listening on http://{host}:{port} "
            f"(workers={args.workers}, batch={args.batch}, cache={cache})",
            flush=True,
        )

    try:
        asyncio.run(
            service_serve(
                host=args.host,
                port=args.port,
                cache_path=args.cache,
                workers=args.workers,
                batch=args.batch,
                queue_size=args.queue_size,
                # lint: ignore[worker-closure] — ready is called in-process
                # by serve() on bind, never shipped to a pool worker
                ready=announce,
            )
        )
    except KeyboardInterrupt:
        print("repro service stopped")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceClient, ServiceError

    spec = args.text
    if spec == "-":
        spec = sys.stdin.read()
    on_event = None
    if args.stream:

        def on_event(entry: dict) -> None:
            print(json.dumps(entry, sort_keys=True), file=sys.stderr)

    client = ServiceClient(args.host, args.port)
    try:
        payload = client.submit(
            spec, seeds=args.seeds, stream=args.stream, on_event=on_event
        )
    except ServiceError as exc:
        print(f"error: {exc}")
        return 2
    except OSError as exc:
        print(f"error: cannot reach service at {args.host}:{args.port} ({exc})")
        return 2
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"job    : {payload['job']}  scenario {payload['scenario']}")
        print(
            f"status : computed={payload['computed']} hit={payload['hit']} "
            f"coalesced={payload['coalesced']}"
        )
        for row in payload["results"]:
            print(f"  seed {row['seed']} [{row['status']}]: {row['result']}")
    ok = all(
        row["result"].get("terminated", True)
        for row in payload["results"]
        if isinstance(row["result"], dict)
    )
    return 0 if ok else 1


def _cmd_figure1(args: argparse.Namespace) -> int:
    n = 3
    ports = random_ports(n, child_rng(args.seed, "ports"))
    inputs = [0.0, 0.5, 1.0]
    processes = {
        v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=args.epsilon)
        for v in range(n)
    }
    extras, finish = _observation(args, n)
    report = run_consensus(
        processes,
        figure1_adversary(),
        ports,
        epsilon=args.epsilon,
        max_rounds=500,
        seed=args.seed,
        **extras,
    )
    _print_report(report, args.verbose)
    finish()
    _maybe_save(report, args.save_trace)
    return 0 if report.correct else 1


def build_parser() -> argparse.ArgumentParser:
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--seed", type=int, default=0)
    common.add_argument("--epsilon", type=float, default=1e-3)
    common.add_argument("-v", "--verbose", action="store_true")
    common.add_argument("--save-trace", metavar="PATH", default=None)
    common.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="stream the trace to PATH as chunked JSONL (format v3) "
        "while running -- O(chunk) memory however long the run",
    )
    common.add_argument(
        "--observe",
        action="store_true",
        help="attach the observer bus: live progress on stderr plus a "
        "metrics summary (sweep: per-trial metrics in the records)",
    )

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Run single consensus scenarios from the ICDCS'24 reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_dac = sub.add_parser("dac", parents=[common], help="DAC at the crash-model boundary")
    p_dac.add_argument("--n", type=int, default=9)
    p_dac.add_argument("--f", type=int, default=None)
    p_dac.add_argument("--window", type=int, default=1)
    p_dac.add_argument("--selector", choices=["rotate", "nearest", "random"], default="rotate")
    p_dac.set_defaults(fn=_cmd_dac)

    p_dbac = sub.add_parser("dbac", parents=[common], help="DBAC at the Byzantine boundary")
    p_dbac.add_argument("--n", type=int, default=11)
    p_dbac.add_argument("--f", type=int, default=None)
    p_dbac.add_argument("--window", type=int, default=1)
    p_dbac.add_argument("--strategy", choices=sorted(_STRATEGIES), default="extreme")
    p_dbac.set_defaults(fn=_cmd_dbac)

    p_t9 = sub.add_parser(
        "theorem9", parents=[common], help="the crash-model necessity construction"
    )
    p_t9.add_argument("--n", type=int, default=8)
    p_t9.add_argument("--plain", action="store_true", help="run real DAC (stalls)")
    p_t9.set_defaults(fn=_cmd_theorem9)

    p_t10 = sub.add_parser(
        "theorem10", parents=[common], help="the Byzantine necessity construction"
    )
    p_t10.add_argument("--f", type=int, default=1)
    p_t10.add_argument("--plain", action="store_true", help="run real DBAC (stalls)")
    p_t10.set_defaults(fn=_cmd_theorem10)

    p_fig = sub.add_parser(
        "figure1", parents=[common], help="DAC on the paper's Figure 1 adversary"
    )
    p_fig.set_defaults(fn=_cmd_figure1)

    from repro.scenario import algorithm_entries

    p_sweep = sub.add_parser(
        "sweep",
        parents=[common],
        help="registered-family grid sweep, optionally fanned out over "
        "worker processes",
    )
    p_sweep.add_argument("--n", type=int, nargs="+", default=None)
    p_sweep.add_argument("--window", type=int, nargs="+", default=None)
    p_sweep.add_argument("--repeats", type=int, default=3)
    p_sweep.add_argument(
        "--family",
        choices=sorted({entry.name for entry in algorithm_entries()}),
        default="dac",
        help="registered trial family (repro.scenario registry); every "
        "family batches and fans out identically",
    )
    p_sweep.add_argument(
        "--spec",
        metavar="SPEC",
        default=None,
        help="sweep a scenario spec instead of --family flags: a DSL "
        "one-liner (';'-separated sections) or JSON, see "
        "docs/scenarios.md; --n/--window still sweep over it",
    )
    p_sweep.add_argument(
        "--strategy",
        choices=sorted(_STRATEGIES),
        default=None,
        help="Byzantine strategy for families with a byzantine faults "
        "section (e.g. dbac)",
    )
    p_sweep.add_argument(
        "--selector",
        dest="sweep_selector",
        choices=["rotate", "nearest", "random"],
        default=None,
        help="adversary link selector for families with a dynadegree "
        "network section",
    )
    p_sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (0 = one per CPU); "
        "records are identical for every worker count",
    )
    p_sweep.add_argument(
        "--batch",
        type=int,
        default=1,
        help="trials advanced in lock-step per batched call "
        "(repro.sim.batch; composes with --workers); records are "
        "identical for every batch size",
    )
    p_sweep.add_argument(
        "--pool",
        choices=["persist", "fresh"],
        default="persist",
        help="worker-pool lifecycle: 'persist' (default) reuses one "
        "warm pool across sweeps in this process, 'fresh' spins a "
        "pool up per sweep; records are identical either way",
    )
    p_sweep.add_argument(
        "--no-arenas",
        action="store_true",
        help="disable shared-memory structure-table publication for "
        "batched dispatch (repro.sim.arena); a pure speed knob, "
        "records are identical either way",
    )
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_spec = sub.add_parser(
        "spec",
        parents=[common],
        help="resolve one scenario spec, print its canonical form and "
        "content hash, and run it",
    )
    p_spec.add_argument(
        "text",
        metavar="SPEC",
        help="scenario spec: DSL text (';' separates sections in a "
        "one-liner) or a JSON object, see docs/scenarios.md",
    )
    p_spec.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="write the resolved spec (canonical JSON + content hash + "
        "flat params + trial result) to PATH",
    )
    p_spec.set_defaults(fn=_cmd_spec)

    p_serve = sub.add_parser(
        "serve",
        help="run the consensus-as-a-service daemon: submit scenario "
        "specs over HTTP/JSON, results memoized in a content-addressed "
        "cache (repro.service, docs/service.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument(
        "--cache",
        metavar="PATH",
        default=None,
        help="append-only JSONL cache file; replayed on startup so "
        "results survive restarts (default: in-memory only)",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per job dispatch (0 = one per CPU); "
        "cached payloads are identical for every worker count",
    )
    p_serve.add_argument(
        "--batch",
        type=int,
        default=1,
        help="lock-step lanes per batched call for jobs whose family "
        "has a batched form",
    )
    p_serve.add_argument(
        "--queue-size",
        type=int,
        default=16,
        help="bounded job-queue depth; submissions past it wait "
        "(backpressure) instead of piling up",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_submit = sub.add_parser(
        "submit",
        help="submit one scenario spec to a running service daemon and "
        "print its (possibly cached) results",
    )
    p_submit.add_argument(
        "text",
        metavar="SPEC",
        help="scenario spec: DSL text or a JSON object ('-' reads from "
        "stdin), see docs/scenarios.md",
    )
    p_submit.add_argument("--host", default="127.0.0.1")
    p_submit.add_argument("--port", type=int, default=8787)
    p_submit.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=None,
        help="trial seeds to run (default: the spec's own seed); each "
        "seed is cached independently",
    )
    p_submit.add_argument(
        "--stream",
        action="store_true",
        help="stream the job's event log to stderr as JSONL while it "
        "runs (chunked HTTP response)",
    )
    p_submit.add_argument(
        "--json",
        action="store_true",
        help="print the raw response payload as JSON instead of the "
        "per-seed summary",
    )
    p_submit.set_defaults(fn=_cmd_submit)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "f", None) is None and args.command in ("dac", "dbac"):
        args.f = (args.n - 1) // 2 if args.command == "dac" else (args.n - 1) // 5
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
