"""Deterministic randomness discipline.

Every randomized component (input sampling, random adversaries,
Byzantine strategies, port shuffles) draws from its own child stream
derived from a single root seed and a string label. This keeps
executions bit-reproducible while guaranteeing that, say, adding one
extra draw inside the adversary never perturbs the workload inputs.
"""

from __future__ import annotations

import hashlib
import random

_SEED_BYTES = 8


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, label)``.

    The derivation is a SHA-256 of the textual pair, so it is stable
    across Python versions and platforms (unlike ``hash()``).
    """
    payload = f"{root_seed}/{label}".encode()
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:_SEED_BYTES], "big")


def child_rng(root_seed: int, label: str) -> random.Random:
    """A fresh :class:`random.Random` seeded from ``(root_seed, label)``."""
    return random.Random(derive_seed(root_seed, label))


def spawn_inputs(root_seed: int, n: int, low: float = 0.0, high: float = 1.0) -> list[float]:
    """Sample ``n`` initial inputs uniformly from ``[low, high]``.

    The paper scales inputs to ``[0, 1]`` without loss of generality;
    workloads may widen the interval to exercise the scaling argument.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if low > high:
        raise ValueError(f"empty input interval [{low}, {high}]")
    rng = child_rng(root_seed, "inputs")
    return [rng.uniform(low, high) for _ in range(n)]
