"""The synchronous round engine.

One round proceeds exactly as in Section II-A of the paper:

1. every node that is still transmitting produces its broadcast
   message (deterministically from its state); Byzantine strategies
   may produce a different message per receiver;
2. the message adversary -- shown an omniscient view of node states,
   this round's broadcasts, and the fault plan -- chooses the reliable
   link set ``E(t)``; messages sent over other links are lost;
3. each message that traverses a chosen link ``(u, v)`` is delivered
   to ``v`` tagged with ``v``'s local port for ``u``; in addition,
   every alive node reliably receives its own message (self-delivery
   cannot be disrupted by the adversary);
4. non-faulty nodes consume their delivery batch (sorted by port) and
   transition; Byzantine strategies observe their node's inbox.

The engine is deliberately single-threaded and deterministic: given the
same processes, adversary, ports, fault plan and seed, two runs produce
bit-identical traces (asserted by property tests).

Rounds run a **port-major delivery sweep**: instead of materializing
per-receiver inboxes edge by edge, each receiver's delivery batch is
built in one pass from its ``Topology.in_rows()`` row, pre-zipped with
its port bijection *in port order* (so the batch needs no sort),
against a per-round sender-message table with crash and omission masks
applied on the sender axis before fan-in. The per-receiver routing
plans are cached on the Topology instance itself
(:meth:`~repro.net.topology.Topology.routing_plan`), so stable or
cyclic schedules -- the common case, guaranteed by ``EdgeSchedule``
and the interned enforcing-adversary graphs -- pay the plan build once
per distinct graph, not per round. Traced and observer runs take the
same sweep (the :class:`~repro.sim.trace.RoundSnapshot` is assembled
*after* the sweep, from the sender message table's accounting); the
original sender-major loop survives as ``_run_round_legacy``, the
reference implementation both paths are pinned bit-identical against
by the differential harness in ``tests/helpers.py``.

Observation never reaches into the round: traces and observers consume
snapshots behind a single ``self.trace is not None or self.observers``
branch, so an unattached engine pays one boolean check per round and
nothing else (the ``repro.obs`` bus and the streaming trace spill both
plug in through that seam, from above).
"""

from __future__ import annotations

from bisect import insort
from collections.abc import Mapping
from dataclasses import dataclass
from itertools import repeat
from typing import Any, Callable

from repro.adversary.base import MessageAdversary
from repro.faults.base import FaultPlan
from repro.net.ports import PortNumbering
from repro.net.topology import Topology
from repro.sim.messages import PHASE_BITS, VALUE_BITS, StateMessage, message_bits

# One (value, phase) entry under the accounting convention -- the
# delivery sweep inlines the StateMessage case of message_bits.
_STATE_BITS = VALUE_BITS + PHASE_BITS
from repro.sim.metrics import MetricsCollector
from repro.sim.node import ConsensusProcess, Delivery
from repro.sim.rng import child_rng
from repro.sim.trace import ExecutionTrace, RoundSnapshot


def _pair_sender(pair: tuple[int, Any]) -> int:
    """Sort key for Byzantine observation merges (sender ID)."""
    return pair[0]


@dataclass(frozen=True)
class RoundRecord:
    """What one call to :meth:`Engine.run_round` did."""

    round: int
    graph: Topology
    delivered: int
    bits: int


class RunResult(int):
    """Round count returned by :meth:`Engine.run`, with early-stop info.

    Behaves exactly like the plain ``int`` number of rounds executed
    (so arithmetic and comparisons keep working), and carries
    ``stopped``: whether ``stop_when`` held when the run ended --
    either because it fired before a round, or via the documented
    final check after the last round.
    """

    stopped: bool

    def __new__(cls, rounds: int, stopped: bool) -> "RunResult":
        result = super().__new__(cls, rounds)
        result.stopped = stopped
        return result

    @property
    def rounds(self) -> int:
        """The number of rounds executed (the integer value itself)."""
        return int(self)

    def __getnewargs__(self) -> tuple[int, bool]:
        # int subclasses with a multi-argument __new__ need this for
        # pickle/copy -- and results containing a RunResult must ship
        # between the parallel layer's worker processes.
        return (int(self), self.stopped)

    def __repr__(self) -> str:
        return f"RunResult(rounds={int(self)}, stopped={self.stopped})"


class EngineView:
    """The omniscient per-round view handed to adversaries and Byzantine
    strategies.

    Exposes node states *at the beginning of the round* (before this
    round's deliveries) plus the messages being broadcast -- exactly
    the adversary's knowledge in the paper (states + deterministic
    algorithm specification).
    """

    def __init__(self, engine: "Engine", t: int, broadcasts: Mapping[int, Any]) -> None:
        self._engine = engine
        self._t = t
        # Shared, not copied: the engine never mutates a round's
        # broadcast map after constructing the view, and views live for
        # exactly one round.
        self._broadcasts = broadcasts

    @property
    def round(self) -> int:
        """The current round index."""
        return self._t

    @property
    def n(self) -> int:
        """Network size."""
        return self._engine.n

    @property
    def fault_plan(self) -> FaultPlan:
        """The execution's fault plan (adversaries may collude with faults)."""
        return self._engine.fault_plan

    @property
    def ports(self) -> PortNumbering:
        """The execution's port numberings.

        The adversary is omniscient, so it may inspect how each node
        labels its senders (it still cannot *change* the labels --
        the communication layer is authenticated).
        """
        return self._engine.ports

    def process(self, node: int) -> ConsensusProcess | None:
        """The process object at ``node`` (``None`` for Byzantine nodes)."""
        return self._engine.processes.get(node)

    def value(self, node: int) -> float | None:
        """Node's current scalar state, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.value

    def phase(self, node: int) -> int | None:
        """Node's current phase index, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.phase

    def broadcast_of(self, node: int) -> Any | None:
        """The message ``node`` is broadcasting this round (or ``None``)."""
        return self._broadcasts.get(node)

    def max_fault_free_phase(self) -> int:
        """Highest phase among fault-free nodes (0 when none exist)."""
        phases = [
            self._engine.processes[v].phase for v in self._engine.fault_plan.fault_free
        ]
        return max(phases, default=0)

    def live_senders(self) -> frozenset[int]:
        """Nodes transmitting fully this round (crash model awareness)."""
        return self._engine.fault_plan.live_senders(self._t)

    def live_senders_sorted(self) -> tuple[int, ...]:
        """:meth:`live_senders` as a memoized sorted tuple.

        Enforcing adversaries use this directly as a graph-memo key,
        skipping a per-round ``tuple(sorted(...))`` rebuild."""
        return self._engine.fault_plan.live_senders_sorted(self._t)

    def undecided_fault_free(self) -> frozenset[int]:
        """Fault-free nodes that have not output yet."""
        return frozenset(
            v
            for v in self._engine.fault_plan.fault_free
            if not self._engine.processes[v].has_output()
        )


class Engine:
    """Runs one execution: processes + adversary + ports + fault plan.

    Parameters
    ----------
    processes:
        ``node -> ConsensusProcess`` for every **non-Byzantine** node
        (crash-faulty nodes run the algorithm until they die).
    adversary:
        The message adversary choosing ``E(t)``.
    ports:
        The execution's port numberings.
    fault_plan:
        Crash events and Byzantine strategies; defaults to fault-free.
    f:
        The fault bound the nodes were configured with (used to bind
        Byzantine strategies; informational otherwise).
    seed:
        Root seed from which the adversary's and each Byzantine
        strategy's private streams are derived.
    record_trace:
        Set ``False`` to skip snapshotting (large sweeps).
    trace_sink:
        Optional override for where snapshots go: any object with a
        ``record(RoundSnapshot)`` method (e.g. a streaming
        :class:`repro.sim.persistence.TraceWriter` spilling rounds to
        disk). When given, it becomes :attr:`trace` in place of the
        in-memory :class:`~repro.sim.trace.ExecutionTrace`, so a
        traced run's memory stays O(chunk) instead of O(rounds). The
        engine only ever calls ``record``; lifecycle (flush/close) is
        the caller's.
    """

    def __init__(
        self,
        processes: Mapping[int, ConsensusProcess],
        adversary: MessageAdversary,
        ports: PortNumbering,
        fault_plan: FaultPlan | None = None,
        f: int = 0,
        seed: int = 0,
        record_trace: bool = True,
        byzantine_inputs: Mapping[int, float] | None = None,
        trace_sink: Any | None = None,
    ) -> None:
        self.n = ports.n
        self.ports = ports
        self.fault_plan = fault_plan or FaultPlan.fault_free_plan(self.n)
        if self.fault_plan.n != self.n:
            raise ValueError(
                f"fault plan is for n={self.fault_plan.n}, ports for n={self.n}"
            )
        self.processes: dict[int, ConsensusProcess] = dict(processes)
        expected = self.fault_plan.non_byzantine
        if set(self.processes) != set(expected):
            raise ValueError(
                "processes must cover exactly the non-Byzantine nodes "
                f"{sorted(expected)}, got {sorted(self.processes)}"
            )
        self.adversary = adversary
        self.adversary.setup(self.n, self.fault_plan, child_rng(seed, "adversary"))
        byz_inputs = dict(byzantine_inputs or {})
        for node, strategy in self.fault_plan.byzantine.items():
            strategy.bind(
                node,
                self.n,
                f,
                byz_inputs.get(node, 0.0),
                child_rng(seed, f"byzantine-{node}"),
            )
        self.metrics = MetricsCollector()
        # ``trace`` is duck-typed on ``record(RoundSnapshot)``: the
        # in-memory ExecutionTrace by default, or any caller-supplied
        # sink (streaming spill writers) -- the engine never imports
        # the persistence layer.
        if trace_sink is not None:
            self.trace: Any | None = trace_sink
        else:
            self.trace = ExecutionTrace(self.n) if record_trace else None
        self.observers: list[Callable[["Engine", RoundSnapshot], None]] = []
        self._t = 0
        # Inbox lists are allocated once and cleared per round; rebuilding
        # the node -> list mapping every round dominated small-n rounds.
        self._inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.n)]
        # Per-receiver port rows (P_node(sender) for every sender),
        # precomputed so the delivery loop indexes a row instead of
        # making an O(n^2)-per-round stream of port_of calls. Taken
        # from the numbering's bulk accessor -- no per-element calls
        # at construction time either.
        all_rows = ports.port_rows()
        self._port_rows: dict[int, tuple[int, ...]] = {
            node: all_rows[node] for node in self.processes
        }
        # Port-major sweep state: the fixed receiver iteration order
        # (node, process, self-delivery port), the token under which
        # this engine's routing plans are cached on Topology instances
        # (identity-compared; a bare object so a cached plan never pins
        # the engine or its processes alive), and the sweep/legacy
        # switch -- differential tests and benches flip it to compare
        # both delivery implementations on the untraced path.
        self._proc_plan: list[tuple[int, ConsensusProcess, int]] = [
            (node, proc, all_rows[node][node])
            for node, proc in self.processes.items()
        ]
        self._route_token = object()
        self._use_sweep = True

    @property
    def current_round(self) -> int:
        """Index of the next round to run."""
        return self._t

    def state_snapshots(self) -> dict[int, dict[str, Any]]:
        """Adversary-visible snapshots of every non-Byzantine node."""
        return {node: proc.state_snapshot() for node, proc in self.processes.items()}

    # ------------------------------------------------------------------

    def _collect_broadcasts(
        self, t: int
    ) -> tuple[dict[int, Any], dict[int, tuple[Any, frozenset[int] | None, int]]]:
        """Messages from non-Byzantine nodes still transmitting at ``t``.

        Returns the plain ``node -> message`` mapping (what the
        adversary's view shows) plus per-sender routing metadata --
        ``node -> (message, receiver whitelist or None, message bits)``
        -- computed once per round so the O(n^2) edge loop does no
        per-edge fault-plan or size accounting calls.
        """
        broadcasts: dict[int, Any] = {}
        meta: dict[int, tuple[Any, frozenset[int] | None, int]] = {}
        targets_map, _stopped = self.fault_plan.round_profile(t)
        for node, proc in self.processes.items():
            targets = targets_map.get(node)
            if targets is not None and not targets:
                continue  # crashed: silent
            message = proc.broadcast()
            broadcasts[node] = message
            # A None broadcast is a deliberately silent round: the view
            # still shows the node as broadcasting None, but nothing is
            # routed (and self-delivery skips it too).
            if message is not None:
                meta[node] = (message, targets, message_bits(message))
        return broadcasts, meta

    def _byzantine_messages(
        self, t: int, view: EngineView
    ) -> dict[int, Mapping[int, Any] | Any]:
        return {
            node: strategy.messages(t, view)
            for node, strategy in self.fault_plan.byzantine.items()
        }

    @staticmethod
    def _byzantine_message_for(outgoing: Mapping[int, Any] | Any, receiver: int) -> Any | None:
        if isinstance(outgoing, Mapping):
            return outgoing.get(receiver)
        return outgoing

    def run_round(self) -> RoundRecord:
        """Execute one synchronous round and return its record.

        Every round runs as a port-major delivery sweep
        (:meth:`_run_round_swept`) -- no per-receiver inbox
        construction, no per-batch sort. Traced and observer runs take
        the same sweep: the :class:`RoundSnapshot` those consumers need
        is assembled *after* delivery, behind a single branch, so an
        unattached engine skips snapshotting entirely. The original
        sender-major loop (:meth:`_run_round_legacy`) survives as the
        reference implementation; node transitions, metrics and traces
        are bit-identical on both paths, which the differential harness
        (``tests/helpers.py``) pins.
        """
        t = self._t
        if self._use_sweep:
            record = self._run_round_swept(t)
        else:
            record = self._run_round_legacy(t)
        self._t += 1
        return record

    def _run_round_legacy(self, t: int) -> RoundRecord:
        """The sender-major inbox loop (traced path / sweep reference).

        Kept as the reference implementation the sweep is pinned
        against, and as the path that materializes
        :class:`RoundSnapshot`s for the trace and observers.
        """
        fault_plan = self.fault_plan
        broadcasts, send_meta = self._collect_broadcasts(t)
        view = EngineView(self, t, broadcasts)
        byz_out = self._byzantine_messages(t, view)

        graph = self.adversary.choose(t, view)
        if graph.n != self.n:
            raise ValueError(f"adversary chose a graph with n={graph.n}, expected {self.n}")

        # Route messages along the chosen links, sender-major so each
        # sender's metadata is resolved once, not once per edge. The
        # receiver lists come from the Topology's lazily cached
        # adjacency rows -- built once per unique graph, shared across
        # every round that replays it. Inbox lists are preallocated in
        # __init__ and reused across rounds; the (sender, message) pair
        # is immutable and safely shared by every receiver's inbox.
        # Inbox *order* is free to differ from edge-set order: delivery
        # batches are sorted by port and Byzantine observations by
        # sender, both total orders.
        inboxes = self._inboxes
        for box in inboxes:
            box.clear()
        out_rows = graph.out_rows()
        delivered = 0
        bits = 0
        for u, (message, targets, message_size) in send_meta.items():
            receivers = out_rows[u]
            pair = (u, message)
            if targets is None:  # healthy sender: no per-edge filtering
                for v in receivers:
                    inboxes[v].append(pair)
                count = len(receivers)
            else:  # partial crash: some receivers missed out
                count = 0
                for v in receivers:
                    if v in targets:
                        inboxes[v].append(pair)
                        count += 1
            delivered += count
            bits += message_size * count
        for u, outgoing in byz_out.items():
            for v in out_rows[u]:
                message = self._byzantine_message_for(outgoing, v)
                if message is None:
                    continue
                inboxes[v].append((u, message))
                delivered += 1
                bits += message_bits(message)

        # Deliver to non-Byzantine nodes that still process, adding the
        # reliable self-delivery. Ports are a bijection per receiver,
        # so sorting the (port, message) tuples never compares messages
        # and needs no key function. Delivery instances are built via
        # tuple.__new__, skipping the namedtuple constructor wrapper in
        # this O(n^2)-per-round loop.
        new_delivery = tuple.__new__
        port_rows = self._port_rows
        stopped = fault_plan.round_profile(t)[1]
        for node, proc in self.processes.items():
            if node in stopped:
                continue
            row = port_rows[node]
            batch = [
                new_delivery(Delivery, (row[sender], message))
                for sender, message in inboxes[node]
            ]
            own = broadcasts.get(node)
            if own is not None:
                batch.append(Delivery(row[node], own))
            batch.sort()
            proc.deliver(batch)

        # Byzantine strategies observe their inbox with true sender IDs.
        for node, strategy in fault_plan.byzantine.items():
            strategy.observe(t, sorted(inboxes[node], key=lambda pair: pair[0]))

        # Snapshots exist solely for the trace and observers; skip them
        # entirely (fast path) when neither is attached.
        snapshot = None
        if self.trace is not None or self.observers:
            snapshot = RoundSnapshot(
                round=t,
                graph=graph,
                states=self.state_snapshots(),
                delivered=delivered,
                bits=bits,
                live_senders=fault_plan.live_senders(t),
            )
            if self.trace is not None:
                self.trace.record(snapshot)
        self.metrics.on_round(delivered, bits, broadcasts=len(broadcasts) + len(byz_out))
        if snapshot is not None:
            for observer in self.observers:
                observer(self, snapshot)

        return RoundRecord(t, graph, delivered, bits)

    def _routing_plan(self, graph: Topology) -> tuple[tuple, tuple[int, ...]]:
        """This engine's per-receiver routing plan for ``graph``.

        The plan is ``(rows_by_proc, sources)``: for every process
        receiver (in :attr:`_proc_plan` order) its in-row as parallel
        ``(ports, senders)`` tuples pre-sorted by port -- iterating
        them column-wise builds the delivery batch already in delivery
        order -- plus the tuple of nodes with outgoing links (the
        sweep's fast-path probe: when every source has an unrestricted
        message, per-pair mask checks are skipped and batches build via
        C-level ``map``/``zip``). Plans derive from ``(graph, ports)``; since ports
        are fixed per engine, each plan is cached on the Topology
        instance under this engine's private token, so replayed graphs
        -- ``EdgeSchedule`` stable patterns, interned enforcing-rotate
        cycles, repeated mobile masks -- hit O(1) per round.
        """
        plan = graph.routing_plan(self._route_token)
        if plan is None:
            in_rows = graph.in_rows()
            port_pairs = self.ports.port_pairs
            rows_by_proc = []
            for node, _proc, _port in self._proc_plan:
                pairs = port_pairs(node, in_rows[node])
                # Split into parallel tuples so the sweep's full-senders
                # path can run entirely in C (map/zip over the columns).
                rows_by_proc.append(
                    (tuple(p for p, _s in pairs), tuple(s for _p, s in pairs))
                )
            out_rows = graph.out_rows()
            sources = tuple(u for u in range(self.n) if out_rows[u])
            plan = (tuple(rows_by_proc), sources)
            graph.set_routing_plan(self._route_token, plan)
        return plan

    def _run_round_swept(self, t: int) -> RoundRecord:
        """One untraced round as a port-major sweep over ``in_rows()``.

        Crash/omission masks are applied on the sender axis *before*
        fan-in: silent senders never enter the per-round message table,
        and the rare mid-broadcast crashers and equivocating Byzantine
        senders route through a per-receiver extras map instead of
        per-edge checks. Each receiver's batch is then built in one
        pass from its cached ``(port, sender)`` plan -- already in port
        order, so there is no per-batch sort; self-delivery and extras
        are insorted. Delivered/bit accounting happens on the sender
        axis (out-degree times message size), which is exactly what the
        legacy loop's per-edge counting sums to.

        Trace/observer runs use this same sweep: the round's
        :class:`RoundSnapshot` is assembled after delivery from the
        sweep's own sender-axis accounting, behind one branch that an
        unattached engine passes in a single boolean check.
        """
        n = self.n
        fault_plan = self.fault_plan
        silent, restricted, stopped = fault_plan.sender_masks(t)

        broadcasts: dict[int, Any] = {}
        msgs: list[Any] = [None] * n
        own_msgs: list[Any] = []  # aligned with _proc_plan (self-delivery)
        active: list[tuple[int, int]] = []  # (sender, message bits)
        restricted_meta: list[tuple[int, Any, frozenset[int], int]] = []
        for node, proc, _self_port in self._proc_plan:
            if node in silent:
                own_msgs.append(None)  # also stopped: never delivered to
                continue  # crashed: silent
            message = proc.broadcast()
            broadcasts[node] = message
            own_msgs.append(message)
            # A None broadcast is a deliberately silent round: the view
            # still shows the node as broadcasting None, but nothing is
            # routed (and self-delivery skips it too).
            if message is None:
                continue
            # Inlined message_bits: the exact-type common case (plain
            # DAC/DBAC state messages) without two calls per sender.
            if type(message) is StateMessage:
                size = _STATE_BITS + _STATE_BITS * len(message.history)
            else:
                size = message_bits(message)
            targets = restricted.get(node) if restricted else None
            if targets is None:
                msgs[node] = message
                active.append((node, size))
            else:
                restricted_meta.append((node, message, targets, size))

        view = EngineView(self, t, broadcasts)
        byz_out = self._byzantine_messages(t, view)

        graph = self.adversary.choose(t, view)
        if graph.n != n:
            raise ValueError(f"adversary chose a graph with n={graph.n}, expected {n}")
        rows_by_proc, sources = self._routing_plan(graph)
        out_rows = graph.out_rows()

        delivered = 0
        bits = 0
        extras: dict[int, list[tuple[int, Any]]] | None = None
        for u, outgoing in byz_out.items():
            if isinstance(outgoing, Mapping):
                # Equivocator: a (possibly) different message per
                # receiver -- cannot share a message-table entry.
                if extras is None:
                    extras = {}
                for v in out_rows[u]:
                    message = outgoing.get(v)
                    if message is None:
                        continue
                    extras.setdefault(v, []).append((u, message))
                    delivered += 1
                    bits += message_bits(message)
            elif outgoing is not None:
                msgs[u] = outgoing
                active.append((u, message_bits(outgoing)))
        for u, message, targets, size in restricted_meta:
            if extras is None:
                extras = {}
            count = 0
            for v in out_rows[u]:
                if v in targets:
                    extras.setdefault(v, []).append((u, message))
                    count += 1
            delivered += count
            bits += size * count
        for u, size in active:
            count = len(out_rows[u])
            delivered += count
            bits += size * count

        # Fan-in. Delivery instances are built via tuple.__new__,
        # skipping the namedtuple constructor wrapper in this
        # O(n^2)-per-round loop; ports are a bijection per receiver, so
        # insort never compares messages. When every source holds an
        # unrestricted message (the common case: fault-free rounds, and
        # crash rounds once the enforcing adversary draws only live
        # senders) the whole batch builds in C -- map over a zip of the
        # plan's port column with the gathered message column.
        new_delivery = tuple.__new__
        get_message = msgs.__getitem__
        delivery_type = repeat(Delivery)
        full = extras is None and (
            len(active) == n or all(msgs[u] is not None for u in sources)
        )
        if full:
            for (node, proc, self_port), (ports_row, senders_row), own in zip(
                self._proc_plan, rows_by_proc, own_msgs
            ):
                if node in stopped:
                    continue
                batch = list(
                    map(
                        new_delivery,
                        delivery_type,
                        zip(ports_row, map(get_message, senders_row)),
                    )
                )
                if own is not None:
                    insort(batch, new_delivery(Delivery, (self_port, own)))
                proc.deliver(batch)
        else:
            port_rows = self._port_rows
            for (node, proc, self_port), (ports_row, senders_row), own in zip(
                self._proc_plan, rows_by_proc, own_msgs
            ):
                if node in stopped:
                    continue
                batch = [
                    new_delivery(Delivery, (p, msgs[s]))
                    for p, s in zip(ports_row, senders_row)
                    if msgs[s] is not None
                ]
                ex = extras.get(node) if extras else None
                if ex:
                    row = port_rows[node]
                    for u, message in ex:
                        insort(batch, new_delivery(Delivery, (row[u], message)))
                if own is not None:
                    insort(batch, new_delivery(Delivery, (self_port, own)))
                proc.deliver(batch)

        # Byzantine strategies observe their inbox with true sender
        # IDs, in sender order -- in-rows are already sorted, extras
        # (disjoint senders) merge in by one stable sort.
        if fault_plan.byzantine:
            in_rows = graph.in_rows()
            for node, strategy in fault_plan.byzantine.items():
                observed = [
                    (u, msgs[u]) for u in in_rows[node] if msgs[u] is not None
                ]
                ex = extras.get(node) if extras else None
                if ex:
                    observed.extend(ex)
                    observed.sort(key=_pair_sender)
                strategy.observe(t, observed)

        self.metrics.on_round(delivered, bits, broadcasts=len(broadcasts) + len(byz_out))

        # The observation seam: one boolean check on unattached runs.
        # Snapshots are assembled only here, after the sweep, from the
        # same sender-axis accounting the round already computed.
        if self.trace is not None or self.observers:
            snapshot = RoundSnapshot(
                round=t,
                graph=graph,
                states=self.state_snapshots(),
                delivered=delivered,
                bits=bits,
                live_senders=fault_plan.live_senders(t),
            )
            if self.trace is not None:
                self.trace.record(snapshot)
            for observer in self.observers:
                observer(self, snapshot)

        return RoundRecord(t, graph, delivered, bits)

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run rounds until ``stop_when`` fires or ``max_rounds`` elapse.

        Returns a :class:`RunResult`: an ``int`` equal to the number of
        rounds actually executed, whose ``stopped`` attribute records
        whether ``stop_when`` held when the run ended. ``stop_when`` is
        evaluated *before* each round (so a vacuously-true condition
        runs zero rounds) and checked again after the final round --
        callers need no manual re-check to learn whether the cap or the
        condition ended the run.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        executed = 0
        stopped = False
        while executed < max_rounds:
            if stop_when is not None and stop_when(self):
                stopped = True
                break
            self.run_round()
            executed += 1
        else:
            # The documented final check: the last round (or the state
            # handed in when max_rounds == 0) may already satisfy it.
            stopped = stop_when(self) if stop_when is not None else False
        return RunResult(executed, stopped)

    # -- Convenience stop conditions -----------------------------------

    def all_fault_free_output(self) -> bool:
        """True once every fault-free node has produced its output."""
        return all(
            self.processes[v].has_output() for v in self.fault_plan.fault_free
        )

    def fault_free_values(self) -> dict[int, float]:
        """Current scalar states of the fault-free nodes."""
        return {v: self.processes[v].value for v in self.fault_plan.fault_free}

    def fault_free_range(self) -> float:
        """Spread of the fault-free states (0.0 when none exist)."""
        values = list(self.fault_free_values().values())
        if not values:
            return 0.0
        return max(values) - min(values)
