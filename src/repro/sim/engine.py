"""The synchronous round engine.

One round proceeds exactly as in Section II-A of the paper:

1. every node that is still transmitting produces its broadcast
   message (deterministically from its state); Byzantine strategies
   may produce a different message per receiver;
2. the message adversary -- shown an omniscient view of node states,
   this round's broadcasts, and the fault plan -- chooses the reliable
   link set ``E(t)``; messages sent over other links are lost;
3. each message that traverses a chosen link ``(u, v)`` is delivered
   to ``v`` tagged with ``v``'s local port for ``u``; in addition,
   every alive node reliably receives its own message (self-delivery
   cannot be disrupted by the adversary);
4. non-faulty nodes consume their delivery batch (sorted by port) and
   transition; Byzantine strategies observe their node's inbox.

The engine is deliberately single-threaded and deterministic: given the
same processes, adversary, ports, fault plan and seed, two runs produce
bit-identical traces (asserted by property tests).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable

from repro.adversary.base import MessageAdversary
from repro.faults.base import FaultPlan
from repro.net.ports import PortNumbering
from repro.net.topology import Topology
from repro.sim.messages import message_bits
from repro.sim.metrics import MetricsCollector
from repro.sim.node import ConsensusProcess, Delivery
from repro.sim.rng import child_rng
from repro.sim.trace import ExecutionTrace, RoundSnapshot


@dataclass(frozen=True)
class RoundRecord:
    """What one call to :meth:`Engine.run_round` did."""

    round: int
    graph: Topology
    delivered: int
    bits: int


class RunResult(int):
    """Round count returned by :meth:`Engine.run`, with early-stop info.

    Behaves exactly like the plain ``int`` number of rounds executed
    (so arithmetic and comparisons keep working), and carries
    ``stopped``: whether ``stop_when`` held when the run ended --
    either because it fired before a round, or via the documented
    final check after the last round.
    """

    stopped: bool

    def __new__(cls, rounds: int, stopped: bool) -> "RunResult":
        result = super().__new__(cls, rounds)
        result.stopped = stopped
        return result

    @property
    def rounds(self) -> int:
        """The number of rounds executed (the integer value itself)."""
        return int(self)

    def __getnewargs__(self) -> tuple[int, bool]:
        # int subclasses with a multi-argument __new__ need this for
        # pickle/copy -- and results containing a RunResult must ship
        # between the parallel layer's worker processes.
        return (int(self), self.stopped)

    def __repr__(self) -> str:
        return f"RunResult(rounds={int(self)}, stopped={self.stopped})"


class EngineView:
    """The omniscient per-round view handed to adversaries and Byzantine
    strategies.

    Exposes node states *at the beginning of the round* (before this
    round's deliveries) plus the messages being broadcast -- exactly
    the adversary's knowledge in the paper (states + deterministic
    algorithm specification).
    """

    def __init__(self, engine: "Engine", t: int, broadcasts: Mapping[int, Any]) -> None:
        self._engine = engine
        self._t = t
        self._broadcasts = dict(broadcasts)

    @property
    def round(self) -> int:
        """The current round index."""
        return self._t

    @property
    def n(self) -> int:
        """Network size."""
        return self._engine.n

    @property
    def fault_plan(self) -> FaultPlan:
        """The execution's fault plan (adversaries may collude with faults)."""
        return self._engine.fault_plan

    @property
    def ports(self) -> PortNumbering:
        """The execution's port numberings.

        The adversary is omniscient, so it may inspect how each node
        labels its senders (it still cannot *change* the labels --
        the communication layer is authenticated).
        """
        return self._engine.ports

    def process(self, node: int) -> ConsensusProcess | None:
        """The process object at ``node`` (``None`` for Byzantine nodes)."""
        return self._engine.processes.get(node)

    def value(self, node: int) -> float | None:
        """Node's current scalar state, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.value

    def phase(self, node: int) -> int | None:
        """Node's current phase index, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.phase

    def broadcast_of(self, node: int) -> Any | None:
        """The message ``node`` is broadcasting this round (or ``None``)."""
        return self._broadcasts.get(node)

    def max_fault_free_phase(self) -> int:
        """Highest phase among fault-free nodes (0 when none exist)."""
        phases = [
            self._engine.processes[v].phase for v in self._engine.fault_plan.fault_free
        ]
        return max(phases, default=0)

    def live_senders(self) -> frozenset[int]:
        """Nodes transmitting fully this round (crash model awareness)."""
        return self._engine.fault_plan.live_senders(self._t)

    def live_senders_sorted(self) -> tuple[int, ...]:
        """:meth:`live_senders` as a memoized sorted tuple.

        Enforcing adversaries use this directly as a graph-memo key,
        skipping a per-round ``tuple(sorted(...))`` rebuild."""
        return self._engine.fault_plan.live_senders_sorted(self._t)

    def undecided_fault_free(self) -> frozenset[int]:
        """Fault-free nodes that have not output yet."""
        return frozenset(
            v
            for v in self._engine.fault_plan.fault_free
            if not self._engine.processes[v].has_output()
        )


class Engine:
    """Runs one execution: processes + adversary + ports + fault plan.

    Parameters
    ----------
    processes:
        ``node -> ConsensusProcess`` for every **non-Byzantine** node
        (crash-faulty nodes run the algorithm until they die).
    adversary:
        The message adversary choosing ``E(t)``.
    ports:
        The execution's port numberings.
    fault_plan:
        Crash events and Byzantine strategies; defaults to fault-free.
    f:
        The fault bound the nodes were configured with (used to bind
        Byzantine strategies; informational otherwise).
    seed:
        Root seed from which the adversary's and each Byzantine
        strategy's private streams are derived.
    record_trace:
        Set ``False`` to skip snapshotting (large sweeps).
    """

    def __init__(
        self,
        processes: Mapping[int, ConsensusProcess],
        adversary: MessageAdversary,
        ports: PortNumbering,
        fault_plan: FaultPlan | None = None,
        f: int = 0,
        seed: int = 0,
        record_trace: bool = True,
        byzantine_inputs: Mapping[int, float] | None = None,
    ) -> None:
        self.n = ports.n
        self.ports = ports
        self.fault_plan = fault_plan or FaultPlan.fault_free_plan(self.n)
        if self.fault_plan.n != self.n:
            raise ValueError(
                f"fault plan is for n={self.fault_plan.n}, ports for n={self.n}"
            )
        self.processes: dict[int, ConsensusProcess] = dict(processes)
        expected = self.fault_plan.non_byzantine
        if set(self.processes) != set(expected):
            raise ValueError(
                "processes must cover exactly the non-Byzantine nodes "
                f"{sorted(expected)}, got {sorted(self.processes)}"
            )
        self.adversary = adversary
        self.adversary.setup(self.n, self.fault_plan, child_rng(seed, "adversary"))
        byz_inputs = dict(byzantine_inputs or {})
        for node, strategy in self.fault_plan.byzantine.items():
            strategy.bind(
                node,
                self.n,
                f,
                byz_inputs.get(node, 0.0),
                child_rng(seed, f"byzantine-{node}"),
            )
        self.metrics = MetricsCollector()
        self.trace: ExecutionTrace | None = ExecutionTrace(self.n) if record_trace else None
        self.observers: list[Callable[["Engine", RoundSnapshot], None]] = []
        self._t = 0
        # Inbox lists are allocated once and cleared per round; rebuilding
        # the node -> list mapping every round dominated small-n rounds.
        self._inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(self.n)]
        # Per-receiver port rows (P_node(sender) for every sender),
        # precomputed so the delivery loop indexes a row instead of
        # making an O(n^2)-per-round stream of port_of calls. Taken
        # from the numbering's bulk accessor -- no per-element calls
        # at construction time either.
        all_rows = ports.port_rows()
        self._port_rows: dict[int, tuple[int, ...]] = {
            node: all_rows[node] for node in self.processes
        }

    @property
    def current_round(self) -> int:
        """Index of the next round to run."""
        return self._t

    def state_snapshots(self) -> dict[int, dict[str, Any]]:
        """Adversary-visible snapshots of every non-Byzantine node."""
        return {node: proc.state_snapshot() for node, proc in self.processes.items()}

    # ------------------------------------------------------------------

    def _collect_broadcasts(
        self, t: int
    ) -> tuple[dict[int, Any], dict[int, tuple[Any, frozenset[int] | None, int]]]:
        """Messages from non-Byzantine nodes still transmitting at ``t``.

        Returns the plain ``node -> message`` mapping (what the
        adversary's view shows) plus per-sender routing metadata --
        ``node -> (message, receiver whitelist or None, message bits)``
        -- computed once per round so the O(n^2) edge loop does no
        per-edge fault-plan or size accounting calls.
        """
        broadcasts: dict[int, Any] = {}
        meta: dict[int, tuple[Any, frozenset[int] | None, int]] = {}
        targets_map, _stopped = self.fault_plan.round_profile(t)
        for node, proc in self.processes.items():
            targets = targets_map.get(node)
            if targets is not None and not targets:
                continue  # crashed: silent
            message = proc.broadcast()
            broadcasts[node] = message
            # A None broadcast is a deliberately silent round: the view
            # still shows the node as broadcasting None, but nothing is
            # routed (and self-delivery skips it too).
            if message is not None:
                meta[node] = (message, targets, message_bits(message))
        return broadcasts, meta

    def _byzantine_messages(
        self, t: int, view: EngineView
    ) -> dict[int, Mapping[int, Any] | Any]:
        return {
            node: strategy.messages(t, view)
            for node, strategy in self.fault_plan.byzantine.items()
        }

    @staticmethod
    def _byzantine_message_for(outgoing: Mapping[int, Any] | Any, receiver: int) -> Any | None:
        if isinstance(outgoing, Mapping):
            return outgoing.get(receiver)
        return outgoing

    def run_round(self) -> RoundRecord:
        """Execute one synchronous round and return its record.

        When no trace is being recorded and no observers are registered
        the engine takes a *fast path*: per-round state snapshots are
        never materialized (they existed only to feed those consumers),
        which removes the O(n) snapshot cost from every round. The
        node transitions themselves are identical on both paths.
        """
        t = self._t
        fault_plan = self.fault_plan
        broadcasts, send_meta = self._collect_broadcasts(t)
        view = EngineView(self, t, broadcasts)
        byz_out = self._byzantine_messages(t, view)

        graph = self.adversary.choose(t, view)
        if graph.n != self.n:
            raise ValueError(f"adversary chose a graph with n={graph.n}, expected {self.n}")

        # Route messages along the chosen links, sender-major so each
        # sender's metadata is resolved once, not once per edge. The
        # receiver lists come from the Topology's lazily cached
        # adjacency rows -- built once per unique graph, shared across
        # every round that replays it. Inbox lists are preallocated in
        # __init__ and reused across rounds; the (sender, message) pair
        # is immutable and safely shared by every receiver's inbox.
        # Inbox *order* is free to differ from edge-set order: delivery
        # batches are sorted by port and Byzantine observations by
        # sender, both total orders.
        inboxes = self._inboxes
        for box in inboxes:
            box.clear()
        out_rows = graph.out_rows()
        delivered = 0
        bits = 0
        for u, (message, targets, message_size) in send_meta.items():
            receivers = out_rows[u]
            pair = (u, message)
            if targets is None:  # healthy sender: no per-edge filtering
                for v in receivers:
                    inboxes[v].append(pair)
                count = len(receivers)
            else:  # partial crash: some receivers missed out
                count = 0
                for v in receivers:
                    if v in targets:
                        inboxes[v].append(pair)
                        count += 1
            delivered += count
            bits += message_size * count
        for u, outgoing in byz_out.items():
            for v in out_rows[u]:
                message = self._byzantine_message_for(outgoing, v)
                if message is None:
                    continue
                inboxes[v].append((u, message))
                delivered += 1
                bits += message_bits(message)

        # Deliver to non-Byzantine nodes that still process, adding the
        # reliable self-delivery. Ports are a bijection per receiver,
        # so sorting the (port, message) tuples never compares messages
        # and needs no key function. Delivery instances are built via
        # tuple.__new__, skipping the namedtuple constructor wrapper in
        # this O(n^2)-per-round loop.
        new_delivery = tuple.__new__
        port_rows = self._port_rows
        stopped = fault_plan.round_profile(t)[1]
        for node, proc in self.processes.items():
            if node in stopped:
                continue
            row = port_rows[node]
            batch = [
                new_delivery(Delivery, (row[sender], message))
                for sender, message in inboxes[node]
            ]
            own = broadcasts.get(node)
            if own is not None:
                batch.append(Delivery(row[node], own))
            batch.sort()
            proc.deliver(batch)

        # Byzantine strategies observe their inbox with true sender IDs.
        for node, strategy in fault_plan.byzantine.items():
            strategy.observe(t, sorted(inboxes[node], key=lambda pair: pair[0]))

        # Snapshots exist solely for the trace and observers; skip them
        # entirely (fast path) when neither is attached.
        snapshot = None
        if self.trace is not None or self.observers:
            snapshot = RoundSnapshot(
                round=t,
                graph=graph,
                states=self.state_snapshots(),
                delivered=delivered,
                bits=bits,
                live_senders=fault_plan.live_senders(t),
            )
            if self.trace is not None:
                self.trace.record(snapshot)
        self.metrics.on_round(delivered, bits, broadcasts=len(broadcasts) + len(byz_out))
        if snapshot is not None:
            for observer in self.observers:
                observer(self, snapshot)

        self._t += 1
        return RoundRecord(t, graph, delivered, bits)

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> RunResult:
        """Run rounds until ``stop_when`` fires or ``max_rounds`` elapse.

        Returns a :class:`RunResult`: an ``int`` equal to the number of
        rounds actually executed, whose ``stopped`` attribute records
        whether ``stop_when`` held when the run ended. ``stop_when`` is
        evaluated *before* each round (so a vacuously-true condition
        runs zero rounds) and checked again after the final round --
        callers need no manual re-check to learn whether the cap or the
        condition ended the run.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        executed = 0
        stopped = False
        while executed < max_rounds:
            if stop_when is not None and stop_when(self):
                stopped = True
                break
            self.run_round()
            executed += 1
        else:
            # The documented final check: the last round (or the state
            # handed in when max_rounds == 0) may already satisfy it.
            stopped = stop_when(self) if stop_when is not None else False
        return RunResult(executed, stopped)

    # -- Convenience stop conditions -----------------------------------

    def all_fault_free_output(self) -> bool:
        """True once every fault-free node has produced its output."""
        return all(
            self.processes[v].has_output() for v in self.fault_plan.fault_free
        )

    def fault_free_values(self) -> dict[int, float]:
        """Current scalar states of the fault-free nodes."""
        return {v: self.processes[v].value for v in self.fault_plan.fault_free}

    def fault_free_range(self) -> float:
        """Spread of the fault-free states (0.0 when none exist)."""
        values = list(self.fault_free_values().values())
        if not values:
            return 0.0
        return max(values) - min(values)
