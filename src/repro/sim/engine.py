"""The synchronous round engine.

One round proceeds exactly as in Section II-A of the paper:

1. every node that is still transmitting produces its broadcast
   message (deterministically from its state); Byzantine strategies
   may produce a different message per receiver;
2. the message adversary -- shown an omniscient view of node states,
   this round's broadcasts, and the fault plan -- chooses the reliable
   link set ``E(t)``; messages sent over other links are lost;
3. each message that traverses a chosen link ``(u, v)`` is delivered
   to ``v`` tagged with ``v``'s local port for ``u``; in addition,
   every alive node reliably receives its own message (self-delivery
   cannot be disrupted by the adversary);
4. non-faulty nodes consume their delivery batch (sorted by port) and
   transition; Byzantine strategies observe their node's inbox.

The engine is deliberately single-threaded and deterministic: given the
same processes, adversary, ports, fault plan and seed, two runs produce
bit-identical traces (asserted by property tests).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any, Callable

from repro.adversary.base import MessageAdversary
from repro.faults.base import FaultPlan
from repro.net.graph import DirectedGraph
from repro.net.ports import PortNumbering
from repro.sim.messages import message_bits
from repro.sim.metrics import MetricsCollector
from repro.sim.node import ConsensusProcess, Delivery
from repro.sim.rng import child_rng
from repro.sim.trace import ExecutionTrace, RoundSnapshot


@dataclass(frozen=True)
class RoundRecord:
    """What one call to :meth:`Engine.run_round` did."""

    round: int
    graph: DirectedGraph
    delivered: int
    bits: int


class EngineView:
    """The omniscient per-round view handed to adversaries and Byzantine
    strategies.

    Exposes node states *at the beginning of the round* (before this
    round's deliveries) plus the messages being broadcast -- exactly
    the adversary's knowledge in the paper (states + deterministic
    algorithm specification).
    """

    def __init__(self, engine: "Engine", t: int, broadcasts: Mapping[int, Any]) -> None:
        self._engine = engine
        self._t = t
        self._broadcasts = dict(broadcasts)

    @property
    def round(self) -> int:
        """The current round index."""
        return self._t

    @property
    def n(self) -> int:
        """Network size."""
        return self._engine.n

    @property
    def fault_plan(self) -> FaultPlan:
        """The execution's fault plan (adversaries may collude with faults)."""
        return self._engine.fault_plan

    @property
    def ports(self) -> PortNumbering:
        """The execution's port numberings.

        The adversary is omniscient, so it may inspect how each node
        labels its senders (it still cannot *change* the labels --
        the communication layer is authenticated).
        """
        return self._engine.ports

    def process(self, node: int) -> ConsensusProcess | None:
        """The process object at ``node`` (``None`` for Byzantine nodes)."""
        return self._engine.processes.get(node)

    def value(self, node: int) -> float | None:
        """Node's current scalar state, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.value

    def phase(self, node: int) -> int | None:
        """Node's current phase index, ``None`` for Byzantine nodes."""
        proc = self._engine.processes.get(node)
        return None if proc is None else proc.phase

    def broadcast_of(self, node: int) -> Any | None:
        """The message ``node`` is broadcasting this round (or ``None``)."""
        return self._broadcasts.get(node)

    def max_fault_free_phase(self) -> int:
        """Highest phase among fault-free nodes (0 when none exist)."""
        phases = [
            self._engine.processes[v].phase for v in self._engine.fault_plan.fault_free
        ]
        return max(phases, default=0)

    def live_senders(self) -> frozenset[int]:
        """Nodes transmitting fully this round (crash model awareness)."""
        return self._engine.fault_plan.live_senders(self._t)

    def undecided_fault_free(self) -> frozenset[int]:
        """Fault-free nodes that have not output yet."""
        return frozenset(
            v
            for v in self._engine.fault_plan.fault_free
            if not self._engine.processes[v].has_output()
        )


class Engine:
    """Runs one execution: processes + adversary + ports + fault plan.

    Parameters
    ----------
    processes:
        ``node -> ConsensusProcess`` for every **non-Byzantine** node
        (crash-faulty nodes run the algorithm until they die).
    adversary:
        The message adversary choosing ``E(t)``.
    ports:
        The execution's port numberings.
    fault_plan:
        Crash events and Byzantine strategies; defaults to fault-free.
    f:
        The fault bound the nodes were configured with (used to bind
        Byzantine strategies; informational otherwise).
    seed:
        Root seed from which the adversary's and each Byzantine
        strategy's private streams are derived.
    record_trace:
        Set ``False`` to skip snapshotting (large sweeps).
    """

    def __init__(
        self,
        processes: Mapping[int, ConsensusProcess],
        adversary: MessageAdversary,
        ports: PortNumbering,
        fault_plan: FaultPlan | None = None,
        f: int = 0,
        seed: int = 0,
        record_trace: bool = True,
        byzantine_inputs: Mapping[int, float] | None = None,
    ) -> None:
        self.n = ports.n
        self.ports = ports
        self.fault_plan = fault_plan or FaultPlan.fault_free_plan(self.n)
        if self.fault_plan.n != self.n:
            raise ValueError(
                f"fault plan is for n={self.fault_plan.n}, ports for n={self.n}"
            )
        self.processes: dict[int, ConsensusProcess] = dict(processes)
        expected = self.fault_plan.non_byzantine
        if set(self.processes) != set(expected):
            raise ValueError(
                "processes must cover exactly the non-Byzantine nodes "
                f"{sorted(expected)}, got {sorted(self.processes)}"
            )
        self.adversary = adversary
        self.adversary.setup(self.n, self.fault_plan, child_rng(seed, "adversary"))
        byz_inputs = dict(byzantine_inputs or {})
        for node, strategy in self.fault_plan.byzantine.items():
            strategy.bind(
                node,
                self.n,
                f,
                byz_inputs.get(node, 0.0),
                child_rng(seed, f"byzantine-{node}"),
            )
        self.metrics = MetricsCollector()
        self.trace: ExecutionTrace | None = ExecutionTrace(self.n) if record_trace else None
        self.observers: list[Callable[["Engine", RoundSnapshot], None]] = []
        self._t = 0

    @property
    def current_round(self) -> int:
        """Index of the next round to run."""
        return self._t

    def state_snapshots(self) -> dict[int, dict[str, Any]]:
        """Adversary-visible snapshots of every non-Byzantine node."""
        return {node: proc.state_snapshot() for node, proc in self.processes.items()}

    # ------------------------------------------------------------------

    def _collect_broadcasts(self, t: int) -> dict[int, Any]:
        """Messages from non-Byzantine nodes still transmitting at ``t``."""
        broadcasts: dict[int, Any] = {}
        for node, proc in self.processes.items():
            targets = self.fault_plan.send_targets(node, t)
            if targets is not None and not targets:
                continue  # crashed: silent
            broadcasts[node] = proc.broadcast()
        return broadcasts

    def _byzantine_messages(
        self, t: int, view: EngineView
    ) -> dict[int, Mapping[int, Any] | Any]:
        return {
            node: strategy.messages(t, view)
            for node, strategy in self.fault_plan.byzantine.items()
        }

    @staticmethod
    def _byzantine_message_for(outgoing: Mapping[int, Any] | Any, receiver: int) -> Any | None:
        if isinstance(outgoing, Mapping):
            return outgoing.get(receiver)
        return outgoing

    def run_round(self) -> RoundRecord:
        """Execute one synchronous round and return its record."""
        t = self._t
        broadcasts = self._collect_broadcasts(t)
        view = EngineView(self, t, broadcasts)
        byz_out = self._byzantine_messages(t, view)

        graph = self.adversary.choose(t, view)
        if graph.n != self.n:
            raise ValueError(f"adversary chose a graph with n={graph.n}, expected {self.n}")

        # Route messages along the chosen links.
        inboxes: dict[int, list[tuple[int, Any]]] = {v: [] for v in range(self.n)}
        delivered = 0
        bits = 0
        for u, v in graph.edges:
            if self.fault_plan.is_byzantine(u):
                message = self._byzantine_message_for(byz_out[u], v)
            else:
                message = broadcasts.get(u)
                if message is not None:
                    targets = self.fault_plan.send_targets(u, t)
                    if targets is not None and v not in targets:
                        message = None  # partial crash: this receiver missed out
            if message is None:
                continue
            inboxes[v].append((u, message))
            delivered += 1
            bits += message_bits(message)

        # Deliver to non-Byzantine nodes that still process, adding the
        # reliable self-delivery.
        for node, proc in self.processes.items():
            if not self.fault_plan.processes_at(node, t):
                continue
            pairs = list(inboxes[node])
            own = broadcasts.get(node)
            if own is not None:
                pairs.append((node, own))
            batch = [
                Delivery(self.ports.port_of(node, sender), message)
                for sender, message in pairs
            ]
            batch.sort(key=lambda d: d.port)
            proc.deliver(batch)

        # Byzantine strategies observe their inbox with true sender IDs.
        for node, strategy in self.fault_plan.byzantine.items():
            strategy.observe(t, sorted(inboxes[node], key=lambda pair: pair[0]))

        snapshot = RoundSnapshot(
            round=t,
            graph=graph,
            states=self.state_snapshots(),
            delivered=delivered,
            bits=bits,
            live_senders=self.fault_plan.live_senders(t),
        )
        if self.trace is not None:
            self.trace.record(snapshot)
        self.metrics.on_round(delivered, bits, broadcasts=len(broadcasts) + len(byz_out))
        for observer in self.observers:
            observer(self, snapshot)

        self._t += 1
        return RoundRecord(t, graph, delivered, bits)

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[["Engine"], bool] | None = None,
    ) -> int:
        """Run rounds until ``stop_when`` fires or ``max_rounds`` elapse.

        Returns the number of rounds actually executed. ``stop_when``
        is evaluated *before* each round (so a vacuously-true condition
        runs zero rounds) and checked again after the final round.
        """
        if max_rounds < 0:
            raise ValueError(f"max_rounds must be non-negative, got {max_rounds}")
        executed = 0
        while executed < max_rounds:
            if stop_when is not None and stop_when(self):
                break
            self.run_round()
            executed += 1
        return executed

    # -- Convenience stop conditions -----------------------------------

    def all_fault_free_output(self) -> bool:
        """True once every fault-free node has produced its output."""
        return all(
            self.processes[v].has_output() for v in self.fault_plan.fault_free
        )

    def fault_free_values(self) -> dict[int, float]:
        """Current scalar states of the fault-free nodes."""
        return {v: self.processes[v].value for v in self.fault_plan.fault_free}

    def fault_free_range(self) -> float:
        """Spread of the fault-free states (0.0 when none exist)."""
        values = list(self.fault_free_values().values())
        if not values:
            return 0.0
        return max(values) - min(values)
