"""Message types and per-link bandwidth accounting.

The paper assumes each node sends one message per round and each
message carries at most ``O(log n)`` bits (Section II-A). The base
message of both DAC and DBAC is a ``(value, phase)`` pair. The Section
VII piggybacking extension appends up to ``k`` older ``(value, phase)``
entries; the metrics layer charges for them so the bandwidth /
convergence trade-off (experiment X2) can be measured.

Bandwidth model: a value costs 64 bits (one fixed-point/float state), a
phase index costs 32 bits. These constants are an accounting
convention, not a claim about wire encodings; only *ratios* between
configurations matter in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

VALUE_BITS = 64
PHASE_BITS = 32


@dataclass(frozen=True)
class StateMessage:
    """The broadcast of DAC/DBAC: the sender's state and phase index.

    ``history`` is the optional piggyback payload of the Section VII
    extension: older ``(value, phase)`` pairs, most recent first. Plain
    DAC/DBAC always send ``history=()``.
    """

    value: float
    phase: int
    history: tuple[tuple[float, int], ...] = field(default=())

    def __post_init__(self) -> None:
        if self.phase < 0:
            raise ValueError(f"phase must be non-negative, got {self.phase}")

    def bits(self) -> int:
        """Size of this message under the accounting convention."""
        base = VALUE_BITS + PHASE_BITS
        return base + len(self.history) * (VALUE_BITS + PHASE_BITS)

    def entries(self) -> tuple[tuple[float, int], ...]:
        """All ``(value, phase)`` pairs carried: current state first."""
        return ((self.value, self.phase),) + self.history


def message_bits(message: object) -> int:
    """Bits charged for an arbitrary message object.

    :class:`StateMessage` knows its own size (the exact-type check
    skips the ``getattr`` dispatch in the engine's
    charge-every-broadcast-every-round common case); anything else
    (baseline algorithms with richer payloads, e.g. full-information
    vectors) may supply a ``bits()`` method, and is otherwise charged
    a flat ``VALUE_BITS`` as a floor.
    """
    if type(message) is StateMessage:
        return message.bits()
    bits_fn = getattr(message, "bits", None)
    if callable(bits_fn):
        return int(bits_fn())
    return VALUE_BITS
