"""Run orchestration: execute a consensus instance and judge it.

:func:`run_consensus` wires an engine together, runs it to a stopping
condition, and returns an :class:`ExecutionReport` containing verdicts
for the paper's three correctness properties (termination, validity,
epsilon-agreement), the measured per-phase convergence series, and an
independent re-check of the adversary's ``(T, D)``-dynaDegree promise
on the recorded trace.

Two stopping modes reflect the two ways the paper's algorithms are
read:

- ``"output"`` -- paper-faithful: run until every fault-free node has
  reached its termination phase ``p_end`` and output (Equations 2/6);
- ``"oracle"`` -- run until an omniscient observer sees the fault-free
  states within ``epsilon`` (used to measure how conservative the
  ``p_end`` bounds are, especially DBAC's Equation 6).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.adversary.base import MessageAdversary
from repro.faults.base import FaultPlan
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import PortNumbering
from repro.sim.engine import Engine
from repro.sim.metrics import MetricsCollector, PhaseRangeSeries
from repro.sim.node import ConsensusProcess
from repro.sim.trace import ExecutionTrace

# Slack for floating-point comparisons in verdicts. Outputs sitting
# exactly on the hull boundary should not fail validity to rounding.
_FLOAT_SLACK = 1e-9


@dataclass
class ExecutionReport:
    """Everything measured about one execution."""

    n: int
    f: int
    epsilon: float
    stop_mode: str
    rounds: int
    terminated: bool
    inputs: dict[int, float]
    outputs: dict[int, float]
    output_spread: float
    epsilon_agreement: bool
    validity: bool
    phase_ranges: list[float | None] = field(default_factory=list)
    convergence_rates: list[float] = field(default_factory=list)
    max_phase: int = 0
    dynadegree_promise: tuple[int, int] | None = None
    dynadegree_verified: bool | None = None
    metrics: MetricsCollector | None = None
    trace: ExecutionTrace | None = None

    @property
    def correct(self) -> bool:
        """Termination, validity and epsilon-agreement all hold."""
        return self.terminated and self.validity and self.epsilon_agreement

    def summary(self) -> str:
        """One-line human-readable verdict."""
        verdict = "OK" if self.correct else "VIOLATION"
        return (
            f"[{verdict}] n={self.n} f={self.f} eps={self.epsilon:g} "
            f"rounds={self.rounds} spread={self.output_spread:.3g} "
            f"terminated={self.terminated} validity={self.validity} "
            f"eps-agreement={self.epsilon_agreement}"
        )


def _watched_nodes(fault_plan: FaultPlan) -> frozenset[int]:
    """Which nodes constitute ``V(p)`` (Definitions 5 vs Section V).

    Pure-crash executions track every non-Byzantine node (crashed nodes
    contribute the phases they reached); as soon as Byzantine nodes
    exist, only fault-free nodes are tracked.
    """
    if fault_plan.byzantine:
        return fault_plan.fault_free
    return fault_plan.non_byzantine


def _verify_promise(
    adversary: MessageAdversary,
    trace: ExecutionTrace | None,
    fault_plan: FaultPlan,
) -> tuple[tuple[int, int] | None, bool | None]:
    promise = adversary.promised_dynadegree()
    if promise is None or trace is None or len(trace) == 0:
        return promise, None
    window, degree = promise
    verdict = check_dynadegree(
        trace.dynamic_graph(),
        window,
        degree,
        fault_free=fault_plan.fault_free,
        senders_at=lambda t: trace.rounds[t].live_senders,
    )
    return promise, verdict.holds


def run_consensus(
    processes: Mapping[int, ConsensusProcess],
    adversary: MessageAdversary,
    ports: PortNumbering,
    epsilon: float,
    f: int = 0,
    fault_plan: FaultPlan | None = None,
    max_rounds: int = 100_000,
    stop_mode: str = "output",
    seed: int = 0,
    record_trace: bool = True,
    verify_promise: bool = True,
    track_phases: bool = True,
    observers: Sequence[Callable] = (),
    on_finish: Callable | None = None,
    trace_sink: Any | None = None,
) -> ExecutionReport:
    """Run one consensus execution end to end and judge it.

    Parameters
    ----------
    processes:
        ``node -> process`` for every non-Byzantine node; each node's
        ``input_value`` is taken as its input for the validity check.
    epsilon:
        The agreement tolerance the execution is judged against.
    stop_mode:
        ``"output"`` (wait for the algorithm's own termination) or
        ``"oracle"`` (stop when global spread first dips to epsilon).
    max_rounds:
        Hard cap; an execution hitting the cap without stopping is
        reported as non-terminating (``terminated=False``).
    track_phases:
        Set ``False`` to skip the per-phase ``V(p)`` bookkeeping (the
        report's ``phase_ranges``/``convergence_rates`` come back
        empty). Combined with ``record_trace=False`` this leaves the
        engine with no snapshot consumers at all, enabling its fast
        path -- the right configuration for large sweeps that only
        read verdicts and round counts.
    observers:
        Extra per-round snapshot callbacks (``(engine, snapshot) ->
        None``) appended to ``engine.observers`` -- the seam the
        read-only :mod:`repro.obs` bus attaches through
        (``repro.obs.attach.consensus_hooks`` builds this and
        ``on_finish`` from a bus in one call).
    on_finish:
        Called once as ``on_finish(engine, result)`` after the run
        ends, before verdicts are computed -- how a bus learns the
        run's ``RunFinished`` outcome without the runner importing the
        observability layer.
    trace_sink:
        Streaming snapshot destination (see :class:`repro.sim.engine.
        Engine`); overrides ``record_trace``. The report's ``trace``
        field stays ``None`` (rounds live on disk, not in RAM) and the
        dynaDegree promise re-check is skipped -- run it post-hoc on
        the loaded trace if needed.
    """
    if stop_mode not in ("output", "oracle"):
        raise ValueError(f"unknown stop_mode {stop_mode!r}")
    plan = fault_plan or FaultPlan.fault_free_plan(ports.n)
    engine = Engine(
        processes,
        adversary,
        ports,
        fault_plan=plan,
        f=f,
        seed=seed,
        record_trace=record_trace,
        trace_sink=trace_sink,
    )

    series = PhaseRangeSeries(_watched_nodes(plan))
    if track_phases:
        series.observe_states(engine.state_snapshots())
        engine.observers.append(lambda _eng, snap: series.observe_states(snap.states))
    engine.observers.extend(observers)

    if stop_mode == "output":
        stop = Engine.all_fault_free_output
    else:
        stop = lambda eng: eng.fault_free_range() <= epsilon  # noqa: E731

    result = engine.run(max_rounds, stop_when=stop)
    if on_finish is not None:
        on_finish(engine, result)
    terminated = result.stopped

    inputs = {node: proc.input_value for node, proc in processes.items()}
    if stop_mode == "output":
        outputs = {
            v: engine.processes[v].output()
            for v in plan.fault_free
            if engine.processes[v].has_output()
        }
    else:
        outputs = engine.fault_free_values()

    # With no outputs at all the safety properties are vacuous -- the
    # failure is termination, and correct=False follows from that.
    spread = 0.0
    if outputs:
        spread = max(outputs.values()) - min(outputs.values())
    eps_agreement = not outputs or spread <= epsilon + _FLOAT_SLACK

    hull_lo = min(inputs.values())
    hull_hi = max(inputs.values())
    validity = all(
        hull_lo - _FLOAT_SLACK <= value <= hull_hi + _FLOAT_SLACK
        for value in outputs.values()
    )

    # A streaming sink is not an ExecutionTrace: no in-RAM rounds to
    # re-check the promise against, and the report cannot carry it.
    trace = engine.trace if isinstance(engine.trace, ExecutionTrace) else None
    promise, promise_ok = (
        _verify_promise(adversary, trace, plan) if verify_promise else (None, None)
    )

    return ExecutionReport(
        n=ports.n,
        f=f,
        epsilon=epsilon,
        stop_mode=stop_mode,
        rounds=engine.current_round,
        terminated=terminated,
        inputs=inputs,
        outputs=outputs,
        output_spread=spread,
        epsilon_agreement=eps_agreement,
        validity=validity,
        phase_ranges=series.range_series(),
        convergence_rates=series.convergence_rates(),
        max_phase=series.max_phase(),
        dynadegree_promise=promise,
        dynadegree_verified=promise_ok,
        metrics=engine.metrics,
        trace=trace,
    )
