"""Parallel trial execution: fan independent simulations over processes.

Sweeps and repeated scenario runs are embarrassingly parallel: every
trial is a pure function of its parameter assignment and seed (the
engine is deterministic by construction, see :mod:`repro.sim.engine`).
This module is the single place that turns a list of such trials into
results using a :class:`concurrent.futures.ProcessPoolExecutor`, with
two guarantees that make ``workers=N`` a pure speed knob:

- **deterministic seeding** -- every trial's seed lives in its
  :class:`TrialSpec`, fixed *before* any work is dispatched, so the
  schedule (which worker runs what, and when) cannot influence it;
- **order-stable collection** -- results come back in spec order
  regardless of completion order, so records built from them are
  identical to a serial run's, element for element.

A second, orthogonal speed knob is **batching**: when the caller
supplies a *batched* trial function (``batch_fn(seeds=[...], **params)
-> [result, ...]``, e.g. one built on :mod:`repro.sim.batch`),
consecutive specs sharing a parameter assignment are grouped into
chunks of up to ``batch`` seeds and dispatched as one call. The
contract -- asserted by the determinism suite -- is that the batched
function returns exactly ``[fn(**params, seed=s) for s in seeds]``, so
``batch=B`` composes with ``workers=N`` (batches fan out over the
pool) while leaving results identical, element for element.

Trial functions must be picklable (module-level functions, not lambdas
or closures) when ``workers > 1``; the serial path has no such
restriction, which keeps ad-hoc lambdas working for ``workers=1``.

**Event forwarding.** Observability events raised inside a trial
(e.g. ``repro.obs`` ``RunFinished``) used to die with their worker
process. A trial that calls :func:`record_event` now gets its events
shipped back alongside its result and replayed -- in spec order, on
the parent process -- through ``run_trials(on_event=...)``. Events
must be picklable (the bus events are frozen scalar dataclasses);
forwarding is inert unless the caller passes ``on_event``, so
ordinary sweeps pay nothing.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

# Process-wide defaults consulted when ``workers=None`` / ``batch=None``
# is requested. CLI entry points set these from their ``--workers`` and
# ``--batch`` flags so library code (e.g. experiments built on
# repro.bench.sweep.Sweep) picks the values up without threading them
# through every call site.
_default_workers = 1
_default_batch = 1


def set_default_workers(workers: int) -> None:
    """Set the process-wide worker default (``0`` means all CPUs)."""
    global _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    _default_workers = workers


def get_default_workers() -> int:
    """The current process-wide worker default."""
    return _default_workers


def set_default_batch(batch: int) -> None:
    """Set the process-wide batch-size default (lanes per batched call)."""
    global _default_batch
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    _default_batch = batch


def get_default_batch() -> int:
    """The current process-wide batch-size default."""
    return _default_batch


def resolve_batch(batch: int | None) -> int:
    """Normalize a ``batch`` request to a concrete positive size.

    ``None`` means "use the process-wide default" (see
    :func:`set_default_batch`).
    """
    if batch is None:
        batch = _default_batch
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return batch


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    ``None`` means "use the process-wide default" (see
    :func:`set_default_workers`); ``0`` means "one per CPU".
    """
    if workers is None:
        workers = _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit: keyword parameters plus the trial's seed.

    ``params`` is a tuple of ``(name, value)`` pairs (hashable, so
    specs can be grouped); the seed is carried separately because the
    scheduler owns it -- it is fixed before dispatch, which is what
    makes ``workers=N`` deterministic.

    >>> spec = TrialSpec((("n", 9), ("window", 2)), seed=7)
    >>> spec.kwargs()
    {'n': 9, 'window': 2}
    """

    params: tuple[tuple[str, Any], ...]
    seed: int

    def kwargs(self) -> dict[str, Any]:
        """The parameter assignment as keyword arguments."""
        return dict(self.params)


# Process-local buffer for observability events raised inside trials.
# ``None`` means no collector is active (the default everywhere except
# inside a forwarding _invoke/_invoke_batch call).
_event_buffer: list[Any] | None = None


def record_event(event: Any) -> bool:
    """Buffer one event for forwarding to the dispatching process.

    Trial-side hook: called from inside a trial function (directly, or
    via a bus subscription) it appends ``event`` to the active
    collection, to be replayed through the parent's ``on_event`` after
    the trial's result is collected. Returns ``True`` when a collector
    is active, ``False`` when the event was dropped (no ``on_event``
    was requested) -- callers need not check, the no-collector case is
    exactly the "nobody is listening" case.
    """
    if _event_buffer is None:
        return False
    _event_buffer.append(event)
    return True


def _call_collecting(fn: Callable[..., Any], kwargs: dict[str, Any]) -> tuple[Any, list[Any]]:
    """Run ``fn(**kwargs)`` with an active event collector."""
    global _event_buffer
    previous = _event_buffer
    _event_buffer = collected = []
    try:
        return fn(**kwargs), collected
    finally:
        _event_buffer = previous


def _invoke(payload: tuple[Callable[..., Any], TrialSpec, bool]) -> Any:
    """Worker-side entry point: run one trial (must be module-level)."""
    fn, spec, forward = payload
    kwargs = dict(spec.kwargs(), seed=spec.seed)
    if forward:
        return _call_collecting(fn, kwargs)
    return fn(**kwargs)


def _invoke_batch(
    payload: tuple[
        Callable[..., Any], tuple[tuple[str, Any], ...], tuple[int, ...], bool
    ]
) -> Any:
    """Worker-side entry point: run one batched group of trials."""
    batch_fn, params, seeds, forward = payload
    kwargs = dict(params, seeds=list(seeds))
    if forward:
        results, events = _call_collecting(batch_fn, kwargs)
        return list(results), events
    return list(batch_fn(**kwargs))


def _batch_groups(
    specs: Sequence[TrialSpec], size: int
) -> list[tuple[tuple[tuple[str, Any], ...], list[int]]]:
    """Group *consecutive* same-parameter specs into seed batches.

    Only adjacency is exploited (sweep grids emit their repeats
    back-to-back), so flattening group results in group order restores
    exactly the original spec order.
    """
    groups: list[tuple[tuple[tuple[str, Any], ...], list[int]]] = []
    for spec in specs:
        if groups and groups[-1][0] == spec.params and len(groups[-1][1]) < size:
            groups[-1][1].append(spec.seed)
        else:
            groups.append((spec.params, [spec.seed]))
    return groups


def _check_shippable(fn: Callable[..., Any], payloads: Any, count: int) -> None:
    # Check shippability of *every* payload up front (an unpicklable
    # parameter may appear in any spec, not just the first), so a
    # pickling failure is diagnosed as such -- and so exceptions raised
    # *by* fn inside workers propagate untouched instead of being
    # mislabelled.
    try:
        pickle.dumps(payloads)
    except Exception as exc:
        raise ValueError(
            f"workers={count} requires a picklable trial function and "
            f"parameters, but {fn!r} (or a spec's parameters) could not "
            "be shipped to worker processes; use a module-level function "
            "and picklable parameter values, or run with workers=1"
        ) from exc


def run_trials(
    fn: Callable[..., Any],
    specs: Sequence[TrialSpec],
    workers: int | None = 1,
    batch: int | None = 1,
    batch_fn: Callable[..., Sequence[Any]] | None = None,
    on_event: Callable[[Any], None] | None = None,
) -> list[Any]:
    """Run ``fn(**spec.params, seed=spec.seed)`` for every spec, in order.

    With one resolved worker (or at most one spec) this runs serially
    in-process -- no pool, no pickling requirement. Otherwise trials
    fan out over a process pool; results return in the order of
    ``specs`` (never completion order), and each trial's seed is taken
    from its spec, so for deterministic ``fn`` the output is identical
    to the serial path's.

    ``batch`` (with a ``batch_fn``, defaulting to ``fn``'s own
    ``batch_fn`` attribute) additionally groups consecutive
    same-parameter specs into one ``batch_fn(seeds=[...], **params)``
    call of up to ``batch`` seeds -- see the module docstring for the
    equivalence contract. An explicit ``batch > 1`` without a batched
    form is an error; a process-wide *default* batch (``None`` here)
    silently degrades to unbatched execution for trial functions that
    have no batched form.

    >>> specs = [TrialSpec((("scale", 10),), seed=s) for s in (1, 2, 3)]
    >>> run_trials(lambda scale, seed: scale * seed, specs)
    [10, 20, 30]

    The batch_fn contract -- one result per seed, in seed order, equal
    to the per-trial calls (how ``repro.workloads.run_dac_trial_batch``
    and the DBAC/Byzantine forms are written, each backed by a
    :mod:`repro.sim.batch` lock-step kernel):

    >>> def scaled(scale, seed):
    ...     return scale * seed
    >>> def scaled_batch(scale, seeds=()):
    ...     return [scale * seed for seed in seeds]
    >>> run_trials(scaled, specs, batch=2, batch_fn=scaled_batch)
    [10, 20, 30]

    ``on_event`` opts into **event forwarding**: events a trial hands
    to :func:`record_event` -- on any worker, at any batch size -- are
    replayed as ``on_event(event)`` on the calling process, in spec
    order (events of trial *i* before events of trial *i+1*, each
    trial's in emission order), before this function returns. Without
    ``on_event``, recorded events are dropped at the source.
    """
    count = resolve_workers(workers)
    size = resolve_batch(batch)
    specs = list(specs)
    forward = on_event is not None
    if batch_fn is None:
        batch_fn = getattr(fn, "batch_fn", None)
    if size > 1 and batch_fn is None:
        if batch is not None:
            raise ValueError(
                f"batch={size} requires a batched trial function "
                "(batch_fn=... or an fn.batch_fn attribute); run with "
                "batch=1 for plain per-trial execution"
            )
        size = 1
    if size <= 1:
        payloads = [(fn, spec, forward) for spec in specs]
        if count <= 1 or len(specs) <= 1:
            raw = [_invoke(payload) for payload in payloads]
        else:
            _check_shippable(fn, payloads, count)
            max_workers = min(count, len(specs))
            # Chunking amortizes IPC for large grids without hurting balance.
            chunksize = max(1, len(specs) // (max_workers * 4))
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                raw = list(pool.map(_invoke, payloads, chunksize=chunksize))
        if not forward:
            return raw
        results = []
        for result, events in raw:
            for event in events:
                on_event(event)
            results.append(result)
        return results

    groups = _batch_groups(specs, size)
    payloads = [(batch_fn, params, tuple(seeds), forward) for params, seeds in groups]
    if count <= 1 or len(payloads) <= 1:
        nested = [_invoke_batch(payload) for payload in payloads]
    else:
        _check_shippable(batch_fn, payloads, count)
        max_workers = min(count, len(payloads))
        chunksize = max(1, len(payloads) // (max_workers * 4))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            nested = list(pool.map(_invoke_batch, payloads, chunksize=chunksize))
    if forward:
        unwrapped = []
        for group_results, events in nested:
            for event in events:
                on_event(event)
            unwrapped.append(group_results)
        nested = unwrapped
    results = []
    for (params, seeds), group_results in zip(groups, nested):
        if len(group_results) != len(seeds):
            raise ValueError(
                f"batched trial function {batch_fn!r} returned "
                f"{len(group_results)} results for {len(seeds)} seeds "
                f"(params {params!r}); it must return one result per seed, "
                "in seed order"
            )
        results.extend(group_results)
    return results
