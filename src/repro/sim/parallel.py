"""Parallel trial execution: fan independent simulations over processes.

Sweeps and repeated scenario runs are embarrassingly parallel: every
trial is a pure function of its parameter assignment and seed (the
engine is deterministic by construction, see :mod:`repro.sim.engine`).
This module is the single place that turns a list of such trials into
results using a :class:`concurrent.futures.ProcessPoolExecutor`, with
two guarantees that make ``workers=N`` a pure speed knob:

- **deterministic seeding** -- every trial's seed lives in its
  :class:`TrialSpec`, fixed *before* any work is dispatched, so the
  schedule (which worker runs what, and when) cannot influence it;
- **order-stable collection** -- results come back in spec order
  regardless of completion order, so records built from them are
  identical to a serial run's, element for element.

A second, orthogonal speed knob is **batching**: when the caller
supplies a *batched* trial function (``batch_fn(seeds=[...], **params)
-> [result, ...]``, e.g. one built on :mod:`repro.sim.batch`),
consecutive specs sharing a parameter assignment are grouped into
chunks of up to ``batch`` seeds and dispatched as one call. The
contract -- asserted by the determinism suite -- is that the batched
function returns exactly ``[fn(**params, seed=s) for s in seeds]``, so
``batch=B`` composes with ``workers=N`` (batches fan out over the
pool) while leaving results identical, element for element.

Trial functions must be picklable (module-level functions, not lambdas
or closures) when ``workers > 1``; the serial path has no such
restriction, which keeps ad-hoc lambdas working for ``workers=1``.

**Persistent worker pool.** By default (``pool="persist"``) the
process pool is a lazily-created module-level singleton reused across
``run_trials`` / ``Sweep.run`` calls, so pool startup is paid once per
process instead of once per sweep and warm workers keep their
per-process caches (interned Topologies, routing plans, and the
content-hash keyed structure-table memo of :mod:`repro.sim.arena`)
across sweeps. :func:`close_pool` tears it down explicitly (also
wired to ``atexit``); ``pool="fresh"`` restores the old
pool-per-call behaviour. A crashed pool is closed and rebuilt on the
next call; the crash itself propagates.

**Shared-memory arenas.** Batched dispatch additionally publishes the
per-topology structure tables a sweep will need (declared by the
batched function's optional ``arena_plan(params)`` attribute) to
shared-memory segments, once per :attr:`Topology.content_hash`, and
ships workers a tiny manifest instead of re-pickled arrays -- workers
attach the tables read-only, zero-copy. ``arenas=False`` (CLI
``--no-arenas``) disables publication; without numpy or
``shared_memory`` it silently degrades to the plain pickle path.
Results are bit-identical either way.

**Adaptive dispatch.** Work is submitted as deterministically-sized
*guided* chunks (sizes decay from ``len/2W`` toward 1), so early
chunks amortize IPC while the small tail keeps heterogeneous grids
(mixed ``n``, mixed adversaries) balanced across workers without
work-stealing nondeterminism: chunk boundaries depend only on counts,
and collection stays order-stable.

**Event forwarding.** Observability events raised inside a trial
(e.g. ``repro.obs`` ``RunFinished``) used to die with their worker
process. A trial that calls :func:`record_event` now gets its events
shipped back alongside its result and replayed -- in spec order, on
the parent process -- through ``run_trials(on_event=...)``. Events
must be picklable (the bus events are frozen scalar dataclasses);
forwarding is inert unless the caller passes ``on_event``, so
ordinary sweeps pay nothing.
"""

from __future__ import annotations

import atexit
import os
import pickle
import threading
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any

from repro.sim.arena import ArenaRegistry, arenas_available, attach_manifest

# Process-wide defaults consulted when ``workers=None`` / ``batch=None``
# is requested. CLI entry points set these from their ``--workers`` and
# ``--batch`` flags so library code (e.g. experiments built on
# repro.bench.sweep.Sweep) picks the values up without threading them
# through every call site.
_default_workers = 1
_default_batch = 1

_POOL_MODES = ("persist", "fresh")


def set_default_workers(workers: int) -> None:
    """Set the process-wide worker default (``0`` means all CPUs)."""
    global _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    _default_workers = workers


def get_default_workers() -> int:
    """The current process-wide worker default."""
    return _default_workers


def set_default_batch(batch: int) -> None:
    """Set the process-wide batch-size default (lanes per batched call)."""
    global _default_batch
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    _default_batch = batch


def get_default_batch() -> int:
    """The current process-wide batch-size default."""
    return _default_batch


def resolve_batch(batch: int | None) -> int:
    """Normalize a ``batch`` request to a concrete positive size.

    ``None`` means "use the process-wide default" (see
    :func:`set_default_batch`).
    """
    if batch is None:
        batch = _default_batch
    if batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    return batch


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    ``None`` means "use the process-wide default" (see
    :func:`set_default_workers`); ``0`` means "one per CPU".
    """
    if workers is None:
        workers = _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


def resolve_pool(pool: str | None) -> str:
    """Normalize a ``pool`` request to a concrete lifecycle mode.

    ``None`` means the default, ``"persist"`` (reuse the module-level
    pool across calls); ``"fresh"`` spins a pool up per call.
    """
    if pool is None:
        return "persist"
    if pool not in _POOL_MODES:
        raise ValueError(f"pool must be one of {_POOL_MODES}, got {pool!r}")
    return pool


# -- Persistent worker pool ---------------------------------------------

_pool_executor: ProcessPoolExecutor | None = None
_pool_size = 0
_pool_atexit_installed = False

# Guards the (_pool_executor, _pool_size) pair so concurrent
# get_pool/close_pool calls observe consistent state. The pool itself
# is still **single-owner**: one thread at a time may dispatch work
# through it (repro.service serializes all run_trials calls onto one
# dispatch thread); the lock makes lifecycle transitions safe, not
# concurrent fan-out.
_pool_lock = threading.Lock()

# One registry for the process: segments published for any sweep stay
# available (keyed by content hash) until the pool is closed.
_arena_registry = ArenaRegistry()


def arena_registry() -> ArenaRegistry:
    """The process-wide arena registry (tests, benches, diagnostics)."""
    return _arena_registry


def get_pool(workers: int) -> ProcessPoolExecutor:
    """The persistent pool, created lazily and grown on demand.

    A pool at least ``workers`` wide is reused as-is (idle workers are
    cheap, warm caches are not); a narrower one is drained and
    replaced. The grow path is atomic: the replacement pool is
    constructed *before* the old one is discarded, so a failing
    constructor leaves the previous pool installed and the
    ``(_pool_executor, _pool_size)`` pair consistent. First creation
    registers :func:`close_pool` with ``atexit`` so interpreter exit
    always reaches the teardown path.
    """
    global _pool_executor, _pool_size, _pool_atexit_installed
    with _pool_lock:
        if _pool_executor is not None and _pool_size < workers:
            replacement = ProcessPoolExecutor(max_workers=workers)
            previous, _pool_executor = _pool_executor, replacement
            _pool_size = workers
            previous.shutdown(wait=True)
        if _pool_executor is None:
            _pool_executor = ProcessPoolExecutor(max_workers=workers)
            _pool_size = workers
        if not _pool_atexit_installed:
            _pool_atexit_installed = True
            atexit.register(close_pool)
        return _pool_executor


def close_pool() -> None:
    """Shut down the persistent pool and unlink all arena segments.

    Idempotent; the next pooled ``run_trials`` call simply recreates
    both. This is the deterministic cleanup point -- ``atexit`` and
    the arena module's signal path funnel into the same teardown.
    Safe to race with :func:`get_pool` from another thread (the module
    state swap is locked), and a failing executor shutdown still
    reaches the arena teardown -- neither resource is leaked when the
    other's cleanup raises.
    """
    global _pool_executor, _pool_size
    with _pool_lock:
        executor, _pool_executor = _pool_executor, None
        _pool_size = 0
    try:
        if executor is not None:
            executor.shutdown(wait=True)
    finally:
        _arena_registry.close()


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit: keyword parameters plus the trial's seed.

    ``params`` is a tuple of ``(name, value)`` pairs (hashable, so
    specs can be grouped); the seed is carried separately because the
    scheduler owns it -- it is fixed before dispatch, which is what
    makes ``workers=N`` deterministic.

    >>> spec = TrialSpec((("n", 9), ("window", 2)), seed=7)
    >>> spec.kwargs()
    {'n': 9, 'window': 2}
    """

    params: tuple[tuple[str, Any], ...]
    seed: int

    def kwargs(self) -> dict[str, Any]:
        """The parameter assignment as keyword arguments."""
        return dict(self.params)


# Process-local buffer for observability events raised inside trials.
# ``None`` means no collector is active (the default everywhere except
# inside a forwarding _invoke/_invoke_batch call).
_event_buffer: list[Any] | None = None


def record_event(event: Any) -> bool:
    """Buffer one event for forwarding to the dispatching process.

    Trial-side hook: called from inside a trial function (directly, or
    via a bus subscription) it appends ``event`` to the active
    collection, to be replayed through the parent's ``on_event`` after
    the trial's result is collected. Returns ``True`` when a collector
    is active, ``False`` when the event was dropped (no ``on_event``
    was requested) -- callers need not check, the no-collector case is
    exactly the "nobody is listening" case.
    """
    if _event_buffer is None:
        return False
    _event_buffer.append(event)
    return True


def _call_collecting(fn: Callable[..., Any], kwargs: dict[str, Any]) -> tuple[Any, list[Any]]:
    """Run ``fn(**kwargs)`` with an active event collector."""
    global _event_buffer
    previous = _event_buffer
    _event_buffer = collected = []
    try:
        return fn(**kwargs), collected
    finally:
        _event_buffer = previous


def _invoke(payload: tuple[Callable[..., Any], TrialSpec, bool]) -> Any:
    """Worker-side entry point: run one trial (must be module-level)."""
    fn, spec, forward = payload
    kwargs = dict(spec.kwargs(), seed=spec.seed)
    if forward:
        return _call_collecting(fn, kwargs)
    return fn(**kwargs)


def _invoke_batch(
    payload: tuple[
        Callable[..., Any], tuple[tuple[str, Any], ...], tuple[int, ...], bool
    ]
) -> Any:
    """Worker-side entry point: run one batched group of trials."""
    batch_fn, params, seeds, forward = payload
    kwargs = dict(params, seeds=list(seeds))
    if forward:
        results, events = _call_collecting(batch_fn, kwargs)
        return list(results), events
    return list(batch_fn(**kwargs))


def _invoke_chunk(payloads: list[Any]) -> list[Any]:
    """Worker-side entry point: run one guided chunk of trials."""
    results = []
    for payload in payloads:
        fn, spec, forward = payload
        value = _invoke(payload)
        if forward:
            _check_returnable(value, fn, spec.params, (spec.seed,))
        results.append(value)
    return results


def _invoke_batch_chunk(job: tuple[Any, list[Any]]) -> list[Any]:
    """Worker-side entry point: attach arenas, then run a chunk of groups.

    The manifest ships once per chunk (not per group): workers attach
    the published structure tables read-only before the first group
    runs, so every batched kernel in the chunk hits shared memory
    instead of rebuilding tables. A ``None`` manifest (arenas off or
    unavailable) is a no-op.
    """
    manifest, payloads = job
    if manifest:
        attach_manifest(manifest)
    results = []
    for payload in payloads:
        batch_fn, params, seeds, forward = payload
        value = _invoke_batch(payload)
        if forward:
            _check_returnable(value, batch_fn, params, seeds)
        results.append(value)
    return results


def _batch_groups(
    specs: Sequence[TrialSpec], size: int
) -> list[tuple[tuple[tuple[str, Any], ...], list[int]]]:
    """Group *consecutive* same-parameter specs into seed batches.

    Only adjacency is exploited (sweep grids emit their repeats
    back-to-back), so flattening group results in group order restores
    exactly the original spec order.
    """
    groups: list[tuple[tuple[tuple[str, Any], ...], list[int]]] = []
    for spec in specs:
        if groups and groups[-1][0] == spec.params and len(groups[-1][1]) < size:
            groups[-1][1].append(spec.seed)
        else:
            groups.append((spec.params, [spec.seed]))
    return groups


def _check_shippable(fn: Callable[..., Any], jobs: Any, count: int) -> None:
    # Check shippability of *every* job up front -- the full tuples as
    # dispatched, arena manifest included, not just the trial payloads
    # (an unpicklable value may hide in any spec's parameters or in the
    # manifest) -- so a pickling failure is diagnosed as such before
    # anything reaches the pool, and so exceptions raised *by* fn
    # inside workers propagate untouched instead of being mislabelled.
    try:
        pickle.dumps(jobs)
    except Exception as exc:
        raise ValueError(
            f"workers={count} requires a picklable trial function and "
            f"parameters, but {fn!r} (or a spec's parameters, or the "
            "dispatched job envelope) could not be shipped to worker "
            "processes; use a module-level function and picklable "
            "parameter values, or run with workers=1"
        ) from exc


def _check_returnable(value: Any, fn: Callable[..., Any], params: Any, seeds: Any) -> None:
    # Worker-side guard for the *return* path: with event forwarding on,
    # the shipped-back value carries whatever the trial handed to
    # record_event. An unpicklable event would otherwise die inside the
    # executor's result pipe as an opaque pool error; pickling here
    # names the offending trial while its identity is still in hand.
    try:
        pickle.dumps(value)
    except Exception as exc:
        raise ValueError(
            f"trial function {fn!r} (params {dict(params)!r}, seeds "
            f"{list(seeds)!r}) produced a result or forwarded event that "
            "could not be pickled back to the dispatching process; "
            "forwarded events must be picklable (the repro.obs bus "
            "events are frozen scalar dataclasses), or drop on_event"
        ) from exc


def _chunk_bounds(count: int, max_workers: int) -> list[tuple[int, int]]:
    """Deterministic guided chunking over ``range(count)``.

    Each chunk takes ``remaining // (2 * max_workers)`` items (at least
    one), so sizes decay geometrically: early chunks amortize IPC, the
    tail of single-item chunks keeps heterogeneous grids balanced.
    Boundaries depend only on the two counts -- never on timing -- so
    dispatch stays reproducible.
    """
    bounds: list[tuple[int, int]] = []
    start = 0
    while start < count:
        size = max(1, (count - start) // (max_workers * 2))
        bounds.append((start, start + size))
        start += size
    return bounds


def _collect(
    executor: ProcessPoolExecutor, chunk_fn: Callable[[Any], list[Any]], jobs: list[Any]
) -> list[Any]:
    # Submission order == collection order: order-stable by construction.
    futures = [executor.submit(chunk_fn, job) for job in jobs]
    results: list[Any] = []
    for future in futures:
        results.extend(future.result())
    return results


def _fan_out(
    chunk_fn: Callable[[Any], list[Any]],
    jobs: list[Any],
    max_workers: int,
    pool_mode: str,
) -> list[Any]:
    if pool_mode == "fresh":
        with ProcessPoolExecutor(max_workers=max_workers) as executor:
            return _collect(executor, chunk_fn, jobs)
    executor = get_pool(max_workers)
    try:
        return _collect(executor, chunk_fn, jobs)
    except BrokenProcessPool:
        # A dead pool cannot be reused: tear it (and the arena
        # segments only its workers held attached) down so the next
        # call starts clean, then let the crash propagate.
        close_pool()
        raise


def run_trials(
    fn: Callable[..., Any],
    specs: Sequence[TrialSpec],
    workers: int | None = 1,
    batch: int | None = 1,
    batch_fn: Callable[..., Sequence[Any]] | None = None,
    on_event: Callable[[Any], None] | None = None,
    pool: str | None = None,
    arenas: bool | None = None,
) -> list[Any]:
    """Run ``fn(**spec.params, seed=spec.seed)`` for every spec, in order.

    With one resolved worker (or at most one spec) this runs serially
    in-process -- no pool, no pickling requirement. Otherwise trials
    fan out over a process pool; results return in the order of
    ``specs`` (never completion order), and each trial's seed is taken
    from its spec, so for deterministic ``fn`` the output is identical
    to the serial path's.

    ``pool`` selects the pool lifecycle: ``"persist"`` (the default)
    reuses the module-level pool across calls (see :func:`get_pool` /
    :func:`close_pool`), ``"fresh"`` spins one up per call. ``arenas``
    (default True) lets batched dispatch publish shared-memory
    structure tables for the workers to attach -- a pure speed knob,
    silently skipped when unavailable.

    ``batch`` (with a ``batch_fn``, defaulting to ``fn``'s own
    ``batch_fn`` attribute) additionally groups consecutive
    same-parameter specs into one ``batch_fn(seeds=[...], **params)``
    call of up to ``batch`` seeds -- see the module docstring for the
    equivalence contract. An explicit ``batch > 1`` without a batched
    form is an error; a process-wide *default* batch (``None`` here)
    silently degrades to unbatched execution for trial functions that
    have no batched form.

    >>> specs = [TrialSpec((("scale", 10),), seed=s) for s in (1, 2, 3)]
    >>> run_trials(lambda scale, seed: scale * seed, specs)
    [10, 20, 30]

    The batch_fn contract -- one result per seed, in seed order, equal
    to the per-trial calls (how ``repro.workloads.run_dac_trial_batch``
    and the DBAC/Byzantine forms are written, each backed by a
    :mod:`repro.sim.batch` lock-step kernel):

    >>> def scaled(scale, seed):
    ...     return scale * seed
    >>> def scaled_batch(scale, seeds=()):
    ...     return [scale * seed for seed in seeds]
    >>> run_trials(scaled, specs, batch=2, batch_fn=scaled_batch)
    [10, 20, 30]

    ``on_event`` opts into **event forwarding**: events a trial hands
    to :func:`record_event` -- on any worker, at any batch size -- are
    replayed as ``on_event(event)`` on the calling process, in spec
    order (events of trial *i* before events of trial *i+1*, each
    trial's in emission order), before this function returns. Without
    ``on_event``, recorded events are dropped at the source.
    """
    count = resolve_workers(workers)
    size = resolve_batch(batch)
    pool_mode = resolve_pool(pool)
    use_arenas = True if arenas is None else bool(arenas)
    specs = list(specs)
    forward = on_event is not None
    if batch_fn is None:
        batch_fn = getattr(fn, "batch_fn", None)
    if size > 1 and batch_fn is None:
        if batch is not None:
            raise ValueError(
                f"batch={size} requires a batched trial function "
                "(batch_fn=... or an fn.batch_fn attribute); run with "
                "batch=1 for plain per-trial execution"
            )
        size = 1
    if size <= 1:
        payloads = [(fn, spec, forward) for spec in specs]
        if count <= 1 or len(specs) <= 1:
            raw = [_invoke(payload) for payload in payloads]
        else:
            max_workers = min(count, len(specs))
            jobs = [
                payloads[start:stop]
                for start, stop in _chunk_bounds(len(payloads), max_workers)
            ]
            _check_shippable(fn, jobs, count)
            raw = _fan_out(_invoke_chunk, jobs, max_workers, pool_mode)
        if not forward:
            return raw
        results = []
        for result, events in raw:
            for event in events:
                on_event(event)
            results.append(result)
        return results

    groups = _batch_groups(specs, size)
    payloads = [(batch_fn, params, tuple(seeds), forward) for params, seeds in groups]
    if count <= 1 or len(payloads) <= 1:
        nested = [_invoke_batch(payload) for payload in payloads]
    else:
        manifest = None
        if use_arenas and arenas_available():
            plan_fn = getattr(batch_fn, "arena_plan", None)
            if plan_fn is not None:
                topologies = []
                for params, _seeds in groups:
                    topologies.extend(plan_fn(dict(params)))
                if topologies:
                    manifest = _arena_registry.publish(topologies)
        max_workers = min(count, len(payloads))
        jobs = [
            (manifest, payloads[start:stop])
            for start, stop in _chunk_bounds(len(payloads), max_workers)
        ]
        _check_shippable(batch_fn, jobs, count)
        nested = _fan_out(_invoke_batch_chunk, jobs, max_workers, pool_mode)
    if forward:
        unwrapped = []
        for group_results, events in nested:
            for event in events:
                on_event(event)
            unwrapped.append(group_results)
        nested = unwrapped
    results = []
    for (params, seeds), group_results in zip(groups, nested):
        if len(group_results) != len(seeds):
            raise ValueError(
                f"batched trial function {batch_fn!r} returned "
                f"{len(group_results)} results for {len(seeds)} seeds "
                f"(params {params!r}); it must return one result per seed, "
                "in seed order"
            )
        results.extend(group_results)
    return results
