"""Parallel trial execution: fan independent simulations over processes.

Sweeps and repeated scenario runs are embarrassingly parallel: every
trial is a pure function of its parameter assignment and seed (the
engine is deterministic by construction, see :mod:`repro.sim.engine`).
This module is the single place that turns a list of such trials into
results using a :class:`concurrent.futures.ProcessPoolExecutor`, with
two guarantees that make ``workers=N`` a pure speed knob:

- **deterministic seeding** -- every trial's seed lives in its
  :class:`TrialSpec`, fixed *before* any work is dispatched, so the
  schedule (which worker runs what, and when) cannot influence it;
- **order-stable collection** -- results come back in spec order
  regardless of completion order, so records built from them are
  identical to a serial run's, element for element.

Trial functions must be picklable (module-level functions, not lambdas
or closures) when ``workers > 1``; the serial path has no such
restriction, which keeps ad-hoc lambdas working for ``workers=1``.
"""

from __future__ import annotations

import os
import pickle
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any

# Process-wide default consulted when ``workers=None`` is requested.
# CLI entry points set this from their ``--workers`` flag so library
# code (e.g. experiments built on repro.bench.sweep.Sweep) picks the
# value up without threading it through every call site.
_default_workers = 1


def set_default_workers(workers: int) -> None:
    """Set the process-wide worker default (``0`` means all CPUs)."""
    global _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    _default_workers = workers


def get_default_workers() -> int:
    """The current process-wide worker default."""
    return _default_workers


def resolve_workers(workers: int | None) -> int:
    """Normalize a ``workers`` request to a concrete positive count.

    ``None`` means "use the process-wide default" (see
    :func:`set_default_workers`); ``0`` means "one per CPU".
    """
    if workers is None:
        workers = _default_workers
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    if workers == 0:
        workers = os.cpu_count() or 1
    return workers


@dataclass(frozen=True)
class TrialSpec:
    """One schedulable unit: keyword parameters plus the trial's seed."""

    params: tuple[tuple[str, Any], ...]
    seed: int

    def kwargs(self) -> dict[str, Any]:
        """The parameter assignment as keyword arguments."""
        return dict(self.params)


def _invoke(payload: tuple[Callable[..., Any], TrialSpec]) -> Any:
    """Worker-side entry point: run one trial (must be module-level)."""
    fn, spec = payload
    return fn(**spec.kwargs(), seed=spec.seed)


def run_trials(
    fn: Callable[..., Any],
    specs: Sequence[TrialSpec],
    workers: int | None = 1,
) -> list[Any]:
    """Run ``fn(**spec.params, seed=spec.seed)`` for every spec, in order.

    With one resolved worker (or at most one spec) this runs serially
    in-process -- no pool, no pickling requirement. Otherwise trials
    fan out over a process pool; results return in the order of
    ``specs`` (never completion order), and each trial's seed is taken
    from its spec, so for deterministic ``fn`` the output is identical
    to the serial path's.
    """
    count = resolve_workers(workers)
    specs = list(specs)
    if count <= 1 or len(specs) <= 1:
        return [fn(**spec.kwargs(), seed=spec.seed) for spec in specs]
    payloads = [(fn, spec) for spec in specs]
    # Check shippability of *every* payload up front (an unpicklable
    # parameter may appear in any spec, not just the first), so a
    # pickling failure is diagnosed as such -- and so exceptions raised
    # *by* fn inside workers propagate untouched instead of being
    # mislabelled.
    try:
        pickle.dumps(payloads)
    except Exception as exc:
        raise ValueError(
            f"workers={count} requires a picklable trial function and "
            f"parameters, but {fn!r} (or a spec's parameters) could not "
            "be shipped to worker processes; use a module-level function "
            "and picklable parameter values, or run with workers=1"
        ) from exc
    max_workers = min(count, len(specs))
    # Chunking amortizes IPC for large grids without hurting balance.
    chunksize = max(1, len(specs) // (max_workers * 4))
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_invoke, payloads, chunksize=chunksize))
