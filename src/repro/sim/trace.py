"""Execution traces: everything the analysis layer needs, per round.

A trace records, for every round, the adversary's chosen graph, each
node's adversary-visible state snapshot after the round, and delivery
accounting. Traces are what the dynaDegree checker runs on post-hoc,
what convergence analysis reads, and what failure reports print.

:class:`ExecutionTrace` is the in-RAM implementation of the engine's
**sink contract**: anything with ``record(RoundSnapshot)`` can be
passed as ``Engine(trace_sink=...)``. For runs too long to buffer,
:class:`repro.sim.persistence.TraceWriter` satisfies the same
contract while spilling chunks to disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.net.dynamic import DynamicGraph
from repro.net.topology import Topology


@dataclass
class RoundSnapshot:
    """State of the system at the end of one round."""

    round: int
    graph: Topology
    states: dict[int, dict[str, Any]]
    delivered: int
    bits: int
    live_senders: frozenset[int]


@dataclass
class ExecutionTrace:
    """Ordered per-round snapshots of one execution."""

    n: int
    rounds: list[RoundSnapshot] = field(default_factory=list)

    def record(self, snapshot: RoundSnapshot) -> None:
        """Append one round (engine-internal)."""
        self.rounds.append(snapshot)

    def __len__(self) -> int:
        return len(self.rounds)

    def at(self, t: int) -> Topology:
        """The graph the adversary chose in round ``t``."""
        return self.rounds[t].graph

    def unique_graphs(self) -> list[Topology]:
        """Distinct round graphs in first-appearance order.

        Deduplicated on the stable content hash -- enforcing and
        periodic adversaries replay a short cycle, so this is typically
        tiny compared to the round count (the persistence layer stores
        exactly this table).
        """
        seen: set[int] = set()
        unique: list[Topology] = []
        for snap in self.rounds:
            marker = snap.graph.content_hash
            if marker not in seen:
                seen.add(marker)
                unique.append(snap.graph)
        return unique

    def dynamic_graph(self) -> DynamicGraph:
        """The recorded ``E(t)`` sequence as a :class:`DynamicGraph`."""
        dyn = DynamicGraph(self.n)
        for snap in self.rounds:
            dyn.record(snap.graph)
        return dyn

    def phase_of(self, node: int, t: int) -> int | None:
        """Node's phase at the end of round ``t`` (``None`` if not recorded)."""
        state = self.rounds[t].states.get(node)
        return None if state is None else state.get("phase")

    def value_of(self, node: int, t: int) -> float | None:
        """Node's state value at the end of round ``t``."""
        state = self.rounds[t].states.get(node)
        return None if state is None else state.get("value")

    def total_bits(self) -> int:
        """Total bits delivered across the whole execution."""
        return sum(snap.bits for snap in self.rounds)

    def total_delivered(self) -> int:
        """Total messages delivered across the whole execution."""
        return sum(snap.delivered for snap in self.rounds)
