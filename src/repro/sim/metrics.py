"""Metrics: counters plus the per-phase range series behind every
convergence claim in the paper.

:class:`PhaseRangeSeries` materializes the paper's ``V(p)`` multisets
(Definitions 5 and 6): the phase-``p`` state of every watched node,
where a node that *jumps* over phases contributes its landing value to
each skipped phase. ``range(V(p+1)) / range(V(p))`` is the measured
convergence rate that experiments E2 and E5 compare against the proven
``1/2`` (DAC) and ``1 - 2^-n`` (DBAC) bounds.
"""

from __future__ import annotations

from collections.abc import Collection, Mapping
from dataclasses import dataclass, field
from typing import Any


@dataclass
class MetricsCollector:
    """Flat counters over one execution."""

    rounds: int = 0
    broadcasts: int = 0
    delivered: int = 0
    bits: int = 0
    per_round_delivered: list[int] = field(default_factory=list)
    per_round_bits: list[int] = field(default_factory=list)

    def on_round(self, delivered: int, bits: int, broadcasts: int) -> None:
        """Engine hook: account one completed round."""
        self.rounds += 1
        self.broadcasts += broadcasts
        self.delivered += delivered
        self.bits += bits
        self.per_round_delivered.append(delivered)
        self.per_round_bits.append(bits)

    @property
    def mean_bits_per_round(self) -> float:
        """Average delivered bits per round (0.0 before any round)."""
        return self.bits / self.rounds if self.rounds else 0.0


class PhaseRangeSeries:
    """Tracks the multiset ``V(p)`` for each phase ``p``.

    Parameters
    ----------
    watched:
        The nodes whose states constitute ``V(p)``. For the crash model
        this is every non-Byzantine node (crashed nodes contribute up
        to the phases they reached -- Definition 5 keeps "nodes that
        have not crashed yet"); for the Byzantine model it is exactly
        the fault-free nodes (Section V redefines ``V(p)`` that way).

    Feed it phase/value transitions via :meth:`observe_states` once per
    round; it applies Definition 6 to jumps (skipped phases inherit the
    landing value).
    """

    def __init__(self, watched: Collection[int]) -> None:
        self._watched = frozenset(watched)
        self._last_phase: dict[int, int] = {}
        self._values_by_phase: dict[int, list[float]] = {}

    @property
    def watched(self) -> frozenset[int]:
        """The nodes whose states are being tracked."""
        return self._watched

    def observe_states(self, states: Mapping[int, Mapping[str, Any]]) -> None:
        """Record any phase transitions visible in this round's snapshots.

        ``states`` maps node -> snapshot with at least ``value`` and
        ``phase`` keys; watched nodes absent from the mapping (crashed)
        are simply skipped.
        """
        for node in self._watched:
            state = states.get(node)
            if state is None:
                continue
            phase = int(state["phase"])
            value = float(state["value"])
            previous = self._last_phase.get(node)
            if previous is None:
                # First sighting: the node's input is its phase-p state
                # for every phase up to the current one (normally just
                # phase 0 at round 0).
                for p in range(0, phase + 1):
                    self._values_by_phase.setdefault(p, []).append(value)
            elif phase > previous:
                # Definition 6: skipped phases inherit the landing value.
                for p in range(previous + 1, phase + 1):
                    self._values_by_phase.setdefault(p, []).append(value)
            self._last_phase[node] = phase

    def record(self, phase: int, value: float) -> None:
        """Append ``value`` directly to ``V(phase)``.

        Seam for replaying externally recorded series (loaded traces,
        hand-built scenarios). Unlike :meth:`observe_states`, direct
        recording does not apply Definition 6's jump-filling, so the
        resulting series may contain empty middle phases --
        :meth:`range_series` keeps those aligned as ``None`` entries.
        """
        self._values_by_phase.setdefault(int(phase), []).append(float(value))

    def multiset(self, phase: int) -> list[float]:
        """The recorded ``V(phase)`` in chronological order."""
        return list(self._values_by_phase.get(phase, []))

    def max_phase(self) -> int:
        """Highest phase with at least one recorded state."""
        return max(self._values_by_phase, default=0)

    def range_of(self, phase: int) -> float | None:
        """``range(V(phase))`` or ``None`` when the phase is empty."""
        values = self._values_by_phase.get(phase)
        if not values:
            return None
        return max(values) - min(values)

    def range_series(self) -> list[float | None]:
        """``range(V(p))`` for every ``p = 0 .. max_phase()``, aligned.

        Index ``p`` of the returned list is always phase ``p``; a phase
        with no recorded states yields ``None`` instead of being
        dropped, so consumers pairing adjacent entries (convergence
        rates, decay fits) never silently pair non-adjacent phases.
        Engine-driven series have no empty middle phases (Definition 6
        fills jumped-over phases with the landing value), but series
        fed via :meth:`record` may. Partially-filled phases are still
        included -- their ranges remain meaningful upper-bound
        witnesses.
        """
        if not self._values_by_phase:
            return []
        return [self.range_of(p) for p in range(self.max_phase() + 1)]

    def convergence_rates(self) -> list[float]:
        """Measured per-phase rates ``range(V(p+1)) / range(V(p))``.

        Pairs involving an empty phase (``None`` in the aligned
        :meth:`range_series`) are undefined and skipped explicitly, as
        are phases whose predecessor range is (numerically) zero: once
        collapsed, the ratio is undefined and agreement already holds.
        """
        series = self.range_series()
        rates = []
        for before, after in zip(series, series[1:]):
            if before is None or after is None:
                continue  # undefined pair: one side has no recorded states
            if before > 1e-15:
                rates.append(after / before)
        return rates

    def interval_of(self, phase: int) -> tuple[float, float] | None:
        """``interval(V(phase)) = [min, max]`` or ``None`` when empty."""
        values = self._values_by_phase.get(phase)
        if not values:
            return None
        return (min(values), max(values))
