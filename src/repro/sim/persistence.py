"""Trace persistence and replay.

Executions are deterministic given their seeds, but a saved trace is
still the right artifact for bug reports, cross-version comparisons,
and postmortems of adversarial runs found by search: JSON in, JSON
out, and a :class:`~repro.adversary.base.ScheduleAdversary` that
replays the recorded link choices against fresh processes.

Format version 2 deduplicates round graphs through the Topology
content hash: enforced and periodic adversaries replay a small cycle
of graphs for thousands of rounds, so the file stores each distinct
edge set once in a ``graphs`` table and per-round indices into it.
Version-1 files (edges inlined per round) still load.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.adversary.base import ScheduleAdversary
from repro.net.dynamic import EdgeSchedule
from repro.net.topology import Topology
from repro.sim.trace import ExecutionTrace, RoundSnapshot

_FORMAT_VERSION = 2


def trace_to_dict(trace: ExecutionTrace) -> dict[str, Any]:
    """A JSON-serializable representation of a trace.

    Round graphs are deduplicated on their stable
    :attr:`~repro.net.topology.Topology.content_hash`: the ``graphs``
    table holds each distinct edge list once and every round stores an
    index into it.
    """
    unique = trace.unique_graphs()
    index_of = {graph.content_hash: position for position, graph in enumerate(unique)}
    rounds = []
    for snap in trace.rounds:
        rounds.append(
            {
                "round": snap.round,
                "graph": index_of[snap.graph.content_hash],
                "states": {
                    str(node): dict(state) for node, state in snap.states.items()
                },
                "delivered": snap.delivered,
                "bits": snap.bits,
                "live_senders": sorted(snap.live_senders),
            }
        )
    return {
        "version": _FORMAT_VERSION,
        "n": trace.n,
        "graphs": [
            [list(edge) for edge in graph.edge_list] for graph in unique
        ],
        "rounds": rounds,
    }


def _round_graph(row: dict[str, Any], n: int, graphs: list[Topology]) -> Topology:
    if "graph" in row:
        return graphs[int(row["graph"])]
    # Version-1 rows inline their edge list.
    return Topology(n, (tuple(e) for e in row["edges"]))


def trace_from_dict(payload: dict[str, Any]) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output (v1 or v2)."""
    version = payload.get("version")
    if version not in (1, _FORMAT_VERSION):
        raise ValueError(f"unsupported trace format version {version!r}")
    n = int(payload["n"])
    graphs = [
        Topology(n, (tuple(e) for e in edges))
        for edges in payload.get("graphs", [])
    ]
    trace = ExecutionTrace(n)
    for row in payload["rounds"]:
        trace.record(
            RoundSnapshot(
                round=int(row["round"]),
                graph=_round_graph(row, n, graphs),
                states={int(k): dict(v) for k, v in row["states"].items()},
                delivered=int(row["delivered"]),
                bits=int(row["bits"]),
                live_senders=frozenset(int(v) for v in row["live_senders"]),
            )
        )
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=1))


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace saved by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def replay_adversary(
    trace: ExecutionTrace,
    promise: tuple[int, int] | None = None,
    repeat: bool = False,
) -> ScheduleAdversary:
    """An adversary replaying the trace's recorded link choices.

    Rounds beyond the recorded length are empty unless ``repeat`` loops
    the recording. Replaying is how a violation found by stochastic
    search (or by the model checker) is turned into a deterministic
    regression test.
    """
    table = [trace.at(t).edge_list for t in range(len(trace))]
    if not table:
        raise ValueError("cannot replay an empty trace")
    schedule = EdgeSchedule.from_table(trace.n, table, repeat=repeat)
    return ScheduleAdversary(schedule, promise=promise)
