"""Trace persistence and replay.

Executions are deterministic given their seeds, but a saved trace is
still the right artifact for bug reports, cross-version comparisons,
and postmortems of adversarial runs found by search: JSON in, JSON
out, and a :class:`~repro.adversary.base.ScheduleAdversary` that
replays the recorded link choices against fresh processes.

Format version 2 deduplicates round graphs through the Topology
content hash: enforced and periodic adversaries replay a small cycle
of graphs for thousands of rounds, so the file stores each distinct
edge set once in a ``graphs`` table and per-round indices into it.
Version-1 files (edges inlined per round) still load.

Format version 3 is the **streaming spill**: JSONL, one header line
followed by append-only chunk lines, each chunk carrying up to
``chunk_rounds`` round rows plus the edge lists of any graph first
seen inside it (indices stay cumulative, so the v2 dedup table is
simply split across chunks in first-appearance order).
:class:`TraceWriter` is a drop-in ``trace_sink`` for
:class:`~repro.sim.engine.Engine` -- it holds at most one chunk of
rounds in memory, so a 10^6-round traced run costs O(chunk), not
O(rounds). :class:`TraceReader` iterates rounds lazily and tolerates
a truncated final chunk (a run killed mid-write loses at most the
unflushed tail). :func:`load_trace` sniffs the version and loads all
three formats uniformly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator

from repro.adversary.base import ScheduleAdversary
from repro.net.dynamic import EdgeSchedule
from repro.net.topology import Topology
from repro.sim.trace import ExecutionTrace, RoundSnapshot

_FORMAT_VERSION = 2
_STREAM_VERSION = 3

#: Default rounds per v3 chunk. Large enough that the JSON overhead of
#: chunk framing is negligible, small enough that the writer's buffer
#: (and a killed run's data loss) stays a few hundred kilobytes.
DEFAULT_CHUNK_ROUNDS = 256


def _encode_round(snap: RoundSnapshot, graph_index: int) -> dict[str, Any]:
    """One round as a JSON row (shared by the v2 and v3 encoders)."""
    return {
        "round": snap.round,
        "graph": graph_index,
        "states": {
            str(node): dict(state) for node, state in snap.states.items()
        },
        "delivered": snap.delivered,
        "bits": snap.bits,
        "live_senders": sorted(snap.live_senders),
    }


def _decode_round(
    row: dict[str, Any], n: int, graphs: list[Topology]
) -> RoundSnapshot:
    """Rebuild one round row against the cumulative graph table."""
    return RoundSnapshot(
        round=int(row["round"]),
        graph=_round_graph(row, n, graphs),
        states={int(k): dict(v) for k, v in row["states"].items()},
        delivered=int(row["delivered"]),
        bits=int(row["bits"]),
        live_senders=frozenset(int(v) for v in row["live_senders"]),
    )


def trace_to_dict(trace: ExecutionTrace) -> dict[str, Any]:
    """A JSON-serializable representation of a trace.

    Round graphs are deduplicated on their stable
    :attr:`~repro.net.topology.Topology.content_hash`: the ``graphs``
    table holds each distinct edge list once and every round stores an
    index into it.
    """
    unique = trace.unique_graphs()
    index_of = {graph.content_hash: position for position, graph in enumerate(unique)}
    rounds = [
        _encode_round(snap, index_of[snap.graph.content_hash])
        for snap in trace.rounds
    ]
    return {
        "version": _FORMAT_VERSION,
        "n": trace.n,
        "graphs": [
            [list(edge) for edge in graph.edge_list] for graph in unique
        ],
        "rounds": rounds,
    }


def _round_graph(row: dict[str, Any], n: int, graphs: list[Topology]) -> Topology:
    if "graph" in row:
        return graphs[int(row["graph"])]
    # Version-1 rows inline their edge list.
    return Topology(n, (tuple(e) for e in row["edges"]))


def trace_from_dict(payload: dict[str, Any]) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output (v1 or v2)."""
    version = payload.get("version")
    if version not in (1, _FORMAT_VERSION):
        raise ValueError(f"unsupported trace format version {version!r}")
    n = int(payload["n"])
    graphs = [
        Topology(n, (tuple(e) for e in edges))
        for edges in payload.get("graphs", [])
    ]
    trace = ExecutionTrace(n)
    for row in payload["rounds"]:
        trace.record(_decode_round(row, n, graphs))
    return trace


class TraceWriter:
    """Stream :class:`RoundSnapshot`\\ s to a v3 JSONL file.

    Duck-typed as an Engine ``trace_sink`` (the whole contract is
    ``record(snapshot)``); buffers at most ``chunk_rounds`` rounds
    before spilling one chunk line, so memory stays O(chunk) no matter
    how long the run is. The graph-dedup table is incremental: a
    graph's edge list is written exactly once, inside the chunk where
    its content hash first appears, and every later round references
    it by cumulative index.

    Use as a context manager (or call :meth:`close`) -- rounds
    recorded since the last flush live only in the buffer until then.
    """

    def __init__(
        self,
        path: str | Path,
        n: int,
        chunk_rounds: int = DEFAULT_CHUNK_ROUNDS,
    ) -> None:
        if chunk_rounds < 1:
            raise ValueError(f"chunk_rounds must be >= 1, got {chunk_rounds}")
        self.path = Path(path)
        self.n = int(n)
        self.chunk_rounds = int(chunk_rounds)
        self.rounds_written = 0
        self._index_of: dict[int, int] = {}
        self._pending_graphs: list[list[list[int]]] = []
        self._pending_rounds: list[dict[str, Any]] = []
        self._file = self.path.open("w")
        header = {
            "version": _STREAM_VERSION,
            "kind": "trace",
            "n": self.n,
            "chunk_rounds": self.chunk_rounds,
        }
        self._file.write(json.dumps(header) + "\n")

    def record(self, snapshot: RoundSnapshot) -> None:
        """Append one round (the Engine sink contract)."""
        marker = snapshot.graph.content_hash
        index = self._index_of.get(marker)
        if index is None:
            index = len(self._index_of)
            self._index_of[marker] = index
            self._pending_graphs.append(
                [list(edge) for edge in snapshot.graph.edge_list]
            )
        self._pending_rounds.append(_encode_round(snapshot, index))
        if len(self._pending_rounds) >= self.chunk_rounds:
            self.flush()

    def flush(self) -> None:
        """Spill buffered rounds as one chunk line."""
        if not self._pending_rounds and not self._pending_graphs:
            return
        chunk = {
            "graphs": self._pending_graphs,
            "rounds": self._pending_rounds,
        }
        self._file.write(json.dumps(chunk) + "\n")
        self._file.flush()
        self.rounds_written += len(self._pending_rounds)
        self._pending_graphs = []
        self._pending_rounds = []

    def close(self) -> None:
        """Flush the tail chunk and close the file (idempotent)."""
        if self._file.closed:
            return
        self.flush()
        self._file.close()

    def __enter__(self) -> TraceWriter:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class TraceReader:
    """Lazy iterator over a v3 streamed trace.

    Rounds are decoded chunk by chunk, so iterating a file never
    materializes more than one chunk of snapshots (plus the cumulative
    graph table, which dedup keeps tiny). A truncated final line --
    the signature of a run killed mid-write -- is treated as
    end-of-trace; garbage anywhere *before* the last line is corruption
    and raises.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        with self.path.open() as fh:
            try:
                header = json.loads(fh.readline())
            except json.JSONDecodeError:
                header = {}
        if not isinstance(header, dict) or header.get("version") != _STREAM_VERSION:
            raise ValueError(
                f"not a v{_STREAM_VERSION} streamed trace: {self.path}"
            )
        self.n = int(header["n"])
        self.chunk_rounds = int(header.get("chunk_rounds", DEFAULT_CHUNK_ROUNDS))

    def __iter__(self) -> Iterator[RoundSnapshot]:
        graphs: list[Topology] = []
        with self.path.open() as fh:
            fh.readline()  # header, validated in __init__
            pending = fh.readline()
            while pending:
                line = pending
                pending = fh.readline()
                if not line.strip():
                    continue
                try:
                    chunk = json.loads(line)
                except json.JSONDecodeError:
                    if pending:
                        raise ValueError(
                            f"corrupt chunk before end of {self.path}"
                        ) from None
                    return  # truncated final chunk: recover what flushed
                for edges in chunk.get("graphs", ()):
                    graphs.append(Topology(self.n, (tuple(e) for e in edges)))
                for row in chunk["rounds"]:
                    yield _decode_round(row, self.n, graphs)

    def load(self) -> ExecutionTrace:
        """Materialize the whole stream as an :class:`ExecutionTrace`."""
        trace = ExecutionTrace(self.n)
        for snapshot in self:
            trace.record(snapshot)
        return trace


def save_trace(
    trace: ExecutionTrace, path: str | Path, version: int = _FORMAT_VERSION
) -> None:
    """Write a trace as JSON (v2, the default) or streamed JSONL (v3)."""
    if version == _STREAM_VERSION:
        with TraceWriter(path, trace.n) as writer:
            for snapshot in trace.rounds:
                writer.record(snapshot)
        return
    if version != _FORMAT_VERSION:
        raise ValueError(f"cannot write trace format version {version!r}")
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=1))


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace saved by :func:`save_trace` -- any format version.

    v3 files are sniffed by their single-line JSON header (v1/v2 files
    are indented, so their first line is never a complete document).
    """
    path = Path(path)
    with path.open() as fh:
        first = fh.readline()
    try:
        header = json.loads(first)
    except json.JSONDecodeError:
        header = None
    if isinstance(header, dict) and header.get("version") == _STREAM_VERSION:
        return TraceReader(path).load()
    return trace_from_dict(json.loads(path.read_text()))


def replay_adversary(
    trace: ExecutionTrace,
    promise: tuple[int, int] | None = None,
    repeat: bool = False,
) -> ScheduleAdversary:
    """An adversary replaying the trace's recorded link choices.

    Rounds beyond the recorded length are empty unless ``repeat`` loops
    the recording. Replaying is how a violation found by stochastic
    search (or by the model checker) is turned into a deterministic
    regression test.
    """
    table = [trace.at(t).edge_list for t in range(len(trace))]
    if not table:
        raise ValueError("cannot replay an empty trace")
    schedule = EdgeSchedule.from_table(trace.n, table, repeat=repeat)
    return ScheduleAdversary(schedule, promise=promise)
