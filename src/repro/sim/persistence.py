"""Trace persistence and replay.

Executions are deterministic given their seeds, but a saved trace is
still the right artifact for bug reports, cross-version comparisons,
and postmortems of adversarial runs found by search: JSON in, JSON
out, and a :class:`~repro.adversary.base.ScheduleAdversary` that
replays the recorded link choices against fresh processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.adversary.base import ScheduleAdversary
from repro.net.dynamic import EdgeSchedule
from repro.net.graph import DirectedGraph
from repro.sim.trace import ExecutionTrace, RoundSnapshot

_FORMAT_VERSION = 1


def trace_to_dict(trace: ExecutionTrace) -> dict[str, Any]:
    """A JSON-serializable representation of a trace."""
    return {
        "version": _FORMAT_VERSION,
        "n": trace.n,
        "rounds": [
            {
                "round": snap.round,
                "edges": sorted(snap.graph.edges),
                "states": {
                    str(node): dict(state) for node, state in snap.states.items()
                },
                "delivered": snap.delivered,
                "bits": snap.bits,
                "live_senders": sorted(snap.live_senders),
            }
            for snap in trace.rounds
        ],
    }


def trace_from_dict(payload: dict[str, Any]) -> ExecutionTrace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = payload.get("version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version!r}")
    n = int(payload["n"])
    trace = ExecutionTrace(n)
    for row in payload["rounds"]:
        trace.record(
            RoundSnapshot(
                round=int(row["round"]),
                graph=DirectedGraph(n, (tuple(e) for e in row["edges"])),
                states={int(k): dict(v) for k, v in row["states"].items()},
                delivered=int(row["delivered"]),
                bits=int(row["bits"]),
                live_senders=frozenset(int(v) for v in row["live_senders"]),
            )
        )
    return trace


def save_trace(trace: ExecutionTrace, path: str | Path) -> None:
    """Write a trace as JSON."""
    Path(path).write_text(json.dumps(trace_to_dict(trace), indent=1))


def load_trace(path: str | Path) -> ExecutionTrace:
    """Read a trace saved by :func:`save_trace`."""
    return trace_from_dict(json.loads(Path(path).read_text()))


def replay_adversary(
    trace: ExecutionTrace,
    promise: tuple[int, int] | None = None,
    repeat: bool = False,
) -> ScheduleAdversary:
    """An adversary replaying the trace's recorded link choices.

    Rounds beyond the recorded length are empty unless ``repeat`` loops
    the recording. Replaying is how a violation found by stochastic
    search (or by the model checker) is turned into a deterministic
    regression test.
    """
    table = [sorted(trace.at(t).edges) for t in range(len(trace))]
    if not table:
        raise ValueError("cannot replay an empty trace")
    schedule = EdgeSchedule.from_table(trace.n, table, repeat=repeat)
    return ScheduleAdversary(schedule, promise=promise)
