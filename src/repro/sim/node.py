"""The process protocol every consensus algorithm implements.

A :class:`ConsensusProcess` is a *fault-free anonymous node*. The
engine drives it with exactly the information the paper's model grants:

- it knows ``n`` (network size), ``f`` (fault bound) and its own input;
- once per round it produces the message it broadcasts;
- at the end of the round it receives the batch of delivered messages,
  each tagged only with the *local port* it arrived on (its own
  message is always among them, on :meth:`self_port`).

The engine never exposes global node IDs, round-graph information, or
the identities behind ports -- anonymity holds by construction.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, NamedTuple


class Delivery(NamedTuple):
    """One received message: the local port it arrived on, and the payload."""

    port: int
    message: Any


class ConsensusProcess(ABC):
    """Base class for fault-free nodes running a consensus algorithm.

    Parameters
    ----------
    n:
        Network size (known to all nodes in the model).
    f:
        Upper bound on the number of faulty nodes (known to all nodes).
    input_value:
        This node's initial input ``x_i``.
    self_port:
        The local port on which this node's own broadcasts arrive.
        (The paper's ``R_i[i] <- 1`` initialization is expressed through
        this port.)

    State discipline for implementers: keep instance state to
    attributes holding immutable values and builtin containers
    (list/dict/set) of immutables, without aliasing *inside* a
    container -- the paper's algorithms need no more (scalars, phase
    counters, port bit vectors, small value lists), and the
    simulated-lookahead adversary's copy-on-write overlay
    (:mod:`repro.adversary.greedy`) snapshots and rewinds exactly that
    shape. Two attributes may alias the same container (the overlay
    preserves it); a list-of-lists sharing an inner list with another
    attribute would not round-trip.
    """

    def __init__(self, n: int, f: int, input_value: float, self_port: int) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        if f < 0 or f >= n:
            raise ValueError(f"need 0 <= f < n, got f={f}, n={n}")
        if not (0 <= self_port < n):
            raise ValueError(f"self_port {self_port} out of range for n={n}")
        self.n = n
        self.f = f
        self.input_value = input_value
        self.self_port = self_port

    @abstractmethod
    def broadcast(self) -> Any:
        """The message this node broadcasts in the current round."""

    @abstractmethod
    def deliver(self, deliveries: list[Delivery]) -> None:
        """Consume this round's received messages and transition state.

        ``deliveries`` is sorted by ascending port number -- the fixed,
        publicly-known processing order (DESIGN.md fidelity note 3).
        It always contains this node's own message on ``self_port``.
        """

    @abstractmethod
    def has_output(self) -> bool:
        """Whether the node has irrevocably produced its output."""

    @abstractmethod
    def output(self) -> float:
        """The decided output; only valid once :meth:`has_output` is true."""

    # -- Introspection for the adversary / analysis layers ---------------
    # The message adversary is allowed to read internal states (Section
    # II-A). Algorithms expose their scalar state and phase through this
    # uniform surface so generic adversaries work against any of them.

    @property
    def value(self) -> float:
        """Current scalar state ``v_i`` (adversary-visible)."""
        raise NotImplementedError

    @property
    def phase(self) -> int:
        """Current phase index ``p_i`` (adversary-visible)."""
        raise NotImplementedError

    def state_snapshot(self) -> dict[str, Any]:
        """A read-only snapshot of adversary-visible state."""
        return {"value": self.value, "phase": self.phase, "output": self.has_output()}
