"""Batched lock-step execution: advance B independent trials at once.

Large sweeps are dominated by grids of *small, independent* executions
(DAC trials across ``n``, ``f``, window and seed). The process-pool
layer (:mod:`repro.sim.parallel`) scales those across cores; this
module attacks the per-trial interpreter overhead inside one process:
a :class:`BatchEngine` advances ``B`` independent executions of the
boundary DAC family *in lock-step*, so one pass over the round
structure serves every lane at once.

Two backends implement the same contract:

- **numpy** (used automatically when numpy -- an optional extra, see
  ``setup.py`` -- is importable): node states live in ``(B, n)``
  arrays and each round is processed port-by-port with vectorized
  updates across all ``B * n`` nodes. The port-major sweep preserves
  the serial engine's delivery order exactly (deliveries are consumed
  sorted by port; within one port, node transitions only read the
  round-start broadcast snapshot, so they are independent);
- **python** (always importable, no third-party dependencies): the
  same lock-step loop over ``B`` real :class:`~repro.sim.engine.Engine`
  instances. No speedup -- it exists so batching is a pure speed knob
  on any interpreter, and as the executable specification the numpy
  kernel is tested against.

Both backends produce **bit-identical final states and round counts**
to ``B`` serial ``Engine`` runs: every lane derives its inputs, ports
and crash plan from its own seed through the exact same
:mod:`repro.sim.rng` child streams the serial builders use, so batching
(and batch *order*) cannot perturb results.

Three lane families are covered (see docs/batching.md):

- :class:`BatchEngine` / :func:`run_dac_batch` -- fault-free and
  crash-fault boundary DAC under the enforcing quorum adversaries,
  precisely what :func:`repro.workloads.run_dac_trial` runs;
- :class:`ByzBatchEngine` / :func:`run_dbac_batch` /
  :func:`run_byz_batch` -- boundary DBAC with Byzantine strategies
  under the enforcing ``nearest``/``rotate`` adversaries, and
  mobile-omission DAC, precisely what
  :func:`repro.workloads.run_dbac_trial` / ``run_byz_trial`` run. The
  numpy kernel vectorizes DBAC's witness counters and ``f+1``-trimmed
  updates, replicates the value-dependent ``nearest`` selection with
  one stable argsort per round, and supports **lane compaction**:
  finished rows are re-filled from a pending seed queue so long-tailed
  grids keep full vector width;
- :class:`BaselineBatchEngine` / :func:`run_baseline_batch` -- the
  reliable-channel averaging baselines (iterated midpoint / trimmed
  mean) under the same enforcing quorum adversaries, precisely what
  :func:`repro.workloads.run_baseline_trial` runs. Two floats of
  per-node state and a fixed round budget make these the simplest
  lanes: one ``(B, n)`` value matrix advanced for exactly
  ``num_rounds`` delivery rounds.

Composition: :func:`repro.workloads.run_dac_trial_batch` (and the
DBAC/Byzantine forms ``run_dbac_trial_batch`` / ``run_byz_trial_batch``)
wrap these kernels in the batched-trial calling convention the
parallel layer dispatches, so ``Sweep.run(workers=N, batch=B)`` fans
*batches* over processes -- the two layers multiply.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    RotatingQuorumAdversary,
    rotate_topology,
)
from repro.core.baselines import IteratedMidpointProcess, TrimmedMeanProcess
from repro.core.phases import dac_end_phase
from repro.net.ports import random_ports
from repro.sim.arena import delivered_table
from repro.sim.rng import child_rng, spawn_inputs

try:  # numpy is an optional extra (``pip install repro[numpy]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

_BACKENDS = ("auto", "numpy", "python")

# Selectors whose link choices the vectorized kernel replicates. The
# shared structure is :func:`repro.adversary.constrained.rotate_picks`;
# value-dependent ("nearest") and RNG-dependent ("random") selectors
# fall back to the python backend.
_VECTOR_SELECTORS = ("rotate",)

# Sentinel crash round for nodes that never crash (far beyond any cap).
_NEVER = 1 << 62

# Cap on each engine's derived-structure cache (live-diagonal matrices
# keyed by (live_key, salt mod n)). Cleared wholesale at the cap, like
# the Topology intern table: a realistic crash schedule settles into a
# cycle of at most a few live sets x n salts, far below the cap, but
# unbounded live-set streams (long mobile sweeps) must not grow it.
_STRUCTURE_CACHE_MAX = 4096


def numpy_available() -> bool:
    """Whether the vectorized numpy backend can be used at all."""
    return _np is not None


@dataclass(frozen=True)
class LaneResult:
    """Final outcome of one lane -- one serial ``Engine`` run's worth.

    ``state_keys`` maps every (non-Byzantine) node to its process's
    full ``state_key()`` (:class:`~repro.core.dac.DACProcess` /
    :class:`~repro.core.dbac.DBACProcess`), the strongest equality the
    determinism suite can assert; ``outputs`` is keyed by node ID and
    holds exactly what :func:`repro.sim.runner.run_consensus` reports
    for the lane's stop mode -- the fault-free nodes that decided
    (``"output"`` stopping), or every fault-free node's current value
    (``"oracle"`` stopping, :class:`ByzBatchEngine` only).
    """

    seed: int
    rounds: int
    stopped: bool
    inputs: dict[int, float]
    outputs: dict[int, float]
    state_keys: dict[int, tuple]


class BatchEngine:
    """Runs ``B`` independent boundary-DAC executions in lock-step.

    Parameters mirror :func:`repro.workloads.build_dac_execution` --
    one shared parameter assignment, one seed per lane:

    Parameters
    ----------
    n, f:
        Network size and fault bound (``n >= 2f + 1``).
    seeds:
        One root seed per lane; ``B = len(seeds)``. Each lane's inputs,
        ports and RNG streams derive from its seed exactly as the
        serial builder's do.
    epsilon, window, selector, crash_nodes, crash_start, enable_jump:
        As in ``build_dac_execution``.
    max_rounds:
        Hard cap per lane; defaults to the serial builder's formula.
    backend:
        ``"auto"`` (numpy when available and the selector is
        vectorizable, python otherwise), ``"numpy"`` (raise when
        unusable), or ``"python"``.
    """

    def __init__(
        self,
        n: int,
        f: int,
        seeds: Sequence[int],
        *,
        epsilon: float = 1e-3,
        window: int = 1,
        selector: str = "rotate",
        crash_nodes: int | None = None,
        crash_start: int = 1,
        enable_jump: bool = True,
        max_rounds: int | None = None,
        backend: str = "auto",
    ) -> None:
        self.seeds = [int(seed) for seed in seeds]
        if not self.seeds:
            raise ValueError("need at least one seed (one lane)")
        # Derive the lane family -- validation, crash schedule, quorum,
        # end phase, default round cap -- from the serial builder itself,
        # so there is exactly one source of truth for what a lane *is*
        # and the bit-identity contract cannot drift out from under a
        # builder change.
        # lint: ignore[layering, hot-import] — setup-time probe of the serial builder (one source of truth for lane families), deferred to break the cycle; never touched in the round loop
        from repro.workloads import build_dac_execution

        probe = build_dac_execution(
            n=n,
            f=f,
            epsilon=epsilon,
            seed=self.seeds[0],
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
            crash_start=crash_start,
            enable_jump=enable_jump,
            max_rounds=max_rounds,
        )
        process = next(iter(probe["processes"].values()))
        self.n = n
        self.f = f
        self.epsilon = epsilon
        self.window = window
        self.selector = selector
        self.crash_nodes = f if crash_nodes is None else crash_nodes
        self.crash_start = crash_start
        self.enable_jump = enable_jump
        self.degree = probe["adversary"].degree
        self.quorum = process.quorum
        self.end_phase = process.end_phase
        self.max_rounds = probe["max_rounds"]
        self._crashes = probe["fault_plan"].crashes
        self._fault_free = sorted(probe["fault_plan"].fault_free)
        self.backend = self._resolve_backend(backend)
        # Round structure (delivered-from matrices) memo for the numpy
        # kernel: keyed by (live-set key, salt mod n), tiny and cyclic.
        self._structure_cache: dict[tuple, object] = {}

    @property
    def batch_size(self) -> int:
        """Number of lanes ``B``."""
        return len(self.seeds)

    def _resolve_backend(self, backend: str) -> str:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        vectorizable = numpy_available() and self.selector in _VECTOR_SELECTORS
        if backend == "auto":
            return "numpy" if vectorizable else "python"
        if backend == "numpy" and not vectorizable:
            reason = (
                "numpy is not installed"
                if not numpy_available()
                else f"selector {self.selector!r} is not vectorizable "
                f"(supported: {_VECTOR_SELECTORS})"
            )
            raise ValueError(f"numpy backend unavailable: {reason}")
        return backend

    def run(self) -> list[LaneResult]:
        """Run every lane to its stop condition and return lane results.

        Results come back in ``seeds`` order. Each lane stops exactly
        like ``Engine.run(max_rounds, stop_when=all_fault_free_output)``
        does: the stop condition is evaluated before each round and once
        more at the cap, and the lane's state freezes at that point.
        """
        if self.backend == "numpy":
            return self._run_numpy()
        return self._run_python()

    # -- python backend: lock-step over real engines --------------------

    def _build_serial_engine(self, seed: int):
        # Local imports: the runner/workloads layers import this module's
        # package, so top-level imports here would be cyclic.
        from repro.sim.engine import Engine

        # lint: ignore[layering, hot-import] — python-backend fallback builds lanes through the serial builder (bit-identity reference), deferred to break the cycle
        from repro.workloads import build_dac_execution

        kwargs = build_dac_execution(
            n=self.n,
            f=self.f,
            epsilon=self.epsilon,
            seed=seed,
            window=self.window,
            selector=self.selector,
            crash_nodes=self.crash_nodes,
            crash_start=self.crash_start,
            enable_jump=self.enable_jump,
            max_rounds=self.max_rounds,
        )
        return Engine(
            kwargs["processes"],
            kwargs["adversary"],
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=False,
        )

    def _run_python(self) -> list[LaneResult]:
        engines = [self._build_serial_engine(seed) for seed in self.seeds]
        results: list[LaneResult | None] = [None] * len(engines)

        def finalize(index: int, rounds: int, stopped: bool) -> None:
            engine = engines[index]
            plan = engine.fault_plan
            outputs = {
                v: engine.processes[v].output()
                for v in sorted(plan.fault_free)
                if engine.processes[v].has_output()
            }
            results[index] = LaneResult(
                seed=self.seeds[index],
                rounds=rounds,
                stopped=stopped,
                inputs={
                    node: proc.input_value for node, proc in engine.processes.items()
                },
                outputs=outputs,
                state_keys={
                    node: proc.state_key() for node, proc in engine.processes.items()
                },
            )

        active = list(range(len(engines)))
        t = 0
        while active:
            # Same order as Engine.run: stop_when before each round,
            # then the documented final check at the cap.
            still = []
            for index in active:
                if engines[index].all_fault_free_output():
                    finalize(index, t, True)
                elif t >= self.max_rounds:
                    finalize(index, t, False)
                else:
                    still.append(index)
            for index in still:
                engines[index].run_round()
            active = still
            t += 1
        return [result for result in results if result is not None]

    # -- numpy backend: vectorized port-major kernel ---------------------

    def _delivered_from(self, live_key: tuple[int, ...], salt: int):
        """``(n, n)`` bool: does ``u``'s round broadcast reach ``v``?

        Derived from the *same* interned round
        :class:`~repro.net.topology.Topology` the serial enforcing
        adversary plays (:func:`repro.adversary.constrained.rotate_topology`),
        via the shared content-hash table memo of
        :func:`repro.sim.arena.delivered_table` -- one graph
        representation across the serial, batched and pooled paths.
        Diagonal entries encode the engine's reliable self-delivery.
        The matrix depends only on the live set and ``salt mod n``, so
        after the crash schedule settles it cycles with period ``n``.
        """
        key = (live_key, salt % self.n)
        cached = self._structure_cache.get(key)
        if cached is None:
            topology = rotate_topology(self.n, live_key, salt, self.degree)
            # Pure-graph table from the shared content-hash memo
            # (zero-copy from an attached arena in warm pool workers);
            # only the sender-major transpose with the live diagonal --
            # per-execution state, not graph structure -- is private.
            base = delivered_table(topology)
            delivered = base.T.copy()
            live = list(live_key)
            delivered[live, live] = True
            if len(self._structure_cache) >= _STRUCTURE_CACHE_MAX:
                self._structure_cache.clear()
            self._structure_cache[key] = delivered
            cached = delivered
        return cached

    def _run_numpy(self) -> list[LaneResult]:
        np = _np
        n = self.n
        lanes = len(self.seeds)

        # Per-lane construction through the serial builders' exact RNG
        # streams: inputs, port bijections (sender-major inverse and
        # self-ports are what the kernel indexes by).
        inputs = np.empty((lanes, n), dtype=np.float64)
        sender_at_port = np.empty((lanes, n, n), dtype=np.intp)
        self_port = np.empty((lanes, n), dtype=np.intp)
        for b, seed in enumerate(self.seeds):
            inputs[b] = spawn_inputs(seed, n)
            ports = random_ports(n, child_rng(seed, "ports"))
            sender_at_port[b] = ports.sender_rows()
            for v in range(n):
                self_port[b, v] = ports.self_port(v)

        crash_round = np.full(n, _NEVER, dtype=np.int64)
        for node, event in self._crashes.items():
            crash_round[node] = event.round
        fault_free = np.array(self._fault_free, dtype=np.intp)

        # DACProcess state, one row per lane (Algorithm 1 init block).
        value = inputs.copy()
        phase = np.zeros((lanes, n), dtype=np.int64)
        v_min = value.copy()
        v_max = value.copy()
        received = np.zeros((lanes, n, n), dtype=bool)
        lane_idx = np.arange(lanes)
        received[lane_idx[:, None], np.arange(n)[None, :], self_port] = True
        count = np.ones((lanes, n), dtype=np.int64)
        out_mask = np.zeros((lanes, n), dtype=bool)
        out_val = np.zeros((lanes, n), dtype=np.float64)
        if self.end_phase == 0:  # init-time _check_output: decide at once
            out_mask[:] = True
            out_val[:] = value

        results: list[LaneResult | None] = [None] * lanes

        def finalize(b: int, rounds: int, stopped: bool) -> None:
            state_keys = {}
            for node in range(n):
                decided = bool(out_mask[b, node])
                state_keys[node] = (
                    float(value[b, node]),
                    int(phase[b, node]),
                    tuple(bool(bit) for bit in received[b, node]),
                    float(v_min[b, node]),
                    float(v_max[b, node]),
                    float(out_val[b, node]) if decided else None,
                )
            results[b] = LaneResult(
                seed=self.seeds[b],
                rounds=rounds,
                stopped=stopped,
                inputs={node: float(inputs[b, node]) for node in range(n)},
                outputs={
                    int(node): float(out_val[b, node])
                    for node in fault_free
                    if out_mask[b, node]
                },
                state_keys=state_keys,
            )

        gather_lane = lane_idx[:, None, None]
        gather_col = np.arange(n)[None, :, None]
        lane_active = np.ones(lanes, dtype=bool)
        enable_jump = self.enable_jump
        end_phase = self.end_phase
        t = 0
        while True:
            # Stop handling in Engine.run order: the condition first,
            # the cap second (a lane at the cap whose condition holds
            # right now reports stopped=True either way).
            finished = lane_active & out_mask[:, fault_free].all(axis=1)
            for b in np.nonzero(finished)[0]:
                finalize(int(b), t, True)
            lane_active &= ~finished
            if t >= self.max_rounds:
                for b in np.nonzero(lane_active)[0]:
                    finalize(int(b), t, False)
                lane_active[:] = False
            if not lane_active.any():
                break
            if self.window > 1 and (t + 1) % self.window != 0:
                # The last-minute adversary's silent rounds change no
                # state: the only delivery is each node's own message,
                # whose port is already marked received.
                t += 1
                continue

            live = crash_round > t  # clean crashes: senders == processors
            salt = t if self.window == 1 else t // self.window
            delivered = self._delivered_from(
                tuple(int(u) for u in np.nonzero(live)[0]), salt
            )

            # Round-start broadcast snapshot, then the port-major sweep.
            bc_value = value.copy()
            bc_phase = phase.copy()
            msg_value = bc_value[gather_lane, sender_at_port]
            msg_phase = bc_phase[gather_lane, sender_at_port]
            has_msg = delivered[sender_at_port, gather_col]
            receiving = lane_active[:, None] & live[None, :]

            for port in range(n):
                here = has_msg[:, :, port] & receiving
                if not here.any():
                    continue
                active = here & ~out_mask
                if not active.any():
                    continue
                incoming_value = msg_value[:, :, port]
                incoming_phase = msg_phase[:, :, port]
                # Masks from the same pre-update phase, like the serial
                # if/elif -- a jump must not re-match as same-phase.
                jump = (
                    active & (incoming_phase > phase)
                    if enable_jump
                    else np.zeros_like(active)
                )
                same = active & (incoming_phase == phase) & ~received[:, :, port]
                if jump.any():
                    value = np.where(jump, incoming_value, value)
                    phase = np.where(jump, incoming_phase, phase)
                    received[jump] = False
                    jb, jn = np.nonzero(jump)
                    received[jb, jn, self_port[jb, jn]] = True
                    count[jump] = 1
                    v_min = np.where(jump, value, v_min)
                    v_max = np.where(jump, value, v_max)
                    decided = jump & (phase >= end_phase)
                    if decided.any():
                        phase = np.where(decided, end_phase, phase)
                        out_mask |= decided
                        out_val = np.where(decided, value, out_val)
                if same.any():
                    received[:, :, port] |= same
                    count = np.where(same, count + 1, count)
                    lower = same & (incoming_value < v_min)
                    v_min = np.where(lower, incoming_value, v_min)
                    higher = same & ~lower & (incoming_value > v_max)
                    v_max = np.where(higher, incoming_value, v_max)
                    full = same & (count >= self.quorum)
                    if full.any():
                        value = np.where(full, 0.5 * (v_min + v_max), value)
                        phase = np.where(full, phase + 1, phase)
                        received[full] = False
                        qb, qn = np.nonzero(full)
                        received[qb, qn, self_port[qb, qn]] = True
                        count[full] = 1
                        v_min = np.where(full, value, v_min)
                        v_max = np.where(full, value, v_max)
                        decided = full & (phase >= end_phase)
                        if decided.any():
                            phase = np.where(decided, end_phase, phase)
                            out_mask |= decided
                            out_val = np.where(decided, value, out_val)
            t += 1
        return [result for result in results if result is not None]


def run_dac_batch(
    n: int,
    f: int,
    seeds: Sequence[int],
    *,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    enable_jump: bool = True,
    max_rounds: int | None = None,
    backend: str = "auto",
    on_lane: Callable[[LaneResult], None] | None = None,
) -> list[LaneResult]:
    """Run one batch of boundary DAC executions, one lane per seed.

    Convenience wrapper over :class:`BatchEngine`; see its docstring
    for parameter semantics and the bit-identity contract. ``on_lane``
    is called once per finished lane, in lane (seed) order -- the seam
    :func:`repro.obs.attach.lane_finished` plugs into for per-lane
    ``RunFinished`` events.

    >>> lanes = run_dac_batch(5, 2, [0, 1], backend="python")
    >>> [(lane.seed, lane.stopped) for lane in lanes]
    [(0, True), (1, True)]
    """
    lanes = BatchEngine(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        crash_nodes=crash_nodes,
        crash_start=crash_start,
        enable_jump=enable_jump,
        max_rounds=max_rounds,
        backend=backend,
    ).run()
    if on_lane is not None:
        for lane in lanes:
            on_lane(lane)
    return lanes


# -- Batched DBAC / Byzantine / mobile-omission lanes ----------------------

# Selectors the ByzBatchEngine numpy kernel replicates. ``nearest`` is
# value-dependent: the kernel recomputes the serial two-pointer
# selection (repro.adversary.constrained.nearest_picks) as one stable
# argsort over each lane's value matrix per round. ``random`` draws
# from the adversary's RNG stream and falls back to the python backend.
_BYZ_VECTOR_SELECTORS = ("rotate", "nearest")

_STOP_MODES = ("oracle", "output")


def _strategy_vector_plan(strategy: object, n: int):
    """How the numpy kernel reproduces one Byzantine strategy, or ``None``.

    A vectorizable strategy's round messages factor into a static
    per-receiver value row plus a phase that is either a constant or
    tracks the maximum fault-free phase (with a fixed lead). Returns
    ``(value_row, phase_kind, phase_arg)`` with ``phase_kind`` in
    ``{"track", "const"}``, or ``None`` when the strategy cannot be
    vectorized (e.g. the RNG-driven ``random`` strategy) and the lanes
    must run on the python backend. Exact types are matched so
    subclasses with overridden behavior are never mis-vectorized.
    """
    from repro.faults.byzantine import (
        ExtremeByzantine,
        FixedValueByzantine,
        PhaseLiarByzantine,
    )

    np = _np
    kind = type(strategy)
    if kind is ExtremeByzantine:
        row = np.where(
            np.arange(n) % 2 == 0, float(strategy.low), float(strategy.high)
        )
        return row, "track", 0
    if kind is PhaseLiarByzantine:
        return np.full(n, float(strategy.value)), "track", int(strategy.phase_lead)
    if kind is FixedValueByzantine:
        if strategy.phase_mode == "track":
            return np.full(n, float(strategy.value)), "track", 0
        return np.full(n, float(strategy.value)), "const", int(strategy.phase_mode)
    return None


def nearest_delivered(values, byz, byz_chosen: int, remaining: int):
    """Receiver-major delivered-from matrices for ``nearest`` rounds.

    The vectorized form of
    :func:`repro.adversary.constrained.nearest_picks` for executions
    where every node transmits (no crashes): ``values`` is the
    ``(B, n)`` round-start state matrix (Byzantine entries ignored),
    ``byz`` the sorted Byzantine index array, ``byz_chosen`` /
    ``remaining`` the split of the degree budget between
    Byzantine-first picks and honest nearest picks. Returns
    ``(B, n, n)`` bools where entry ``[b, v, u]`` says ``u``'s round
    broadcast reaches ``v`` in lane ``b``.

    One stable argsort per lane replicates the serial two-pointer
    selection exactly: the spec sort is stable by ``(distance, node
    id)`` over the honest live list, and the receiver's own
    distance-zero entry is pinned first via ``-inf`` so it drops out
    of the picks -- the serial walk's ``u == receiver`` skip. Rows for
    Byzantine receivers are *not* meaningful (honest nodes never read
    them; the serial adversary's choices there feed only no-op
    strategy observations).
    """
    np = _np
    lanes, n = values.shape
    node_idx = np.arange(n)
    dist = np.abs(values[:, :, None] - values[:, None, :])
    if byz.size:
        dist[:, :, byz] = np.inf
    dist[:, node_idx, node_idx] = -np.inf
    order = np.argsort(dist, axis=2, kind="stable")
    picks = order[:, :, 1 : remaining + 1]
    delivered = np.zeros((lanes, n, n), dtype=bool)
    np.put_along_axis(delivered, picks, True, axis=2)
    if byz_chosen:
        delivered[:, :, byz[:byz_chosen]] = True
    return delivered


class ByzBatchEngine:
    """Runs ``B`` independent DBAC / Byzantine / mobile lanes in lock-step.

    The Byzantine counterpart of :class:`BatchEngine`: one shared
    parameter assignment, one seed per lane, lane families exactly as
    :func:`repro.workloads.run_byz_trial` builds them --

    - ``adversary="quorum"``: boundary DBAC (``n >= 5f + 1``) under the
      enforcing ``(window, floor((n+3f)/2))`` adversary, the ``f``
      highest-numbered nodes running the named Byzantine ``strategy``;
    - ``adversary="mobile-<mode>"``: fault-free DAC under the
      Gafni-Losa mobile-omission adversary (one targeted in-link cut
      per node per round).

    Parameters
    ----------
    n, f:
        Network size and fault bound. ``f=None`` resolves to the trial
        default: the DBAC boundary ``(n - 1) // 5`` for ``"quorum"``,
        ``0`` for mobile lanes (which must be fault-free).
    seeds:
        One root seed per lane. Each lane derives inputs, ports and
        Byzantine RNG streams from its seed exactly as the serial
        builders do, so results are bit-identical to serial runs.
    epsilon, window, selector, strategy, stop_mode, max_rounds:
        As in :func:`repro.workloads.run_dbac_trial` /
        ``run_byz_trial`` (``stop_mode="oracle"`` stops a lane when
        the fault-free spread first dips to ``epsilon``;
        ``"output"`` waits for algorithm-local termination).
    backend:
        ``"auto"`` / ``"numpy"`` / ``"python"`` as in
        :class:`BatchEngine`. The numpy kernel requires a vectorizable
        selector (``rotate``/``nearest``) and, for quorum lanes, a
        vectorizable Byzantine strategy (``extreme``, ``pin-high``,
        ``pin-low``, ``phase-liar``); ``random`` selector/strategy
        lanes fall back to the python backend.
    width:
        Maximum concurrent vector lanes. ``None`` (default) runs all
        seeds at once. With ``width=W < len(seeds)`` the numpy kernel
        processes the seed list through ``W`` rows.
    compact:
        Lane compaction (numpy backend, only observable when ``width``
        caps the row count): ``True`` re-fills each finished row from
        the pending seed queue immediately, keeping the vector width
        full through long-tailed grids; ``False`` drains each
        ``width``-sized chunk completely before starting the next.
        Purely a speed/scheduling knob -- lanes are fully independent,
        so results are bit-identical either way (pinned in tests).
    """

    def __init__(
        self,
        n: int,
        f: int | None,
        seeds: Sequence[int],
        *,
        epsilon: float = 1e-3,
        window: int = 1,
        selector: str = "nearest",
        strategy: str = "extreme",
        adversary: str = "quorum",
        stop_mode: str = "oracle",
        max_rounds: int = 50_000,
        backend: str = "auto",
        width: int | None = None,
        compact: bool = True,
    ) -> None:
        self.seeds = [int(seed) for seed in seeds]
        if not self.seeds:
            raise ValueError("need at least one seed (one lane)")
        if stop_mode not in _STOP_MODES:
            raise ValueError(f"stop_mode must be one of {_STOP_MODES}, got {stop_mode!r}")
        if width is not None and width < 1:
            raise ValueError(f"width must be >= 1 (or None), got {width}")
        self.n = n
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.selector = selector
        self.strategy = strategy
        self.adversary = adversary
        self.stop_mode = stop_mode
        self.max_rounds = int(max_rounds)
        self.width = width
        self.compact = bool(compact)
        if adversary == "quorum":
            self.family = "quorum"
            self.mode = None
            self.f = (n - 1) // 5 if f is None else f
            probe = self._build_quorum_kwargs(self.seeds[0])
            process = next(iter(probe["processes"].values()))
            self.quorum = process.quorum
            self.end_phase = process.end_phase
            self.trim = process.trim
            self.degree = probe["adversary"].degree
            plan = probe["fault_plan"]
            self._byz_nodes = tuple(sorted(plan.byzantine))
            self._fault_free = tuple(sorted(plan.fault_free))
            self._byz_strategies = [plan.byzantine[u] for u in self._byz_nodes]
        elif adversary.startswith("mobile-"):
            from repro.adversary.mobile import MOBILE_MODES

            mode = adversary[len("mobile-") :]
            if mode not in MOBILE_MODES:
                raise ValueError(
                    f"unknown mobile mode {mode!r}; known: {MOBILE_MODES}"
                )
            if f not in (None, 0):
                raise ValueError(f"mobile-omission lanes are fault-free, got f={f}")
            from repro.core.dac import DACProcess

            self.family = "mobile"
            self.mode = mode
            self.f = 0
            probe_process = DACProcess(n, 0, 0.0, 0, epsilon=self.epsilon)
            self.quorum = probe_process.quorum
            self.end_phase = probe_process.end_phase
            self.trim = 0
            self.degree = 0
            self._byz_nodes = ()
            self._fault_free = tuple(range(n))
            self._byz_strategies = []
        else:
            raise ValueError(
                f"unknown adversary {adversary!r}; use 'quorum' or 'mobile-<mode>'"
            )
        self.backend = self._resolve_backend(backend)
        # salt -> receiver-major delivered-from matrix for the rotate
        # selector (cyclic in salt mod n once built).
        self._rotate_cache: dict[int, object] = {}

    @property
    def batch_size(self) -> int:
        """Number of lanes (seeds); the vector width is ``min(width, B)``."""
        return len(self.seeds)

    # -- configuration -------------------------------------------------

    def _build_quorum_kwargs(self, seed: int) -> dict:
        # Derive the lane family from the serial builder itself (one
        # source of truth, like BatchEngine does for DAC): validates
        # n >= 5f+1, the selector and the strategy name as a side
        # effect.
        # lint: ignore[layering, hot-import] — setup-time probe of the serial builder (one source of truth for lane families), deferred to break the cycle; never touched in the round loop
        from repro.workloads import TRIAL_BYZANTINE_STRATEGIES, build_dbac_execution

        if self.strategy not in TRIAL_BYZANTINE_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; "
                f"known: {sorted(TRIAL_BYZANTINE_STRATEGIES)}"
            )
        factory = TRIAL_BYZANTINE_STRATEGIES[self.strategy]
        return build_dbac_execution(
            n=self.n,
            f=self.f,
            epsilon=self.epsilon,
            seed=seed,
            window=self.window,
            selector=self.selector,
            byzantine_factory=lambda node: factory(),
            stop_mode=self.stop_mode,
            max_rounds=self.max_rounds,
        )

    def _resolve_backend(self, backend: str) -> str:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        reason = None
        if not numpy_available():
            reason = "numpy is not installed"
        elif self.family == "quorum":
            if self.selector not in _BYZ_VECTOR_SELECTORS:
                reason = (
                    f"selector {self.selector!r} is not vectorizable "
                    f"(supported: {_BYZ_VECTOR_SELECTORS})"
                )
            elif any(
                _strategy_vector_plan(strategy, self.n) is None
                for strategy in self._byz_strategies
            ):
                reason = (
                    f"Byzantine strategy {self.strategy!r} is not vectorizable "
                    "(RNG- or state-dependent messages)"
                )
        if backend == "auto":
            return "python" if reason else "numpy"
        if backend == "numpy" and reason:
            raise ValueError(f"numpy backend unavailable: {reason}")
        return backend

    # -- python backend: lock-step over real engines -------------------

    def _build_serial_engine(self, seed: int):
        from repro.sim.engine import Engine

        if self.family == "quorum":
            kwargs = self._build_quorum_kwargs(seed)
            return Engine(
                kwargs["processes"],
                kwargs["adversary"],
                kwargs["ports"],
                fault_plan=kwargs["fault_plan"],
                f=kwargs["f"],
                seed=kwargs["seed"],
                record_trace=False,
            )
        from repro.adversary.mobile import MobileOmissionAdversary
        from repro.core.dac import DACProcess
        from repro.faults.base import FaultPlan

        inputs = spawn_inputs(seed, self.n)
        ports = random_ports(self.n, child_rng(seed, "ports"))
        processes = {
            node: DACProcess(
                self.n, 0, inputs[node], ports.self_port(node), epsilon=self.epsilon
            )
            for node in range(self.n)
        }
        return Engine(
            processes,
            MobileOmissionAdversary(self.mode),
            ports,
            fault_plan=FaultPlan.fault_free_plan(self.n),
            f=0,
            seed=seed,
            record_trace=False,
        )

    def _stop_holds(self, engine) -> bool:
        if self.stop_mode == "output":
            return engine.all_fault_free_output()
        return engine.fault_free_range() <= self.epsilon

    def _finalize_engine(self, engine, seed: int, rounds: int, stopped: bool) -> LaneResult:
        plan = engine.fault_plan
        if self.stop_mode == "output":
            outputs = {
                v: engine.processes[v].output()
                for v in sorted(plan.fault_free)
                if engine.processes[v].has_output()
            }
        else:
            outputs = engine.fault_free_values()
        return LaneResult(
            seed=seed,
            rounds=rounds,
            stopped=stopped,
            inputs={node: proc.input_value for node, proc in engine.processes.items()},
            outputs=outputs,
            state_keys={
                node: proc.state_key() for node, proc in engine.processes.items()
            },
        )

    def _run_python(self) -> list[LaneResult]:
        engines = [self._build_serial_engine(seed) for seed in self.seeds]
        results: list[LaneResult | None] = [None] * len(engines)
        active = list(range(len(engines)))
        t = 0
        while active:
            # Same order as Engine.run: stop_when before each round,
            # then the documented final check at the cap.
            still = []
            for index in active:
                holds = self._stop_holds(engines[index])
                if holds or t >= self.max_rounds:
                    results[index] = self._finalize_engine(
                        engines[index], self.seeds[index], t, holds
                    )
                else:
                    still.append(index)
            for index in still:
                engines[index].run_round()
            active = still
            t += 1
        return [result for result in results if result is not None]

    # -- numpy backend: vectorized kernels with lane compaction --------

    def run(self) -> list[LaneResult]:
        """Run every lane to its stop condition; results in seed order.

        Each lane stops exactly like the serial
        ``Engine.run(max_rounds, stop_when=...)`` does for its stop
        mode: the condition is evaluated before each round and once
        more at the cap.
        """
        if self.backend == "python":
            return self._run_python()
        results: list[LaneResult | None] = [None] * len(self.seeds)
        pending: deque[tuple[int, int]] = deque(enumerate(self.seeds))
        width = len(self.seeds) if self.width is None else min(self.width, len(self.seeds))
        kernel = self._kernel_quorum if self.family == "quorum" else self._kernel_mobile
        if self.compact:
            first = [pending.popleft() for _ in range(width)]
            kernel(first, pending, results)
        else:
            while pending:
                chunk = [
                    pending.popleft() for _ in range(min(width, len(pending)))
                ]
                kernel(chunk, None, results)
        return [result for result in results if result is not None]

    def _lane_tables(self, seed: int):
        """Inputs and port tables for one lane, via the serial RNG streams."""
        n = self.n
        inputs = spawn_inputs(seed, n)
        ports = random_ports(n, child_rng(seed, "ports"))
        sender_at_port = ports.sender_rows()
        self_port = [ports.self_port(v) for v in range(n)]
        return inputs, sender_at_port, self_port

    def _drain_and_refill(
        self, cond_fn, lane_active, lane_t, finalize_row, reset_row, pending
    ) -> None:
        """Stop handling shared by both kernels, in ``Engine.run`` order
        (condition first, cap second), then compaction: freed rows
        immediately restart on queued seeds, and freshly refilled rows
        are re-checked -- a refilled lane may satisfy its stop
        condition at round zero, exactly like a serial run of zero
        rounds.

        ``cond_fn`` returns the per-lane stop-condition bools against
        the kernel's *current* state arrays; ``finalize_row`` /
        ``reset_row`` are the kernel's closures over them.
        """
        np = _np
        while True:
            cond = cond_fn()
            done = lane_active & (cond | (lane_t >= self.max_rounds))
            done_rows = np.nonzero(done)[0]
            if done_rows.size == 0:
                return
            for b in done_rows:
                finalize_row(int(b), bool(cond[b]))
            if not pending:
                return
            for b in done_rows:
                if not pending:
                    break
                result_slot, seed = pending.popleft()
                reset_row(int(b), result_slot, seed)

    def _scatter_messages(
        self, buffers: dict, lanes: int, deliver_rows, has_msg_d, msg_value_d, msg_phase_d
    ):
        """Full-width ``(B, n, n)`` views of one round's message arrays.

        When every lane delivers this round the per-row arrays already
        are full width; otherwise the delivering rows are scattered
        into partial-width buffers cached in ``buffers`` (one dict per
        kernel run, allocated lazily on the first partial round).
        Stale rows from earlier rounds are never cleared -- the
        per-round receiving mask filters them before any read.
        """
        if deliver_rows.size == lanes:
            return has_msg_d, msg_value_d, msg_phase_d
        np = _np
        n = self.n
        if not buffers:
            buffers["has"] = np.empty((lanes, n, n), dtype=bool)
            buffers["value"] = np.empty((lanes, n, n), dtype=np.float64)
            buffers["phase"] = np.empty((lanes, n, n), dtype=np.int64)
        buffers["has"][deliver_rows] = has_msg_d
        buffers["value"][deliver_rows] = msg_value_d
        buffers["phase"][deliver_rows] = msg_phase_d
        return buffers["has"], buffers["value"], buffers["phase"]

    def _rotate_matrix(self, salt: int):
        """Receiver-major delivered-from bools of one ``rotate`` round.

        Read off the same interned Topology the serial enforcing
        adversaries replay. Every node transmits in these families
        (Byzantine senders included, no crashes), so the matrix depends
        only on ``salt mod n``.
        """
        key = salt % self.n
        cached = self._rotate_cache.get(key)
        if cached is None:
            # The rotate matrix *is* the pure-graph delivered table:
            # receiver-major, no diagonal. Serve it straight from the
            # shared content-hash memo (zero-copy from an attached
            # arena in warm pool workers); the per-engine key set is
            # inherently bounded at n.
            cached = delivered_table(
                rotate_topology(self.n, tuple(range(self.n)), salt, self.degree)
            )
            self._rotate_cache[key] = cached
        return cached

    def _kernel_quorum(self, rows, pending, results) -> None:
        """Advance DBAC lanes in lock-step until all rows (and, with a
        ``pending`` queue, all queued refills) are finalized.

        Port-major like the DAC kernel: deliveries are consumed sorted
        by port, so processing port ``k`` across every (lane, node)
        cell replicates each ``DBACProcess.deliver`` call's in-batch
        order -- including quorum updates that fire mid-batch and
        re-filter the remaining ports against the new phase. The self
        message is never materialized: its port is pre-marked in
        ``R_i`` at phase start, so the serial engine's reliable
        self-delivery is always filtered (asserted by the equivalence
        tests through full state keys).

        The ``R_low``/``R_high`` recording lists are not maintained as
        sorted lists per store (that cost dominated the kernel):
        instead every stored value lands in a flat per-phase
        ``(B, n, quorum)`` buffer indexed by the witness counter, and
        the trimmed extremes -- the ``(f+1)``-st smallest and largest
        of exactly ``quorum`` stored values -- come from one
        ``np.partition`` over the cells whose quorum fired. The exact
        serial lists are reconstructed from the buffer at finalize
        time; both representations hold the same value multisets, so
        the state keys (and the midpoint arithmetic) are bit-identical
        (see :attr:`repro.core.dbac.DBACProcess.stored_count`).
        """
        np = _np
        n = self.n
        trim = self.trim
        quorum = self.quorum
        end_phase = self.end_phase
        window = self.window
        lanes = len(rows)
        node_idx = np.arange(n)

        byz = np.array(self._byz_nodes, dtype=np.intp)
        ff = np.array(self._fault_free, dtype=np.intp)
        honest = np.ones(n, dtype=bool)
        if byz.size:
            honest[byz] = False
        byz_flag = ~honest
        # Byzantine message tables: a static per-(sender, receiver)
        # value matrix plus a per-sender phase rule (track the maximum
        # fault-free phase with a fixed lead, or a constant).
        byz_value = np.zeros((n, n), dtype=np.float64)
        byz_track = np.zeros(n, dtype=bool)
        byz_lead = np.zeros(n, dtype=np.int64)
        byz_const = np.zeros(n, dtype=np.int64)
        for node, strategy in zip(self._byz_nodes, self._byz_strategies):
            plan = _strategy_vector_plan(strategy, n)
            assert plan is not None  # guaranteed by backend resolution
            row, phase_kind, phase_arg = plan
            byz_value[node] = row
            if phase_kind == "track":
                byz_track[node] = True
                byz_lead[node] = phase_arg
            else:
                byz_const[node] = phase_arg
        # The serial nearest selector hands every honest receiver all
        # (up to degree) Byzantine senders first, then the closest
        # honest values; clamp like the serial walk does when it runs
        # out of candidates.
        byz_chosen = min(byz.size, self.degree)
        remaining = max(0, min(self.degree - byz_chosen, ff.size - 1))

        slot = np.zeros(lanes, dtype=np.intp)
        lane_seed = [0] * lanes
        inputs = np.empty((lanes, n), dtype=np.float64)
        sender_at_port = np.empty((lanes, n, n), dtype=np.intp)
        self_port = np.empty((lanes, n), dtype=np.intp)
        value = np.empty((lanes, n), dtype=np.float64)
        phase = np.zeros((lanes, n), dtype=np.int64)
        received = np.zeros((lanes, n, n), dtype=bool)
        count = np.ones((lanes, n), dtype=np.int64)
        # Per-phase stored values in witness-counter order; slot i holds
        # the (i+1)-th stored value of the current phase (slot 0 is the
        # phase-start self value). count <= quorum always: the quorum
        # fires, and resets the counter, on the accept that reaches it.
        stored = np.zeros((lanes, n, quorum), dtype=np.float64)
        out_mask = np.zeros((lanes, n), dtype=bool)
        out_val = np.zeros((lanes, n), dtype=np.float64)
        lane_t = np.zeros(lanes, dtype=np.int64)
        lane_active = np.zeros(lanes, dtype=bool)

        def reset_row(b: int, result_slot: int, seed: int) -> None:
            lane_inputs, lane_sap, lane_self = self._lane_tables(seed)
            slot[b] = result_slot
            lane_seed[b] = seed
            inputs[b] = lane_inputs
            sender_at_port[b] = lane_sap
            self_port[b] = lane_self
            value[b] = inputs[b]
            phase[b] = 0
            received[b] = False
            received[b, node_idx, self_port[b]] = True
            count[b] = 1
            stored[b, :, 0] = value[b]
            if end_phase == 0:  # init-time _check_output: decide at once
                out_mask[b] = True
                out_val[b] = value[b]
            else:
                out_mask[b] = False
                out_val[b] = 0.0
            lane_t[b] = 0
            lane_active[b] = True

        def finalize_row(b: int, stopped: bool) -> None:
            state_keys = {}
            for node in self._fault_free:
                # Reconstruct the exact R_low / R_high lists from the
                # phase's stored-value buffer: the recording lists are
                # the min(stored, f+1) smallest / largest stored values
                # in ascending order (the DBACProcess.stored_count
                # invariant).
                stores = int(count[b, node])
                length = min(stores, trim)
                stored_sorted = np.sort(stored[b, node, :stores])
                decided = bool(out_mask[b, node])
                state_keys[node] = (
                    float(value[b, node]),
                    int(phase[b, node]),
                    tuple(bool(bit) for bit in received[b, node]),
                    tuple(float(v) for v in stored_sorted[:length]),
                    tuple(float(v) for v in stored_sorted[stores - length :]),
                    float(out_val[b, node]) if decided else None,
                )
            if self.stop_mode == "output":
                outputs = {
                    int(node): float(out_val[b, node])
                    for node in ff
                    if out_mask[b, node]
                }
            else:
                outputs = {int(node): float(value[b, node]) for node in ff}
            results[slot[b]] = LaneResult(
                seed=lane_seed[b],
                rounds=int(lane_t[b]),
                stopped=stopped,
                inputs={int(node): float(inputs[b, node]) for node in ff},
                outputs=outputs,
                state_keys=state_keys,
            )
            lane_active[b] = False

        def stop_condition():
            if self.stop_mode == "output":
                return out_mask[:, ff].all(axis=1)
            ff_values = value[:, ff]
            return (ff_values.max(axis=1) - ff_values.min(axis=1)) <= self.epsilon

        for b, (result_slot, seed) in enumerate(rows):
            reset_row(b, result_slot, seed)

        scatter_buffers: dict = {}

        while True:
            self._drain_and_refill(
                stop_condition, lane_active, lane_t, finalize_row, reset_row, pending
            )
            if not lane_active.any():
                return

            delivering = (
                lane_active
                if window == 1
                else lane_active & ((lane_t + 1) % window == 0)
            )
            if delivering.any():
                deliver_rows = np.nonzero(delivering)[0]
                # Round-start broadcast snapshot -- what the adversary
                # and the Byzantine strategies see, and what honest
                # senders transmit this round.
                bc_value = value.copy()
                bc_phase = phase.copy()
                max_ff_phase = bc_phase[:, ff].max(axis=1)
                sap_d = sender_at_port[deliver_rows]

                if self.selector == "nearest":
                    delivered_recv = nearest_delivered(
                        bc_value[deliver_rows], byz, byz_chosen, remaining
                    )
                else:  # rotate
                    salts = lane_t[deliver_rows] if window == 1 else lane_t[deliver_rows] // window
                    delivered_recv = np.stack(
                        [self._rotate_matrix(int(salt)) for salt in salts]
                    )
                has_msg_d = np.take_along_axis(delivered_recv, sap_d, axis=2)

                msg_value_d = bc_value[deliver_rows[:, None, None], sap_d]
                msg_phase_d = bc_phase[deliver_rows[:, None, None], sap_d]
                if byz.size:
                    is_byz_sender = byz_flag[sap_d]
                    byz_value_d = byz_value[sap_d, node_idx[None, :, None]]
                    msg_value_d = np.where(is_byz_sender, byz_value_d, msg_value_d)
                    byz_phase = np.where(
                        byz_track[None, :],
                        max_ff_phase[:, None] + byz_lead[None, :],
                        byz_const[None, :],
                    )
                    byz_phase_d = byz_phase[deliver_rows[:, None, None], sap_d]
                    msg_phase_d = np.where(is_byz_sender, byz_phase_d, msg_phase_d)

                has_msg, msg_value, msg_phase = self._scatter_messages(
                    scatter_buffers, lanes, deliver_rows,
                    has_msg_d, msg_value_d, msg_phase_d,
                )

                receiving = delivering[:, None] & honest[None, :]
                for port in range(n):
                    candidate = has_msg[:, :, port] & receiving
                    if not candidate.any():
                        continue
                    # Lines 4-7 of Algorithm 2: frozen nodes skip the
                    # rest of their batch, stale phases and repeat
                    # ports are filtered, fresh ports are recorded.
                    accept = (
                        candidate
                        & ~out_mask
                        & (msg_phase[:, :, port] >= phase)
                        & ~received[:, :, port]
                    )
                    if not accept.any():
                        continue
                    received[:, :, port] |= accept
                    count = np.where(accept, count + 1, count)
                    incoming = msg_value[:, :, port]
                    accept_lane, accept_node = np.nonzero(accept)
                    stored[
                        accept_lane, accept_node, count[accept_lane, accept_node] - 1
                    ] = incoming[accept_lane, accept_node]
                    full = accept & (count >= quorum)
                    if full.any():
                        # Lines 8-11: trimmed-midpoint update -- the
                        # (f+1)-st lowest and highest of the quorum
                        # stored states (max(R_low) and min(R_high)) --
                        # then next phase, reset, self-store.
                        full_lane, full_node = np.nonzero(full)
                        quorum_rows = stored[full_lane, full_node]
                        kth = (trim - 1, quorum - trim)
                        part = np.partition(
                            quorum_rows, sorted(set(kth)), axis=1
                        )
                        value[full_lane, full_node] = 0.5 * (
                            part[:, trim - 1] + part[:, quorum - trim]
                        )
                        phase = np.where(full, phase + 1, phase)
                        received[full] = False
                        received[full_lane, full_node, self_port[full_lane, full_node]] = True
                        count = np.where(full, 1, count)
                        stored[full_lane, full_node, 0] = value[full_lane, full_node]
                        decided = full & (phase >= end_phase)
                        if decided.any():
                            phase = np.where(decided, end_phase, phase)
                            out_mask |= decided
                            out_val = np.where(decided, value, out_val)
            # Silent window rounds change no state: the only delivery
            # is each node's own message, whose port is already marked.
            lane_t = np.where(lane_active, lane_t + 1, lane_t)

    def _kernel_mobile(self, rows, pending, results) -> None:
        """Advance mobile-omission DAC lanes in lock-step (with refill).

        DAC's jump/quorum update rule (mirroring
        :class:`BatchEngine`'s kernel) under per-lane delivered-from
        matrices: the complete graph minus each receiver's targeted
        in-link, computed per lane from the round-start values with
        two ``argmin``/``argmax`` passes -- the vectorized form of
        :func:`repro.adversary.mobile.mobile_victims`.
        """
        np = _np
        n = self.n
        quorum = self.quorum
        end_phase = self.end_phase
        mode = self.mode
        lanes = len(rows)
        node_idx = np.arange(n)

        slot = np.zeros(lanes, dtype=np.intp)
        lane_seed = [0] * lanes
        inputs = np.empty((lanes, n), dtype=np.float64)
        sender_at_port = np.empty((lanes, n, n), dtype=np.intp)
        self_port = np.empty((lanes, n), dtype=np.intp)
        value = np.empty((lanes, n), dtype=np.float64)
        phase = np.zeros((lanes, n), dtype=np.int64)
        v_min = np.empty((lanes, n), dtype=np.float64)
        v_max = np.empty((lanes, n), dtype=np.float64)
        received = np.zeros((lanes, n, n), dtype=bool)
        count = np.ones((lanes, n), dtype=np.int64)
        out_mask = np.zeros((lanes, n), dtype=bool)
        out_val = np.zeros((lanes, n), dtype=np.float64)
        lane_t = np.zeros(lanes, dtype=np.int64)
        lane_active = np.zeros(lanes, dtype=bool)
        complete = ~np.eye(n, dtype=bool)  # receiver-major, no self loop

        def reset_row(b: int, result_slot: int, seed: int) -> None:
            lane_inputs, lane_sap, lane_self = self._lane_tables(seed)
            slot[b] = result_slot
            lane_seed[b] = seed
            inputs[b] = lane_inputs
            sender_at_port[b] = lane_sap
            self_port[b] = lane_self
            value[b] = inputs[b]
            v_min[b] = value[b]
            v_max[b] = value[b]
            phase[b] = 0
            received[b] = False
            received[b, node_idx, self_port[b]] = True
            count[b] = 1
            if end_phase == 0:
                out_mask[b] = True
                out_val[b] = value[b]
            else:
                out_mask[b] = False
                out_val[b] = 0.0
            lane_t[b] = 0
            lane_active[b] = True

        def finalize_row(b: int, stopped: bool) -> None:
            state_keys = {}
            for node in range(n):
                decided = bool(out_mask[b, node])
                state_keys[node] = (
                    float(value[b, node]),
                    int(phase[b, node]),
                    tuple(bool(bit) for bit in received[b, node]),
                    float(v_min[b, node]),
                    float(v_max[b, node]),
                    float(out_val[b, node]) if decided else None,
                )
            if self.stop_mode == "output":
                outputs = {
                    int(node): float(out_val[b, node])
                    for node in range(n)
                    if out_mask[b, node]
                }
            else:
                outputs = {int(node): float(value[b, node]) for node in range(n)}
            results[slot[b]] = LaneResult(
                seed=lane_seed[b],
                rounds=int(lane_t[b]),
                stopped=stopped,
                inputs={int(node): float(inputs[b, node]) for node in range(n)},
                outputs=outputs,
                state_keys=state_keys,
            )
            lane_active[b] = False

        def stop_condition():
            if self.stop_mode == "output":
                return out_mask.all(axis=1)
            return (value.max(axis=1) - value.min(axis=1)) <= self.epsilon

        for b, (result_slot, seed) in enumerate(rows):
            reset_row(b, result_slot, seed)

        scatter_buffers: dict = {}

        while True:
            self._drain_and_refill(
                stop_condition, lane_active, lane_t, finalize_row, reset_row, pending
            )
            if not lane_active.any():
                return

            deliver_rows = np.nonzero(lane_active)[0]
            bc_value = value.copy()
            bc_phase = phase.copy()
            sap_d = sender_at_port[deliver_rows]

            delivered_recv = np.broadcast_to(
                complete, (deliver_rows.size, n, n)
            ).copy()
            if mode == "rotate":
                victim = (node_idx[None, :] + lane_t[deliver_rows][:, None]) % n
                cut = victim != node_idx[None, :]
                delivered_recv[
                    np.nonzero(cut)[0], np.nonzero(cut)[1], victim[cut]
                ] = False
            elif mode in ("block_min", "block_max"):
                lane_values = bc_value[deliver_rows]
                pick = np.argmin if mode == "block_min" else np.argmax
                first = pick(lane_values, axis=1)
                masked = lane_values.copy()
                masked[np.arange(deliver_rows.size), first] = (
                    np.inf if mode == "block_min" else -np.inf
                )
                second = pick(masked, axis=1)
                victim = np.broadcast_to(first[:, None], (deliver_rows.size, n)).copy()
                victim[np.arange(deliver_rows.size), first] = second
                delivered_recv[
                    np.arange(deliver_rows.size)[:, None],
                    node_idx[None, :],
                    victim,
                ] = False
            # mode == "none": keep the complete graph.
            has_msg_d = np.take_along_axis(delivered_recv, sap_d, axis=2)
            msg_value_d = bc_value[deliver_rows[:, None, None], sap_d]
            msg_phase_d = bc_phase[deliver_rows[:, None, None], sap_d]

            has_msg, msg_value, msg_phase = self._scatter_messages(
                scatter_buffers, lanes, deliver_rows,
                has_msg_d, msg_value_d, msg_phase_d,
            )

            receiving = np.broadcast_to(lane_active[:, None], (lanes, n))
            for port in range(n):
                here = has_msg[:, :, port] & receiving
                if not here.any():
                    continue
                active = here & ~out_mask
                if not active.any():
                    continue
                incoming_value = msg_value[:, :, port]
                incoming_phase = msg_phase[:, :, port]
                # Masks from the same pre-update phase, like the serial
                # if/elif -- a jump must not re-match as same-phase.
                jump = active & (incoming_phase > phase)
                same = active & (incoming_phase == phase) & ~received[:, :, port]
                if jump.any():
                    value = np.where(jump, incoming_value, value)
                    phase = np.where(jump, incoming_phase, phase)
                    received[jump] = False
                    jump_lane, jump_node = np.nonzero(jump)
                    received[jump_lane, jump_node, self_port[jump_lane, jump_node]] = True
                    count[jump] = 1
                    v_min = np.where(jump, value, v_min)
                    v_max = np.where(jump, value, v_max)
                    decided = jump & (phase >= end_phase)
                    if decided.any():
                        phase = np.where(decided, end_phase, phase)
                        out_mask |= decided
                        out_val = np.where(decided, value, out_val)
                if same.any():
                    received[:, :, port] |= same
                    count = np.where(same, count + 1, count)
                    lower = same & (incoming_value < v_min)
                    v_min = np.where(lower, incoming_value, v_min)
                    higher = same & ~lower & (incoming_value > v_max)
                    v_max = np.where(higher, incoming_value, v_max)
                    full = same & (count >= quorum)
                    if full.any():
                        value = np.where(full, 0.5 * (v_min + v_max), value)
                        phase = np.where(full, phase + 1, phase)
                        received[full] = False
                        full_lane, full_node = np.nonzero(full)
                        received[full_lane, full_node, self_port[full_lane, full_node]] = True
                        count[full] = 1
                        v_min = np.where(full, value, v_min)
                        v_max = np.where(full, value, v_max)
                        decided = full & (phase >= end_phase)
                        if decided.any():
                            phase = np.where(decided, end_phase, phase)
                            out_mask |= decided
                            out_val = np.where(decided, value, out_val)
            lane_t = np.where(lane_active, lane_t + 1, lane_t)


def run_byz_batch(
    n: int,
    f: int | None,
    seeds: Sequence[int],
    *,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    adversary: str = "quorum",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    backend: str = "auto",
    width: int | None = None,
    compact: bool = True,
    on_lane: Callable[[LaneResult], None] | None = None,
) -> list[LaneResult]:
    """Run one batch of Byzantine-or-mobile executions, one lane per seed.

    Convenience wrapper over :class:`ByzBatchEngine`; see its docstring
    for parameter semantics and the bit-identity contract. ``on_lane``
    is called once per finished lane, in lane (seed) order (see
    :func:`run_dac_batch`).

    >>> lanes = run_byz_batch(6, 1, [0, 1], backend="python")
    >>> [lane.stopped for lane in lanes]
    [True, True]
    """
    lanes = ByzBatchEngine(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        strategy=strategy,
        adversary=adversary,
        stop_mode=stop_mode,
        max_rounds=max_rounds,
        backend=backend,
        width=width,
        compact=compact,
    ).run()
    if on_lane is not None:
        for lane in lanes:
            on_lane(lane)
    return lanes


def run_dbac_batch(
    n: int,
    f: int | None,
    seeds: Sequence[int],
    *,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    backend: str = "auto",
    width: int | None = None,
    compact: bool = True,
    on_lane: Callable[[LaneResult], None] | None = None,
) -> list[LaneResult]:
    """Run one batch of boundary DBAC executions, one lane per seed.

    :func:`run_byz_batch` pinned to the ``"quorum"`` family -- the
    batched counterpart of :func:`repro.workloads.run_dbac_trial`.

    >>> lanes = run_dbac_batch(6, 1, [0, 1, 2], backend="python")
    >>> [lane.seed for lane in lanes]
    [0, 1, 2]
    """
    return run_byz_batch(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        strategy=strategy,
        adversary="quorum",
        stop_mode=stop_mode,
        max_rounds=max_rounds,
        backend=backend,
        width=width,
        compact=compact,
        on_lane=on_lane,
    )


# The averaging-baseline lane family (repro.core.baselines): selectors
# whose delivered-from structure the vectorized kernel replicates.
# ``rotate`` reuses the shared content-hash tables; ``nearest`` reuses
# the stable-argsort helper (fault-free, no Byzantine quota); the
# RNG-driven ``random`` selector falls back to the python backend.
_BASELINE_VECTOR_SELECTORS = ("rotate", "nearest")

# Local name->process map, kept in sync with
# ``repro.workloads._BASELINE_PROCESSES`` (not imported: workloads
# imports this module's package).
_BASELINE_ENGINE_PROCESSES = {
    "midpoint": IteratedMidpointProcess,
    "trimmed": TrimmedMeanProcess,
}


class BaselineBatchEngine:
    """Runs ``B`` independent averaging-baseline lanes in lock-step.

    The baseline counterpart of :class:`BatchEngine`: one shared
    parameter assignment, one seed per lane, lane families exactly as
    :func:`repro.workloads.run_baseline_trial` builds them -- the
    reliable-channel iterated ``"midpoint"`` (Dolev et al.) or
    trim-``f`` ``"trimmed"`` mean running fault-free under the same
    enforcing ``(window, floor(n/2))`` quorum adversary and seed/input
    streams as the DAC trials.

    The numpy kernel exploits what makes these lanes special: every
    node advances its round counter on every engine round (self
    delivery keeps the batch non-empty), every lane outputs at exactly
    ``num_rounds``, and the whole per-node state is one float. Silent
    window rounds are provably value-preserving (the midpoint of
    ``{v}`` is ``v``; a trimmed batch of one is either ``{v}`` or
    empty), so the kernel only touches the ``(B, n)`` value matrix on
    delivery rounds. Results are bit-identical to serial runs -- same
    floats, same round counts, same ``state_key()`` tuples.

    Parameters mirror :func:`repro.workloads.run_baseline_trial`;
    ``num_rounds=None`` defaults to DAC's ``p_end`` for the given
    ``epsilon``, and ``backend`` resolves as in :class:`BatchEngine`
    with ``_BASELINE_VECTOR_SELECTORS`` as the vectorizable set.
    """

    def __init__(
        self,
        n: int,
        seeds: Sequence[int],
        *,
        algorithm: str = "midpoint",
        f: int = 0,
        epsilon: float = 1e-3,
        window: int = 1,
        selector: str = "rotate",
        num_rounds: int | None = None,
        backend: str = "auto",
    ) -> None:
        self.seeds = [int(seed) for seed in seeds]
        if not self.seeds:
            raise ValueError("need at least one seed (one lane)")
        if algorithm not in _BASELINE_ENGINE_PROCESSES:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; "
                f"known: {sorted(_BASELINE_ENGINE_PROCESSES)}"
            )
        self.n = n
        self.f = int(f)
        self.algorithm = algorithm
        self.epsilon = float(epsilon)
        self.window = int(window)
        self.selector = selector
        # The DAC sufficiency threshold floor(n/2), kept in sync with
        # :func:`repro.workloads.dac_degree` (not imported: workloads
        # imports this module's package).
        self.degree = n // 2
        self.num_rounds = (
            dac_end_phase(epsilon) if num_rounds is None else int(num_rounds)
        )
        # The serial trial's engine cap (the baselines complete one
        # averaging phase per round plus a window of slack); lanes
        # always output at num_rounds, so only the python backend's
        # defensive cap can ever see it.
        self.max_rounds = self.num_rounds + 2 * self.window
        # Probes validate exactly what the serial builder would reject:
        # the process refuses negative round budgets, the adversary
        # refuses bad selectors, windows and degrees (n < 2).
        _BASELINE_ENGINE_PROCESSES[algorithm](
            n, self.f, 0.0, 0, num_rounds=self.num_rounds
        )
        self._adversary()
        self.backend = self._resolve_backend(backend)
        # salt -> receiver-major delivered-from table for the rotate
        # selector; at most n entries (cyclic in salt mod n).
        self._rotate_cache: dict[int, object] = {}

    @property
    def batch_size(self) -> int:
        """Number of lanes ``B``."""
        return len(self.seeds)

    def _adversary(self):
        """A fresh enforcing adversary, exactly the serial trial's."""
        if self.window == 1:
            return RotatingQuorumAdversary(self.degree, selector=self.selector)
        return LastMinuteQuorumAdversary(
            self.window, self.degree, selector=self.selector
        )

    def _resolve_backend(self, backend: str) -> str:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        vectorizable = numpy_available() and self.selector in _BASELINE_VECTOR_SELECTORS
        if backend == "auto":
            return "numpy" if vectorizable else "python"
        if backend == "numpy" and not vectorizable:
            reason = (
                "numpy is not installed"
                if not numpy_available()
                else f"selector {self.selector!r} is not vectorizable "
                f"(supported: {_BASELINE_VECTOR_SELECTORS})"
            )
            raise ValueError(f"numpy backend unavailable: {reason}")
        return backend

    def run(self) -> list[LaneResult]:
        """Run every lane to its fixed round budget; results in seed order."""
        if self.backend == "numpy":
            return self._run_numpy()
        return self._run_python()

    # -- python backend: lock-step over real engines -------------------

    def _build_serial_engine(self, seed: int):
        # Local imports: the runner/workloads layers import this
        # module's package, so top-level imports here would be cyclic.
        from repro.faults.base import FaultPlan
        from repro.sim.engine import Engine

        inputs = spawn_inputs(seed, self.n)
        ports = random_ports(self.n, child_rng(seed, "ports"))
        process_type = _BASELINE_ENGINE_PROCESSES[self.algorithm]
        processes = {
            node: process_type(
                self.n,
                self.f,
                inputs[node],
                ports.self_port(node),
                num_rounds=self.num_rounds,
            )
            for node in range(self.n)
        }
        return Engine(
            processes,
            self._adversary(),
            ports,
            fault_plan=FaultPlan.fault_free_plan(self.n),
            f=self.f,
            seed=seed,
            record_trace=False,
        )

    def _run_python(self) -> list[LaneResult]:
        engines = [self._build_serial_engine(seed) for seed in self.seeds]
        results: list[LaneResult | None] = [None] * len(engines)

        def finalize(index: int, rounds: int, stopped: bool) -> None:
            engine = engines[index]
            plan = engine.fault_plan
            outputs = {
                v: engine.processes[v].output()
                for v in sorted(plan.fault_free)
                if engine.processes[v].has_output()
            }
            results[index] = LaneResult(
                seed=self.seeds[index],
                rounds=rounds,
                stopped=stopped,
                inputs={
                    node: proc.input_value for node, proc in engine.processes.items()
                },
                outputs=outputs,
                state_keys={
                    node: proc.state_key() for node, proc in engine.processes.items()
                },
            )

        active = list(range(len(engines)))
        t = 0
        while active:
            # Same order as Engine.run: stop_when before each round,
            # then the documented final check at the cap.
            still = []
            for index in active:
                if engines[index].all_fault_free_output():
                    finalize(index, t, True)
                elif t >= self.max_rounds:
                    finalize(index, t, False)
                else:
                    still.append(index)
            for index in still:
                engines[index].run_round()
            active = still
            t += 1
        return [result for result in results if result is not None]

    # -- numpy backend: fixed-budget value iteration --------------------

    def _rotate_matrix(self, salt: int):
        """Receiver-major delivered-from bools of one rotate round.

        The fault-free rotate structure from the shared content-hash
        table memo (:func:`repro.sim.arena.delivered_table` -- zero
        copy from an attached arena in warm pool workers); no diagonal,
        self delivery is folded in explicitly by the update rules.
        """
        key = salt % self.n
        cached = self._rotate_cache.get(key)
        if cached is None:
            cached = delivered_table(
                rotate_topology(self.n, tuple(range(self.n)), salt, self.degree)
            )
            self._rotate_cache[key] = cached
        return cached

    def _run_numpy(self) -> list[LaneResult]:
        np = _np
        n = self.n
        lanes = len(self.seeds)
        trim = self.f

        inputs = np.empty((lanes, n), dtype=np.float64)
        for b, seed in enumerate(self.seeds):
            inputs[b] = spawn_inputs(seed, n)
        value = inputs.copy()

        for t in range(self.num_rounds):
            if self.window > 1 and (t + 1) % self.window != 0:
                # Silent window round: only the node's own echo is
                # delivered, which is bit-for-bit value-preserving
                # (0.5 * (v + v) == v; a trimmed batch of one is {v}
                # or empty). Round counters advance uniformly -- the
                # finalize block accounts for every t at once.
                continue
            salt = t if self.window == 1 else t // self.window
            if self.selector == "rotate":
                delivered = np.broadcast_to(self._rotate_matrix(salt), (lanes, n, n))
            else:
                delivered = nearest_delivered(
                    value, np.empty(0, dtype=np.intp), 0, self.degree
                )
            vals = value[:, None, :]
            if self.algorithm == "midpoint":
                # min/max over delivered senders and self -- the same
                # two floats the serial deliver() reduces, so the
                # midpoint is the identical IEEE result.
                lo = np.minimum(np.where(delivered, vals, np.inf).min(axis=2), value)
                hi = np.maximum(np.where(delivered, vals, -np.inf).max(axis=2), value)
                value = 0.5 * (lo + hi)
            else:
                # Sort delivered-plus-self per receiver (inf padding
                # keeps absentees past every real value), then read the
                # trim-f extremes at their counted positions.
                stacked = np.concatenate(
                    [np.where(delivered, vals, np.inf), value[:, :, None]], axis=2
                )
                ordered = np.sort(stacked, axis=2)
                counts = delivered.sum(axis=2) + 1
                low = ordered[:, :, min(trim, n)]
                high = np.take_along_axis(
                    ordered, np.clip(counts - trim - 1, 0, n)[:, :, None], axis=2
                )[:, :, 0]
                # Batches of <= 2f values trim to nothing: v unchanged.
                value = np.where(counts > 2 * trim, 0.5 * (low + high), value)

        # Every lane outputs at exactly num_rounds (uniform round
        # advance), where state_key() is (v, num_rounds, output=v).
        results: list[LaneResult] = []
        for b, seed in enumerate(self.seeds):
            lane_outputs = {node: float(value[b, node]) for node in range(n)}
            results.append(
                LaneResult(
                    seed=seed,
                    rounds=self.num_rounds,
                    stopped=True,
                    inputs={node: float(inputs[b, node]) for node in range(n)},
                    outputs=lane_outputs,
                    state_keys={
                        node: (lane_outputs[node], self.num_rounds, lane_outputs[node])
                        for node in range(n)
                    },
                )
            )
        return results


def run_baseline_batch(
    n: int,
    seeds: Sequence[int],
    *,
    algorithm: str = "midpoint",
    f: int = 0,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
    backend: str = "auto",
    on_lane: Callable[[LaneResult], None] | None = None,
) -> list[LaneResult]:
    """Run one batch of averaging-baseline executions, one lane per seed.

    Convenience wrapper over :class:`BaselineBatchEngine`; see its
    docstring for parameter semantics and the bit-identity contract.
    ``on_lane`` is called once per finished lane, in lane (seed) order
    (see :func:`run_dac_batch`).

    >>> lanes = run_baseline_batch(5, [0, 1], num_rounds=3, backend="python")
    >>> [(lane.seed, lane.rounds, lane.stopped) for lane in lanes]
    [(0, 3, True), (1, 3, True)]
    """
    lanes = BaselineBatchEngine(
        n,
        seeds,
        algorithm=algorithm,
        f=f,
        epsilon=epsilon,
        window=window,
        selector=selector,
        num_rounds=num_rounds,
        backend=backend,
    ).run()
    if on_lane is not None:
        for lane in lanes:
            on_lane(lane)
    return lanes


class GenericBatchEngine:
    """Lock-step lanes over serial engines built from an execution builder.

    The registry's open end: a family registered through
    :mod:`repro.scenario` gets a batched form without writing a
    kernel. ``build(seed)`` returns the family's
    :func:`repro.sim.runner.run_consensus` keyword dict (processes,
    adversary, ports, fault plan, ``stop_mode``, ``max_rounds``,
    ``epsilon``); the engine advances one real serial
    :class:`~repro.sim.engine.Engine` per seed in lock-step, checking
    each lane's stop condition before every round and once more at the
    cap -- exactly the serial ``Engine.run`` order, so lanes are
    bit-identical to per-seed serial runs by construction.

    Python backend only: a family that wants vectorized lanes writes a
    dedicated kernel (like :class:`BatchEngine` /
    :class:`ByzBatchEngine`) and reports it via its ``vectorizable``
    hook; ``backend="auto"`` degrades to python here.
    """

    def __init__(
        self,
        seeds: Sequence[int],
        build: Callable[[int], dict],
        *,
        backend: str = "auto",
    ) -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown backend {backend!r}; use one of {_BACKENDS}")
        if backend == "numpy":
            raise ValueError(
                "the generic batch engine is python-only; register a "
                "dedicated kernel for vectorized lanes"
            )
        self.seeds = [int(seed) for seed in seeds]
        self.build = build

    def _build_engine(self, seed: int):
        from repro.sim.engine import Engine

        kwargs = self.build(seed)
        engine = Engine(
            kwargs["processes"],
            kwargs["adversary"],
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=False,
        )
        return engine, kwargs

    @staticmethod
    def _stop_holds(engine, stop_mode: str, epsilon: float) -> bool:
        if stop_mode == "output":
            return engine.all_fault_free_output()
        return engine.fault_free_range() <= epsilon

    @staticmethod
    def _finalize(engine, stop_mode: str, seed: int, rounds: int, stopped: bool) -> LaneResult:
        if stop_mode == "output":
            outputs = {
                v: engine.processes[v].output()
                for v in sorted(engine.fault_plan.fault_free)
                if engine.processes[v].has_output()
            }
        else:
            outputs = engine.fault_free_values()
        return LaneResult(
            seed=seed,
            rounds=rounds,
            stopped=stopped,
            inputs={node: proc.input_value for node, proc in engine.processes.items()},
            outputs=outputs,
            state_keys={
                node: proc.state_key() for node, proc in engine.processes.items()
            },
        )

    def run(self) -> list[LaneResult]:
        """Run every lane to its stop condition; results in seed order."""
        lanes = [self._build_engine(seed) for seed in self.seeds]
        results: list[LaneResult | None] = [None] * len(lanes)
        active = list(range(len(lanes)))
        t = 0
        while active:
            still = []
            for index in active:
                engine, kwargs = lanes[index]
                stop_mode = kwargs.get("stop_mode", "output")
                epsilon = kwargs.get("epsilon", 1e-3)
                holds = self._stop_holds(engine, stop_mode, epsilon)
                if holds or t >= kwargs["max_rounds"]:
                    results[index] = self._finalize(
                        engine, stop_mode, self.seeds[index], t, holds
                    )
                else:
                    still.append(index)
            for index in still:
                lanes[index][0].run_round()
            active = still
            t += 1
        return [result for result in results if result is not None]


def run_generic_batch(
    seeds: Sequence[int],
    build: Callable[[int], dict],
    *,
    backend: str = "auto",
    on_lane: Callable[[LaneResult], None] | None = None,
) -> list[LaneResult]:
    """Run one batch of builder-defined executions, one lane per seed.

    Convenience wrapper over :class:`GenericBatchEngine`, with the
    same ``on_lane`` streaming hook as :func:`run_dac_batch`.
    """
    lanes = GenericBatchEngine(seeds, build, backend=backend).run()
    if on_lane is not None:
        for lane in lanes:
            on_lane(lane)
    return lanes
