"""Batched lock-step execution: advance B independent trials at once.

Large sweeps are dominated by grids of *small, independent* executions
(DAC trials across ``n``, ``f``, window and seed). The process-pool
layer (:mod:`repro.sim.parallel`) scales those across cores; this
module attacks the per-trial interpreter overhead inside one process:
a :class:`BatchEngine` advances ``B`` independent executions of the
boundary DAC family *in lock-step*, so one pass over the round
structure serves every lane at once.

Two backends implement the same contract:

- **numpy** (used automatically when numpy -- an optional extra, see
  ``setup.py`` -- is importable): node states live in ``(B, n)``
  arrays and each round is processed port-by-port with vectorized
  updates across all ``B * n`` nodes. The port-major sweep preserves
  the serial engine's delivery order exactly (deliveries are consumed
  sorted by port; within one port, node transitions only read the
  round-start broadcast snapshot, so they are independent);
- **python** (always importable, no third-party dependencies): the
  same lock-step loop over ``B`` real :class:`~repro.sim.engine.Engine`
  instances. No speedup -- it exists so batching is a pure speed knob
  on any interpreter, and as the executable specification the numpy
  kernel is tested against.

Both backends produce **bit-identical final states and round counts**
to ``B`` serial ``Engine`` runs: every lane derives its inputs, ports
and crash plan from its own seed through the exact same
:mod:`repro.sim.rng` child streams the serial builders use, so batching
(and batch *order*) cannot perturb results. The supported trial family
is fault-free and crash-fault DAC under the enforcing quorum
adversaries -- precisely what :func:`repro.workloads.run_dac_trial`
runs. Byzantine/DBAC batching composes on top of this layer and stays
on the serial path for now.

Composition: :func:`repro.workloads.run_dac_trial_batch` wraps
:func:`run_dac_batch` in the batched-trial calling convention the
parallel layer dispatches, so ``Sweep.run(workers=N, batch=B)`` fans
*batches* over processes -- the two layers multiply.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.adversary.constrained import rotate_topology
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs

try:  # numpy is an optional extra (``pip install repro[numpy]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the no-numpy CI leg
    _np = None

_BACKENDS = ("auto", "numpy", "python")

# Selectors whose link choices the vectorized kernel replicates. The
# shared structure is :func:`repro.adversary.constrained.rotate_picks`;
# value-dependent ("nearest") and RNG-dependent ("random") selectors
# fall back to the python backend.
_VECTOR_SELECTORS = ("rotate",)

# Sentinel crash round for nodes that never crash (far beyond any cap).
_NEVER = 1 << 62


def numpy_available() -> bool:
    """Whether the vectorized numpy backend can be used at all."""
    return _np is not None


@dataclass(frozen=True)
class LaneResult:
    """Final outcome of one lane -- one serial ``Engine`` run's worth.

    ``state_keys`` maps every (non-Byzantine) node to its process's
    full :meth:`~repro.core.dac.DACProcess.state_key`, the strongest
    equality the determinism suite can assert; ``outputs`` covers the
    fault-free nodes that decided, keyed by node ID, exactly as
    :func:`repro.sim.runner.run_consensus` reports them.
    """

    seed: int
    rounds: int
    stopped: bool
    inputs: dict[int, float]
    outputs: dict[int, float]
    state_keys: dict[int, tuple]


class BatchEngine:
    """Runs ``B`` independent boundary-DAC executions in lock-step.

    Parameters mirror :func:`repro.workloads.build_dac_execution` --
    one shared parameter assignment, one seed per lane:

    Parameters
    ----------
    n, f:
        Network size and fault bound (``n >= 2f + 1``).
    seeds:
        One root seed per lane; ``B = len(seeds)``. Each lane's inputs,
        ports and RNG streams derive from its seed exactly as the
        serial builder's do.
    epsilon, window, selector, crash_nodes, crash_start, enable_jump:
        As in ``build_dac_execution``.
    max_rounds:
        Hard cap per lane; defaults to the serial builder's formula.
    backend:
        ``"auto"`` (numpy when available and the selector is
        vectorizable, python otherwise), ``"numpy"`` (raise when
        unusable), or ``"python"``.
    """

    def __init__(
        self,
        n: int,
        f: int,
        seeds: Sequence[int],
        *,
        epsilon: float = 1e-3,
        window: int = 1,
        selector: str = "rotate",
        crash_nodes: int | None = None,
        crash_start: int = 1,
        enable_jump: bool = True,
        max_rounds: int | None = None,
        backend: str = "auto",
    ) -> None:
        self.seeds = [int(seed) for seed in seeds]
        if not self.seeds:
            raise ValueError("need at least one seed (one lane)")
        # Derive the lane family -- validation, crash schedule, quorum,
        # end phase, default round cap -- from the serial builder itself,
        # so there is exactly one source of truth for what a lane *is*
        # and the bit-identity contract cannot drift out from under a
        # builder change.
        from repro.workloads import build_dac_execution  # lazy: import cycle

        probe = build_dac_execution(
            n=n,
            f=f,
            epsilon=epsilon,
            seed=self.seeds[0],
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
            crash_start=crash_start,
            enable_jump=enable_jump,
            max_rounds=max_rounds,
        )
        process = next(iter(probe["processes"].values()))
        self.n = n
        self.f = f
        self.epsilon = epsilon
        self.window = window
        self.selector = selector
        self.crash_nodes = f if crash_nodes is None else crash_nodes
        self.crash_start = crash_start
        self.enable_jump = enable_jump
        self.degree = probe["adversary"].degree
        self.quorum = process.quorum
        self.end_phase = process.end_phase
        self.max_rounds = probe["max_rounds"]
        self._crashes = probe["fault_plan"].crashes
        self._fault_free = sorted(probe["fault_plan"].fault_free)
        self.backend = self._resolve_backend(backend)
        # Round structure (delivered-from matrices) memo for the numpy
        # kernel: keyed by (live-set key, salt mod n), tiny and cyclic.
        self._structure_cache: dict[tuple, object] = {}

    @property
    def batch_size(self) -> int:
        """Number of lanes ``B``."""
        return len(self.seeds)

    def _resolve_backend(self, backend: str) -> str:
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        vectorizable = numpy_available() and self.selector in _VECTOR_SELECTORS
        if backend == "auto":
            return "numpy" if vectorizable else "python"
        if backend == "numpy" and not vectorizable:
            reason = (
                "numpy is not installed"
                if not numpy_available()
                else f"selector {self.selector!r} is not vectorizable "
                f"(supported: {_VECTOR_SELECTORS})"
            )
            raise ValueError(f"numpy backend unavailable: {reason}")
        return backend

    def run(self) -> list[LaneResult]:
        """Run every lane to its stop condition and return lane results.

        Results come back in ``seeds`` order. Each lane stops exactly
        like ``Engine.run(max_rounds, stop_when=all_fault_free_output)``
        does: the stop condition is evaluated before each round and once
        more at the cap, and the lane's state freezes at that point.
        """
        if self.backend == "numpy":
            return self._run_numpy()
        return self._run_python()

    # -- python backend: lock-step over real engines --------------------

    def _build_serial_engine(self, seed: int):
        # Local imports: the runner/workloads layers import this module's
        # package, so top-level imports here would be cyclic.
        from repro.sim.engine import Engine
        from repro.workloads import build_dac_execution

        kwargs = build_dac_execution(
            n=self.n,
            f=self.f,
            epsilon=self.epsilon,
            seed=seed,
            window=self.window,
            selector=self.selector,
            crash_nodes=self.crash_nodes,
            crash_start=self.crash_start,
            enable_jump=self.enable_jump,
            max_rounds=self.max_rounds,
        )
        return Engine(
            kwargs["processes"],
            kwargs["adversary"],
            kwargs["ports"],
            fault_plan=kwargs["fault_plan"],
            f=kwargs["f"],
            seed=kwargs["seed"],
            record_trace=False,
        )

    def _run_python(self) -> list[LaneResult]:
        engines = [self._build_serial_engine(seed) for seed in self.seeds]
        results: list[LaneResult | None] = [None] * len(engines)

        def finalize(index: int, rounds: int, stopped: bool) -> None:
            engine = engines[index]
            plan = engine.fault_plan
            outputs = {
                v: engine.processes[v].output()
                for v in sorted(plan.fault_free)
                if engine.processes[v].has_output()
            }
            results[index] = LaneResult(
                seed=self.seeds[index],
                rounds=rounds,
                stopped=stopped,
                inputs={
                    node: proc.input_value for node, proc in engine.processes.items()
                },
                outputs=outputs,
                state_keys={
                    node: proc.state_key() for node, proc in engine.processes.items()
                },
            )

        active = list(range(len(engines)))
        t = 0
        while active:
            # Same order as Engine.run: stop_when before each round,
            # then the documented final check at the cap.
            still = []
            for index in active:
                if engines[index].all_fault_free_output():
                    finalize(index, t, True)
                elif t >= self.max_rounds:
                    finalize(index, t, False)
                else:
                    still.append(index)
            for index in still:
                engines[index].run_round()
            active = still
            t += 1
        return [result for result in results if result is not None]

    # -- numpy backend: vectorized port-major kernel ---------------------

    def _delivered_from(self, live_key: tuple[int, ...], salt: int):
        """``(n, n)`` bool: does ``u``'s round broadcast reach ``v``?

        Derived from the *same* interned round
        :class:`~repro.net.topology.Topology` the serial enforcing
        adversary plays (:func:`repro.adversary.constrained.rotate_topology`),
        by reading its cached in-adjacency rows -- one graph
        representation across the serial and batched paths. Diagonal
        entries encode the engine's reliable self-delivery. The matrix
        depends only on the live set and ``salt mod n``, so after the
        crash schedule settles it cycles with period ``n``.
        """
        np = _np
        key = (live_key, salt % self.n)
        cached = self._structure_cache.get(key)
        if cached is None:
            topology = rotate_topology(self.n, live_key, salt, self.degree)
            delivered = np.zeros((self.n, self.n), dtype=bool)
            for receiver, senders in enumerate(topology.in_rows()):
                delivered[list(senders), receiver] = True
            delivered[list(live_key), list(live_key)] = True
            self._structure_cache[key] = delivered
            cached = delivered
        return cached

    def _run_numpy(self) -> list[LaneResult]:
        np = _np
        n = self.n
        lanes = len(self.seeds)

        # Per-lane construction through the serial builders' exact RNG
        # streams: inputs, port bijections (sender-major inverse and
        # self-ports are what the kernel indexes by).
        inputs = np.empty((lanes, n), dtype=np.float64)
        sender_at_port = np.empty((lanes, n, n), dtype=np.intp)
        self_port = np.empty((lanes, n), dtype=np.intp)
        for b, seed in enumerate(self.seeds):
            inputs[b] = spawn_inputs(seed, n)
            ports = random_ports(n, child_rng(seed, "ports"))
            for v in range(n):
                sender_at_port[b, v] = [ports.sender_of(v, k) for k in range(n)]
                self_port[b, v] = ports.self_port(v)

        crash_round = np.full(n, _NEVER, dtype=np.int64)
        for node, event in self._crashes.items():
            crash_round[node] = event.round
        fault_free = np.array(self._fault_free, dtype=np.intp)

        # DACProcess state, one row per lane (Algorithm 1 init block).
        value = inputs.copy()
        phase = np.zeros((lanes, n), dtype=np.int64)
        v_min = value.copy()
        v_max = value.copy()
        received = np.zeros((lanes, n, n), dtype=bool)
        lane_idx = np.arange(lanes)
        received[lane_idx[:, None], np.arange(n)[None, :], self_port] = True
        count = np.ones((lanes, n), dtype=np.int64)
        out_mask = np.zeros((lanes, n), dtype=bool)
        out_val = np.zeros((lanes, n), dtype=np.float64)
        if self.end_phase == 0:  # init-time _check_output: decide at once
            out_mask[:] = True
            out_val[:] = value

        results: list[LaneResult | None] = [None] * lanes

        def finalize(b: int, rounds: int, stopped: bool) -> None:
            state_keys = {}
            for node in range(n):
                decided = bool(out_mask[b, node])
                state_keys[node] = (
                    float(value[b, node]),
                    int(phase[b, node]),
                    tuple(bool(bit) for bit in received[b, node]),
                    float(v_min[b, node]),
                    float(v_max[b, node]),
                    float(out_val[b, node]) if decided else None,
                )
            results[b] = LaneResult(
                seed=self.seeds[b],
                rounds=rounds,
                stopped=stopped,
                inputs={node: float(inputs[b, node]) for node in range(n)},
                outputs={
                    int(node): float(out_val[b, node])
                    for node in fault_free
                    if out_mask[b, node]
                },
                state_keys=state_keys,
            )

        gather_lane = lane_idx[:, None, None]
        gather_col = np.arange(n)[None, :, None]
        lane_active = np.ones(lanes, dtype=bool)
        enable_jump = self.enable_jump
        end_phase = self.end_phase
        t = 0
        while True:
            # Stop handling in Engine.run order: the condition first,
            # the cap second (a lane at the cap whose condition holds
            # right now reports stopped=True either way).
            finished = lane_active & out_mask[:, fault_free].all(axis=1)
            for b in np.nonzero(finished)[0]:
                finalize(int(b), t, True)
            lane_active &= ~finished
            if t >= self.max_rounds:
                for b in np.nonzero(lane_active)[0]:
                    finalize(int(b), t, False)
                lane_active[:] = False
            if not lane_active.any():
                break
            if self.window > 1 and (t + 1) % self.window != 0:
                # The last-minute adversary's silent rounds change no
                # state: the only delivery is each node's own message,
                # whose port is already marked received.
                t += 1
                continue

            live = crash_round > t  # clean crashes: senders == processors
            salt = t if self.window == 1 else t // self.window
            delivered = self._delivered_from(
                tuple(int(u) for u in np.nonzero(live)[0]), salt
            )

            # Round-start broadcast snapshot, then the port-major sweep.
            bc_value = value.copy()
            bc_phase = phase.copy()
            msg_value = bc_value[gather_lane, sender_at_port]
            msg_phase = bc_phase[gather_lane, sender_at_port]
            has_msg = delivered[sender_at_port, gather_col]
            receiving = lane_active[:, None] & live[None, :]

            for port in range(n):
                here = has_msg[:, :, port] & receiving
                if not here.any():
                    continue
                active = here & ~out_mask
                if not active.any():
                    continue
                incoming_value = msg_value[:, :, port]
                incoming_phase = msg_phase[:, :, port]
                # Masks from the same pre-update phase, like the serial
                # if/elif -- a jump must not re-match as same-phase.
                jump = (
                    active & (incoming_phase > phase)
                    if enable_jump
                    else np.zeros_like(active)
                )
                same = active & (incoming_phase == phase) & ~received[:, :, port]
                if jump.any():
                    value = np.where(jump, incoming_value, value)
                    phase = np.where(jump, incoming_phase, phase)
                    received[jump] = False
                    jb, jn = np.nonzero(jump)
                    received[jb, jn, self_port[jb, jn]] = True
                    count[jump] = 1
                    v_min = np.where(jump, value, v_min)
                    v_max = np.where(jump, value, v_max)
                    decided = jump & (phase >= end_phase)
                    if decided.any():
                        phase = np.where(decided, end_phase, phase)
                        out_mask |= decided
                        out_val = np.where(decided, value, out_val)
                if same.any():
                    received[:, :, port] |= same
                    count = np.where(same, count + 1, count)
                    lower = same & (incoming_value < v_min)
                    v_min = np.where(lower, incoming_value, v_min)
                    higher = same & ~lower & (incoming_value > v_max)
                    v_max = np.where(higher, incoming_value, v_max)
                    full = same & (count >= self.quorum)
                    if full.any():
                        value = np.where(full, 0.5 * (v_min + v_max), value)
                        phase = np.where(full, phase + 1, phase)
                        received[full] = False
                        qb, qn = np.nonzero(full)
                        received[qb, qn, self_port[qb, qn]] = True
                        count[full] = 1
                        v_min = np.where(full, value, v_min)
                        v_max = np.where(full, value, v_max)
                        decided = full & (phase >= end_phase)
                        if decided.any():
                            phase = np.where(decided, end_phase, phase)
                            out_mask |= decided
                            out_val = np.where(decided, value, out_val)
            t += 1
        return [result for result in results if result is not None]


def run_dac_batch(
    n: int,
    f: int,
    seeds: Sequence[int],
    *,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    enable_jump: bool = True,
    max_rounds: int | None = None,
    backend: str = "auto",
) -> list[LaneResult]:
    """Run one batch of boundary DAC executions, one lane per seed.

    Convenience wrapper over :class:`BatchEngine`; see its docstring
    for parameter semantics and the bit-identity contract.
    """
    return BatchEngine(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        crash_nodes=crash_nodes,
        crash_start=crash_start,
        enable_jump=enable_jump,
        max_rounds=max_rounds,
        backend=backend,
    ).run()
