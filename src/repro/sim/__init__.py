"""Simulation kernel: synchronous rounds under a message adversary.

The engine implements the paper's execution model exactly:

1. every round, each alive node hands the engine the message it
   broadcasts (Byzantine nodes may hand a different message per
   receiver);
2. the message adversary -- with full read access to node states and
   the algorithm specification -- chooses the reliable link set
   ``E(t)``;
3. messages are delivered along ``E(t)`` tagged with *local port
   numbers*; a node's message to itself is always delivered;
4. nodes transition states on the batch of deliveries.

Anonymity is structural: algorithm code receives ``(port, message)``
pairs and has no channel through which a global ID could leak.
"""

from repro.sim.batch import BatchEngine, LaneResult, numpy_available, run_dac_batch
from repro.sim.engine import Engine, EngineView, RoundRecord, RunResult
from repro.sim.messages import StateMessage, message_bits
from repro.sim.metrics import MetricsCollector, PhaseRangeSeries
from repro.sim.node import ConsensusProcess, Delivery
from repro.sim.parallel import (
    TrialSpec,
    resolve_batch,
    resolve_workers,
    run_trials,
    set_default_batch,
    set_default_workers,
)
from repro.sim.persistence import load_trace, replay_adversary, save_trace
from repro.sim.rng import child_rng, derive_seed
from repro.sim.runner import ExecutionReport, run_consensus
from repro.sim.trace import ExecutionTrace

__all__ = [
    "BatchEngine",
    "LaneResult",
    "numpy_available",
    "run_dac_batch",
    "Engine",
    "EngineView",
    "RoundRecord",
    "RunResult",
    "TrialSpec",
    "run_trials",
    "resolve_batch",
    "resolve_workers",
    "set_default_batch",
    "set_default_workers",
    "StateMessage",
    "message_bits",
    "MetricsCollector",
    "PhaseRangeSeries",
    "ConsensusProcess",
    "Delivery",
    "child_rng",
    "derive_seed",
    "ExecutionReport",
    "run_consensus",
    "ExecutionTrace",
    "save_trace",
    "load_trace",
    "replay_adversary",
]
