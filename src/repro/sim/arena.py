"""Shared-memory topology arenas: structure tables keyed by content hash.

The batch kernels (:mod:`repro.sim.batch`) derive one boolean
delivered-from matrix per topology in an adversary's replay cycle.
Before this module every worker process rebuilt those matrices from
scratch, and every per-engine cache grew without bound. The arena
layer fixes both with one canonical table and two tiers of reuse:

- :func:`delivered_table` -- a process-wide memo of **read-only**
  receiver-major ``(n, n)`` bool arrays, keyed by
  ``Topology.content_hash`` (stable across processes, unlike
  ``hash()``). The table is the pure graph: row ``v`` flags the
  senders ``v`` hears from, no diagonal -- live-set diagonals are a
  per-execution concern applied on copies downstream.
- :class:`ArenaRegistry` -- the dispatching process packs the tables a
  sweep will need into ``multiprocessing.shared_memory`` segments,
  once per content hash, and ships workers a tiny **manifest**
  ``{content_hash: (segment, offset, n)}`` instead of re-pickled
  arrays. Workers :func:`attach_manifest` and serve
  :func:`delivered_table` hits zero-copy straight out of the segment.

Cleanup is deterministic: the registry unlinks its segments on
``close()`` (wired to ``repro.sim.parallel.close_pool``), and an
``atexit`` hook plus a best-effort ``SIGTERM`` relay cover abnormal
exits (KeyboardInterrupt included -- the interpreter still runs
``atexit`` handlers). Everything degrades gracefully: without numpy or
``shared_memory``, publication is skipped, attachment is a no-op, and
callers silently keep the plain pickle path -- results are identical
either way, only the copies differ.
"""

from __future__ import annotations

import atexit
import os
import signal
from typing import Any

from repro.net.topology import Topology

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on the no-numpy CI leg
    _np = None

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without shared memory
    _shm = None

def arenas_available() -> bool:
    """Whether shared-memory arenas can operate in this interpreter."""
    return _np is not None and _shm is not None


# -- Tier 1: process-wide table memo ------------------------------------

# Bounded like the Topology intern table: cleared wholesale when full.
# An adversary cycle needs at most n tables per live set, so steady
# state for realistic sweeps sits far below the cap.
_TABLE_MEMO_MAX = 1024
_table_memo: dict[int, Any] = {}

# Worker-side state populated by attach_manifest(): open segments by
# name, and zero-copy read-only views by content hash. Both live for
# the worker's lifetime (persistent pools keep workers warm) and are
# released in dependency order by the atexit hook below.
_attached_segments: dict[str, Any] = {}
_attached_tables: dict[int, Any] = {}


def delivered_table(topology: Topology) -> Any:
    """The read-only receiver-major ``(n, n)`` bool table for ``topology``.

    ``table[v, u]`` is True iff edge ``(u, v)`` exists (v hears u); no
    diagonal. Served from, in order: a shared-memory view attached via
    :func:`attach_manifest` (warm workers), the process-wide memo, or
    a fresh build from :meth:`Topology.delivered_bytes`. Returns
    ``None`` when numpy is unavailable (callers on the python backend
    never ask). The array is never writable -- kernels that need a
    diagonal or a transpose copy it first.
    """
    if _np is None:
        return None
    key = topology.content_hash
    cached = _attached_tables.get(key)
    if cached is not None:
        return cached
    cached = _table_memo.get(key)
    if cached is None:
        n = topology.n
        # frombuffer over immutable bytes yields a non-writable array;
        # reshape preserves that, so the view is read-only end to end.
        cached = _np.frombuffer(topology.delivered_bytes(), dtype=bool).reshape(n, n)
        if len(_table_memo) >= _TABLE_MEMO_MAX:
            _table_memo.clear()
        _table_memo[key] = cached
    return cached


# -- Tier 2: shared-memory publication ----------------------------------

# Registries needing cleanup at interpreter exit. Registered lazily so
# importing this module has no side effects.
_live_registries: list["ArenaRegistry"] = []
_cleanup_installed = False
_segment_counter = 0


def _segment_name() -> str:
    """A collision-resistant, recognizably-ours segment name."""
    global _segment_counter
    _segment_counter += 1
    return f"repro_arena_{os.getpid()}_{_segment_counter}"


def _cleanup_all() -> None:
    """atexit/signal hook: unlink every live registry's segments."""
    for registry in list(_live_registries):
        registry.close()


def _install_cleanup() -> None:
    global _cleanup_installed
    if _cleanup_installed:
        return
    _cleanup_installed = True
    atexit.register(_cleanup_all)
    try:
        # Only claim SIGTERM when nobody else has: a host harness with
        # its own handler keeps it (its shutdown path reaches atexit).
        if signal.getsignal(signal.SIGTERM) is signal.SIG_DFL:

            def _on_term(signum: int, frame: Any) -> None:
                _cleanup_all()
                signal.signal(signal.SIGTERM, signal.SIG_DFL)
                os.kill(os.getpid(), signum)

            signal.signal(signal.SIGTERM, _on_term)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass


class ArenaRegistry:
    """Parent-side ledger of published shared-memory table segments.

    ``publish`` packs the delivered tables of novel topologies (by
    content hash) into one fresh segment per call and extends the
    manifest; ``close`` unlinks everything and resets, after which the
    registry is reusable. All failure modes degrade to ``None``
    manifests -- callers fall back to plain pickled dispatch.
    """

    def __init__(self) -> None:
        self._segments: list[Any] = []
        self._manifest: dict[int, tuple[str, int, int]] = {}

    @property
    def manifest(self) -> dict[int, tuple[str, int, int]]:
        """A snapshot of ``{content_hash: (segment_name, offset, n)}``."""
        return dict(self._manifest)

    def segment_names(self) -> list[str]:
        """Names of the currently-published segments (tests/diagnostics)."""
        return [segment.name for segment in self._segments]

    def publish(self, topologies: list[Topology]) -> dict[int, tuple[str, int, int]] | None:
        """Publish any not-yet-published tables; return the manifest.

        Returns ``None`` when arenas are unavailable or nothing has
        ever been published (callers then skip manifest shipping).
        """
        if not arenas_available():
            return None
        novel: list[tuple[int, Topology]] = []
        seen: set[int] = set()
        for topology in topologies:
            key = topology.content_hash
            if key in self._manifest or key in seen:
                continue
            seen.add(key)
            novel.append((key, topology))
        if novel:
            total = sum(topology.n * topology.n for _, topology in novel)
            segment = None
            try:
                segment = _shm.SharedMemory(create=True, size=max(total, 1), name=_segment_name())
            except Exception:
                try:
                    segment = _shm.SharedMemory(create=True, size=max(total, 1))
                except Exception:
                    segment = None
            if segment is None:
                return self._manifest.copy() if self._manifest else None
            if self not in _live_registries:
                _live_registries.append(self)
                _install_cleanup()
            offset = 0
            for key, topology in novel:
                data = topology.delivered_bytes()
                segment.buf[offset : offset + len(data)] = data
                self._manifest[key] = (segment.name, offset, topology.n)
                offset += len(data)
            self._segments.append(segment)
        return self._manifest.copy() if self._manifest else None

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        segments, self._segments = self._segments, []
        self._manifest = {}
        for segment in segments:
            try:
                segment.close()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
            try:
                segment.unlink()
            except Exception:
                # Already unlinked (e.g. a worker's resource tracker
                # raced us at exit) -- the goal state is reached.
                pass
        if self in _live_registries:
            _live_registries.remove(self)


# -- Worker-side attachment ---------------------------------------------


def attach_manifest(manifest: dict[int, tuple[str, int, int]] | None) -> bool:
    """Map a manifest's tables into this process's attached-table cache.

    Called on the worker side before a batched trial runs; idempotent
    and incremental (hashes already attached are skipped, segments are
    opened once). Returns True when every entry is served zero-copy;
    any failure leaves the affected hashes to the local build path --
    results are unaffected, only the copy count.
    """
    if not manifest or not arenas_available():
        return False
    complete = True
    for key, (name, offset, n) in manifest.items():
        if key in _attached_tables:
            continue
        segment = _attached_segments.get(name)
        if segment is None:
            try:
                segment = _shm.SharedMemory(name=name)
            except Exception:
                complete = False
                continue
            # Attaching re-registers the name with the resource
            # tracker, but pool workers (forked *and* spawned -- the
            # tracker fd ships in the spawn preparation data) share the
            # dispatching process's tracker, so this is a set no-op:
            # ownership and unlinking stay with the parent registry.
            _attached_segments[name] = segment
            _ensure_attach_cleanup()
        try:
            view = _np.frombuffer(
                segment.buf, dtype=bool, count=n * n, offset=offset
            ).reshape(n, n)
            view.flags.writeable = False
            _attached_tables[key] = view
        except Exception:
            complete = False
    return complete


_attach_cleanup_installed = False


def _ensure_attach_cleanup() -> None:
    global _attach_cleanup_installed
    if not _attach_cleanup_installed:
        _attach_cleanup_installed = True
        atexit.register(_release_attachments)


def _release_attachments() -> None:
    """Worker atexit: drop views before closing segments (ordering
    matters -- closing shared memory with live exported views raises
    ``BufferError``)."""
    _attached_tables.clear()
    _table_memo.clear()
    segments = list(_attached_segments.values())
    _attached_segments.clear()
    for segment in segments:
        try:
            segment.close()
        except Exception:  # pragma: no cover - stray external view
            pass
