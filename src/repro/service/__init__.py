"""Consensus-as-a-service: the long-running simulation daemon.

The package turns the scenario DSL (:mod:`repro.scenario`) into a
service surface: a stdlib-``asyncio`` daemon accepts
:class:`~repro.scenario.spec.ScenarioSpec` text or JSON over a thin
HTTP/JSON endpoint, schedules trials onto the existing
``run_trials(workers=N, batch=B, pool="persist")`` machinery through a
bounded job queue, and memoizes every result in a content-addressed
cache keyed on ``(scenario content hash, seed)`` -- so repeated and
overlapping requests are O(1) lookups, however they spell their spec
(the canonical-fixpoint property of :mod:`repro.scenario.resolve`
guarantees that defaults-elided and fully-explicit forms hash alike).

Three layers, mirroring the daemon/manager/api idiom:

- :mod:`repro.service.cache` -- the content-addressed result store
  with an append-only JSONL persistence tier (trace-v3 idiom), so the
  cache survives daemon restarts;
- :mod:`repro.service.jobs` -- the async :class:`JobManager`: bounded
  queue, in-flight request coalescing (concurrent identical
  submissions share one computation), per-job event logs fed by the
  worker event-forwarding path of :mod:`repro.sim.parallel`;
- :mod:`repro.service.server` / :mod:`repro.service.client` -- the
  HTTP endpoint (submit, cache lookup, stats, health, chunked
  progress streaming) and its stdlib client.

The service is strictly read-only with respect to the simulation
core: it drives executions only through the resolution and dispatch
seams (``repro.scenario.resolve`` + ``repro.sim.parallel``), never by
reaching into engine, adversary, or process state -- the
``service-readonly`` lint rule pins that contract, and the ``service``
layer sits in the import DAG above ``scenario``. Entry points:
``python -m repro.cli serve`` / ``python -m repro.cli submit``; see
``docs/service.md``.
"""

from repro.service.cache import ResultCache, cache_key, scenario_key
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import Job, JobManager
from repro.service.server import BackgroundServer, ServiceServer, serve

__all__ = [
    "BackgroundServer",
    "Job",
    "JobManager",
    "ResultCache",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "cache_key",
    "scenario_key",
    "serve",
]
