"""Stdlib client for the consensus-as-a-service endpoint.

A thin :mod:`http.client` wrapper speaking the contract of
:mod:`repro.service.server`: JSON in, JSON out, one connection per
request (the server answers ``Connection: close``). Streaming
submissions read the chunk-decoded ``application/x-ndjson`` body line
by line -- ``http.client`` strips the chunked framing, so each
``readline()`` is one event-log entry -- invoking ``on_event`` per
entry and returning the final ``{"kind": "result", ...}`` payload.

Errors are uniform: any non-2xx response (or an in-stream
``{"kind": "error"}`` line) raises :class:`ServiceError` carrying the
HTTP status and the decoded error payload, so callers never have to
parse failure bodies themselves.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Callable

from repro.scenario.spec import ScenarioSpec

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-success response from the service.

    ``status`` is the HTTP status code (0 for in-stream errors, which
    arrive after a successful 200 header) and ``payload`` the decoded
    JSON error body.
    """

    def __init__(self, status: int, payload: dict[str, Any]) -> None:
        message = payload.get("error", "service error")
        super().__init__(f"HTTP {status}: {message}" if status else str(message))
        self.status = status
        self.payload = payload


class ServiceClient:
    """A client bound to one daemon address.

    The client is stateless between calls (fresh connection per
    request) and safe to share across threads for non-overlapping
    calls; it performs no retries and keeps no clocks, so a fixed
    request sequence observes a deterministic response sequence.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8787, timeout: float | None = 60.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- endpoints --------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        """``GET /stats`` -- the manager's deterministic counters."""
        return self._request("GET", "/stats")

    def cached(self, scenario: str, seed: int) -> dict[str, Any] | None:
        """``GET /cache/<scenario>/<seed>``; ``None`` when absent."""
        try:
            return self._request("GET", f"/cache/{scenario}/{int(seed)}")
        except ServiceError as exc:
            if exc.status == 404:
                return None
            raise

    def submit(
        self,
        spec: str | dict[str, Any] | ScenarioSpec,
        seeds: list[int] | None = None,
        stream: bool = False,
        events: bool = False,
        on_event: Callable[[dict[str, Any]], None] | None = None,
    ) -> dict[str, Any]:
        """``POST /jobs``: run (or fetch) a scenario, return its payload.

        ``spec`` may be DSL text, a spec JSON dict, or a
        :class:`ScenarioSpec`. With ``stream=True`` (implied by passing
        ``on_event``) the job's event log is consumed incrementally and
        each entry handed to ``on_event`` before the final result is
        returned.
        """
        if on_event is not None:
            stream = True
        if isinstance(spec, ScenarioSpec):
            spec = spec.to_dict()
        envelope: dict[str, Any] = {"spec": spec, "stream": stream, "events": events}
        if seeds is not None:
            envelope["seeds"] = [int(seed) for seed in seeds]
        body = json.dumps(envelope, sort_keys=True)
        if not stream:
            return self._request("POST", "/jobs", body)
        return self._submit_streaming(body, on_event)

    # -- plumbing ---------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)

    def _request(self, method: str, path: str, body: str | None = None) -> dict[str, Any]:
        connection = self._connect()
        try:
            connection.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            response = connection.getresponse()
            payload = json.loads(response.read().decode("utf-8"))
            if response.status >= 300:
                raise ServiceError(response.status, payload)
            return payload
        finally:
            connection.close()

    def _submit_streaming(
        self, body: str, on_event: Callable[[dict[str, Any]], None] | None
    ) -> dict[str, Any]:
        connection = self._connect()
        try:
            connection.request(
                "POST",
                "/jobs?stream=1",
                body=body,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            if response.status >= 300:
                payload = json.loads(response.read().decode("utf-8"))
                raise ServiceError(response.status, payload)
            result: dict[str, Any] | None = None
            while True:
                line = response.readline()
                if not line:
                    break
                entry = json.loads(line.decode("utf-8"))
                kind = entry.get("kind")
                if kind == "result":
                    result = entry
                elif kind == "error":
                    raise ServiceError(0, entry)
                elif on_event is not None:
                    on_event(entry)
            if result is None:
                raise ServiceError(0, {"error": "stream ended without a result"})
            return result
        finally:
            connection.close()
