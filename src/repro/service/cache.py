"""Content-addressed result cache with an append-only JSONL tier.

The cache memoizes trial results under ``(scenario_key, seed)`` where
``scenario_key`` is the content hash of the job's **canonical** spec
(:meth:`~repro.scenario.resolve.ResolvedScenario.canonical_spec`) with
the seed field normalized out. The canonical form is a fixpoint of
``parse -> resolve -> encode`` (PR 9), so two semantically identical
submissions -- defaults elided vs. spelled out, parameters in any
order, DSL text vs. JSON -- produce the same canonical encoding and
therefore hit the same cache entry; the seed rides separately in the
key so ``seed: 7`` inside the spec and ``seeds=[7]`` in the request
are the same trial.

Persistence follows the trace-v3 idiom of
:mod:`repro.sim.persistence`: one JSON header line, then one
append-only entry line per cached result, flushed as written. A
daemon killed mid-append loses at most the final partial line --
:meth:`ResultCache.open` tolerates a truncated tail (and a trailing
corrupt line) but raises on mid-file corruption, exactly the
:class:`~repro.sim.persistence.TraceReader` recovery contract. Cached
payloads are plain JSON scalars (the picklable ``run_*_trial``
summary dicts), so a round-trip through the file is value-identical.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.scenario.resolve import ResolvedScenario

__all__ = ["ResultCache", "cache_key", "scenario_key"]

_CACHE_VERSION = 1

#: The seed value the scenario identity is normalized to: the spec's
#: own seed field is excluded from the scenario key (the trial seed is
#: the second key component), so differently-seeded submissions of one
#: scenario share a single identity hash.
_IDENTITY_SEED = 0


def scenario_key(resolved: ResolvedScenario) -> str:
    """The seed-independent content hash identifying a scenario.

    Computed over the canonical spec (every default explicit, every
    parameter sorted) with the seed field pinned, so it is stable
    across spellings, processes, and requested seeds.
    """
    return resolved.canonical_spec().with_seed(_IDENTITY_SEED).content_hash


def cache_key(resolved: ResolvedScenario, seed: int) -> tuple[str, int]:
    """The full cache key for one trial: ``(scenario_key, seed)``."""
    return (scenario_key(resolved), int(seed))


class ResultCache:
    """In-memory result store with an optional append-only JSONL tier.

    Without a path the cache is purely in-memory (tests, ephemeral
    daemons). With one, every :meth:`put` appends a JSONL entry and
    flushes, and construction replays the file so the cache state
    survives daemon restarts. ``hits``/``misses``/``stores`` counters
    are deterministic functions of the request sequence.
    """

    def __init__(self, path: str | Path | None = None) -> None:
        self.path = Path(path) if path is not None else None
        self._entries: dict[tuple[str, int], dict[str, Any]] = {}
        self._specs: dict[str, dict[str, Any]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self._file: Any = None
        if self.path is not None:
            self._open()

    # -- persistence ------------------------------------------------------

    def _open(self) -> None:
        assert self.path is not None
        if self.path.exists():
            self._load(self.path)
            self._file = self.path.open("a")
        else:
            self._file = self.path.open("w")
            header = {"version": _CACHE_VERSION, "kind": "service-cache"}
            self._file.write(json.dumps(header) + "\n")
            self._file.flush()

    def _load(self, path: Path) -> None:
        with path.open() as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise ValueError(f"{path}: empty cache file (missing header)")
        header = json.loads(lines[0])
        if header.get("kind") != "service-cache" or header.get("version") != _CACHE_VERSION:
            raise ValueError(
                f"{path}: not a version-{_CACHE_VERSION} service cache "
                f"(header {header!r})"
            )
        for position, line in enumerate(lines[1:], start=2):
            try:
                entry = json.loads(line)
                scenario, seed = entry["key"]
                result = entry["result"]
                # Coerce inside the recovery block: a final line whose
                # JSON parses but whose seed is not int-like is still a
                # truncated tail, not mid-file corruption.
                key = (str(scenario), int(seed))
            except (ValueError, KeyError, TypeError) as exc:
                if position == len(lines):
                    # Truncated tail: the daemon died mid-append and
                    # lost at most this one entry. Recover what loaded.
                    break
                raise ValueError(
                    f"{path}: corrupt cache entry on line {position}"
                ) from exc
            self._entries[key] = result
            spec = entry.get("spec")
            if spec is not None:
                self._specs[key[0]] = spec

    def close(self) -> None:
        """Close the persistence file (idempotent; in-memory state stays)."""
        if self._file is not None and not self._file.closed:
            self._file.close()

    def __enter__(self) -> ResultCache:
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- the store --------------------------------------------------------

    def get(self, key: tuple[str, int]) -> dict[str, Any] | None:
        """The cached result for ``key``, or ``None`` (counted either way)."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, key: tuple[str, int]) -> dict[str, Any] | None:
        """Like :meth:`get` but without touching the hit/miss counters."""
        return self._entries.get(key)

    def spec_for(self, scenario: str) -> dict[str, Any] | None:
        """The canonical spec dict recorded for a scenario key, if any."""
        return self._specs.get(scenario)

    def put(
        self,
        key: tuple[str, int],
        result: dict[str, Any],
        spec: dict[str, Any] | None = None,
    ) -> None:
        """Store one result (last write wins) and append it to the tier.

        ``spec`` is the canonical spec dict, recorded once per scenario
        key so a persisted cache is self-describing.
        """
        scenario, seed = key
        novel_spec = spec is not None and scenario not in self._specs
        # Serialize before mutating: if the result cannot encode, the
        # put fails with nothing cached, keeping the in-memory store
        # and the append-only tier consistent (failed trials are never
        # cached, and neither are unpersistable ones).
        line: str | None = None
        if self._file is not None and not self._file.closed:
            entry: dict[str, Any] = {"key": [scenario, int(seed)], "result": result}
            if novel_spec:
                entry["spec"] = spec
            line = json.dumps(entry, sort_keys=True) + "\n"
        self._entries[(scenario, int(seed))] = result
        if novel_spec:
            self._specs[scenario] = spec  # type: ignore[assignment]
        self.stores += 1
        if line is not None:
            self._file.write(line)
            self._file.flush()

    def __contains__(self, key: tuple[str, int]) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> dict[str, int]:
        """Deterministic counters for the service's stats endpoint."""
        return {
            "entries": len(self._entries),
            "scenarios": len(self._specs),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
        }
