"""Async job management: bounded queue, coalescing, per-job event logs.

The :class:`JobManager` is the daemon's scheduling heart. A submitted
spec resolves (:func:`repro.scenario.resolve.resolve`), each requested
seed becomes one potential trial, and three outcomes are possible per
seed, decided synchronously at submission time:

- **hit** -- the :class:`~repro.service.cache.ResultCache` already
  holds ``(scenario_key, seed)``: the result is returned without any
  scheduling;
- **coalesced** -- another in-flight job is already computing exactly
  this key: the submission attaches to that computation's future
  instead of enqueueing a duplicate (concurrent identical submissions
  share one computation);
- **computed** -- the seed is claimed (an in-flight future is
  registered under its key) and the job is enqueued on the bounded
  queue; ``submit`` itself applies backpressure by awaiting queue
  space.

Trials run on the existing process-pool machinery --
``run_trials(workers=N, batch=B, pool="persist")`` -- offloaded
through ``loop.run_in_executor`` onto a **single-thread** executor so
the event loop never blocks. That executor thread is the single owner
of the module-level persistent pool: :mod:`repro.sim.parallel`
documents pooled dispatch as single-owner, and funneling every
``run_trials`` call through one thread is how the service honors it
(``close_pool`` itself is safe to race from shutdown paths).

Every job carries an append-only :class:`JobEventLog`. Observability
events the trials hand to :func:`repro.sim.parallel.record_event`
ride back over the PR 7/8 forwarding path (``run_trials(on_event=...)``
replays them in spec order) and are appended to the log alongside the
manager's own lifecycle entries; HTTP clients tail the log as a
chunked progress stream (:mod:`repro.service.server`). Logs and
result payloads carry no wall-clock or scheduling-dependent values:
given the same request sequence, every payload is byte-identical.
"""

from __future__ import annotations

import asyncio
import dataclasses
import inspect
from collections.abc import AsyncIterator, Sequence
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any

from repro.scenario.resolve import ResolvedScenario, resolve
from repro.service.cache import ResultCache, scenario_key
from repro.sim.parallel import TrialSpec, close_pool, run_trials

__all__ = ["Job", "JobEventLog", "JobManager"]


def _envelope(event: Any) -> dict[str, Any]:
    """One forwarded observer event as a plain JSON-ready log entry."""
    if dataclasses.is_dataclass(event) and not isinstance(event, type):
        return {
            "kind": "event",
            "event": type(event).__name__,
            **dataclasses.asdict(event),
        }
    return {"kind": "event", "event": type(event).__name__, "repr": repr(event)}


class JobEventLog:
    """An append-only event log one or more clients can tail.

    Appends happen on the event-loop thread only (the manager replays
    worker-forwarded events there), so tailers never observe a torn
    entry; :meth:`close` marks the log complete, after which
    :meth:`tail` drains the remainder and stops.
    """

    def __init__(self) -> None:
        self._entries: list[dict[str, Any]] = []
        self._closed = False
        self._wakeup = asyncio.Event()

    @property
    def entries(self) -> list[dict[str, Any]]:
        """A snapshot of everything logged so far."""
        return list(self._entries)

    @property
    def closed(self) -> bool:
        return self._closed

    def append(self, entry: dict[str, Any]) -> None:
        """Append one entry (dropped once the log is closed)."""
        if self._closed:
            return
        self._entries.append(entry)
        self._wakeup.set()

    def close(self) -> None:
        """Mark the log complete and wake every tailer."""
        self._closed = True
        self._wakeup.set()

    async def tail(self) -> AsyncIterator[dict[str, Any]]:
        """Yield entries in order, waiting for new ones until closed."""
        index = 0
        while True:
            while index < len(self._entries):
                yield self._entries[index]
                index += 1
            if self._closed:
                return
            self._wakeup.clear()
            if index < len(self._entries) or self._closed:
                continue
            await self._wakeup.wait()


class Job:
    """One accepted submission: seeds, per-seed outcomes, event log."""

    def __init__(
        self,
        job_id: str,
        resolved: ResolvedScenario,
        scenario: str,
        canonical: dict[str, Any],
        seeds: tuple[int, ...],
        events_requested: bool,
    ) -> None:
        self.id = job_id
        self.resolved = resolved
        self.scenario = scenario
        self.canonical = canonical
        self.seeds = seeds
        self.events_requested = events_requested
        self.log = JobEventLog()
        #: seed -> ("hit" | "coalesced" | "computed", result-or-future)
        self.statuses: dict[int, tuple[str, Any]] = {}
        #: the seeds this job itself computes, in request order
        self.compute_seeds: list[int] = []

    async def result(self) -> dict[str, Any]:
        """Await every seed's outcome; the deterministic response payload.

        Raises whatever the computation raised (for this job's own
        trials or a coalesced-into computation's); failed trials are
        never cached, so a retry recomputes.
        """
        results: list[dict[str, Any]] = []
        counts = {"computed": 0, "hit": 0, "coalesced": 0}
        for seed in self.seeds:
            status, value = self.statuses[seed]
            if asyncio.isfuture(value):
                value = await value
            counts[status] += 1
            results.append({"seed": seed, "status": status, "result": value})
        return {
            "job": self.id,
            "scenario": self.scenario,
            "spec": self.canonical,
            "results": results,
            **counts,
        }


class JobManager:
    """Bounded async scheduler over the pooled trial executors.

    One instance owns one :class:`~repro.service.cache.ResultCache`,
    one bounded :class:`asyncio.Queue` of jobs, the in-flight
    coalescing table, and the single-thread executor that serializes
    all pooled dispatch (the single-owner contract of
    :mod:`repro.sim.parallel`). ``workers``/``batch`` are handed
    through to ``run_trials`` unchanged -- the service adds no
    execution semantics of its own, which is what keeps its payloads
    byte-identical to direct ``resolve(spec).run(seed)`` calls.
    """

    def __init__(
        self,
        cache: ResultCache | None = None,
        workers: int = 1,
        batch: int = 1,
        queue_size: int = 16,
        pool: str = "persist",
    ) -> None:
        if queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {queue_size}")
        self.cache = cache if cache is not None else ResultCache()
        self.workers = workers
        self.batch = batch
        self.pool = pool
        self._queue: asyncio.Queue[Job] = asyncio.Queue(maxsize=queue_size)
        self._inflight: dict[tuple[str, int], asyncio.Future] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-dispatch"
        )
        self._worker_task: asyncio.Task | None = None
        self._job_counter = 0
        self.jobs_accepted = 0
        self.jobs_finished = 0
        self.jobs_failed = 0
        self.trials_computed = 0
        self.trials_coalesced = 0

    # -- lifecycle --------------------------------------------------------

    def start(self) -> None:
        """Start the queue-draining worker task (idempotent)."""
        if self._worker_task is None or self._worker_task.done():
            self._worker_task = asyncio.get_running_loop().create_task(
                self._drain(), name="repro-service-jobs"
            )

    async def close(self, shutdown_pool: bool = True) -> None:
        """Stop the worker, fail pending futures, release the executor.

        ``shutdown_pool`` additionally tears down the module-level
        persistent pool (on the dispatch thread, so teardown and any
        interrupted dispatch serialize); pass ``False`` when the
        surrounding process keeps using the pool.
        """
        task, self._worker_task = self._worker_task, None
        if task is not None:
            task.cancel()
            try:
                await task
            except asyncio.CancelledError:
                pass
        pending = list(self._inflight.values())
        self._inflight.clear()
        for future in pending:
            if not future.done():
                future.set_exception(
                    RuntimeError("service shut down before the trial ran")
                )
        if shutdown_pool:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(self._executor, close_pool)
        self._executor.shutdown(wait=True)
        self.cache.close()

    def stats(self) -> dict[str, Any]:
        """Deterministic counters (the ``/stats`` endpoint payload)."""
        return {
            "jobs": {
                "accepted": self.jobs_accepted,
                "finished": self.jobs_finished,
                "failed": self.jobs_failed,
                "queued": self._queue.qsize(),
                "inflight_trials": len(self._inflight),
            },
            "trials": {
                "computed": self.trials_computed,
                "coalesced": self.trials_coalesced,
            },
            "cache": self.cache.stats(),
            "dispatch": {
                "workers": self.workers,
                "batch": self.batch,
                "pool": self.pool,
            },
        }

    # -- submission -------------------------------------------------------

    async def submit(
        self,
        spec: Any,
        seeds: Sequence[int] | None = None,
        events: bool = False,
    ) -> Job:
        """Resolve a spec, decide per-seed outcomes, enqueue what's new.

        ``spec`` is anything :func:`repro.scenario.resolve.resolve`
        accepts (DSL text, JSON text, or a :class:`ScenarioSpec`) or an
        already-resolved scenario. ``seeds`` defaults to the spec's own
        seed. ``events=True`` asks for trial-level observer events in
        the job log (families without an ``observe`` knob just log
        lifecycle entries). Raises
        :class:`~repro.scenario.spec.SpecError` on a bad spec; awaiting
        queue space is the backpressure path.
        """
        self.start()
        resolved = spec if isinstance(spec, ResolvedScenario) else resolve(spec)
        scenario = scenario_key(resolved)
        canonical = resolved.canonical_spec().with_seed(0).to_dict()
        chosen = (
            (resolved.spec.seed,)
            if seeds is None
            else tuple(int(seed) for seed in seeds)
        )
        if not chosen:
            raise ValueError("seeds must name at least one seed")
        self._job_counter += 1
        self.jobs_accepted += 1
        job = Job(
            job_id=f"job-{self._job_counter}",
            resolved=resolved,
            scenario=scenario,
            canonical=canonical,
            seeds=chosen,
            events_requested=events,
        )
        loop = asyncio.get_running_loop()
        for seed in chosen:
            if seed in job.statuses:
                continue  # duplicate seed in one request: one outcome
            key = (scenario, seed)
            cached = self.cache.get(key)
            if cached is not None:
                job.statuses[seed] = ("hit", cached)
            elif key in self._inflight:
                self.trials_coalesced += 1
                job.statuses[seed] = ("coalesced", self._inflight[key])
            else:
                future: asyncio.Future = loop.create_future()
                self._inflight[key] = future
                job.statuses[seed] = ("computed", future)
                job.compute_seeds.append(seed)
        job.log.append(
            {
                "kind": "job",
                "job": job.id,
                "status": "accepted",
                "scenario": scenario,
                "seeds": list(chosen),
                "computed": len(job.compute_seeds),
                "hit": sum(1 for s, _ in job.statuses.values() if s == "hit"),
                "coalesced": sum(
                    1 for s, _ in job.statuses.values() if s == "coalesced"
                ),
            }
        )
        if job.compute_seeds:
            try:
                await self._queue.put(job)
            except BaseException:
                # The backpressure await was cancelled (or failed)
                # before the job made it onto the queue: release the
                # claimed keys so identical resubmissions recompute
                # instead of coalescing onto a future nobody will ever
                # resolve. Coalesced waiters see the failure too.
                error = RuntimeError(
                    "submission abandoned before the job was enqueued"
                )
                for seed in job.compute_seeds:
                    future = self._inflight.pop((job.scenario, seed), None)
                    if future is not None and not future.done():
                        future.set_exception(error)
                        future.exception()  # retrieved: no GC warning
                job.log.append(
                    {"kind": "job", "job": job.id, "status": "abandoned"}
                )
                job.log.close()
                raise
            job.log.append({"kind": "job", "job": job.id, "status": "queued"})
        else:
            self.jobs_finished += 1
            job.log.append({"kind": "job", "job": job.id, "status": "finished"})
            job.log.close()
        return job

    # -- execution --------------------------------------------------------

    async def _drain(self) -> None:
        while True:
            job = await self._queue.get()
            try:
                await self._execute(job)
            finally:
                self._queue.task_done()

    def _observe_supported(self, resolved: ResolvedScenario) -> bool:
        try:
            signature = inspect.signature(resolved.trial_fn)
        except (TypeError, ValueError):
            return False
        return "observe" in signature.parameters

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        kwargs = dict(job.resolved.trial_kwargs())
        # Event streaming rides on the family's observe knob; the
        # injected "metrics" key is stripped again below so cached
        # payloads stay identical to bare resolve(spec).run(seed)
        # results (observation is read-only by the repro.obs contract).
        strip_metrics = False
        if (
            job.events_requested
            and not kwargs.get("observe")
            and self._observe_supported(job.resolved)
        ):
            kwargs["observe"] = True
            strip_metrics = True
        params = tuple(sorted(kwargs.items()))
        specs = [TrialSpec(params, seed=seed) for seed in job.compute_seeds]
        # run_trials replays forwarded events after collection, so the
        # buffer is complete (and in spec order) by the time the
        # executor call returns; replaying it on the loop thread keeps
        # log appends single-threaded.
        forwarded: list[Any] = []
        call = partial(
            run_trials,
            job.resolved.trial_fn,
            specs,
            workers=self.workers,
            batch=self.batch,
            pool=self.pool,
            on_event=forwarded.append,
        )
        job.log.append(
            {
                "kind": "job",
                "job": job.id,
                "status": "running",
                "trials": len(specs),
            }
        )
        # Result processing shares the executor call's failure path: a
        # cache.put that cannot serialize an outcome must still resolve
        # the job's remaining futures, or coalesced waiters hang and
        # the _drain task dies mid-job.
        try:
            outcomes = await loop.run_in_executor(self._executor, call)
            for event in forwarded:
                job.log.append(_envelope(event))
            for seed, outcome in zip(job.compute_seeds, outcomes):
                if strip_metrics and isinstance(outcome, dict):
                    outcome = {
                        k: v for k, v in outcome.items() if k != "metrics"
                    }
                key = (job.scenario, seed)
                self.cache.put(key, outcome, spec=job.canonical)
                self.trials_computed += 1
                future = self._inflight.pop(key, None)
                if future is not None and not future.done():
                    future.set_result(outcome)
                job.log.append(
                    {"kind": "trial", "seed": seed, "status": "computed"}
                )
        except BaseException as exc:
            self.jobs_failed += 1
            for seed in job.compute_seeds:
                future = self._inflight.pop((job.scenario, seed), None)
                if future is not None and not future.done():
                    future.set_exception(exc)
                    future.exception()  # retrieved: no GC warning
            job.log.append(
                {
                    "kind": "job",
                    "job": job.id,
                    "status": "failed",
                    "error": f"{type(exc).__name__}: {exc}",
                }
            )
            job.log.close()
            if isinstance(exc, asyncio.CancelledError):
                raise
            return
        self.jobs_finished += 1
        job.log.append({"kind": "job", "job": job.id, "status": "finished"})
        job.log.close()
