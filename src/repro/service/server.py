"""The thin HTTP/JSON endpoint over the async job manager.

A deliberately small, dependency-free HTTP/1.1 server on
``asyncio.start_server`` -- enough surface for the service contract
(``docs/service.md``) and nothing more:

- ``POST /jobs`` -- submit a scenario. The body is either a raw spec
  (DSL text or a spec JSON object) or an envelope
  ``{"spec": ..., "seeds": [...], "stream": bool, "events": bool}``.
  Without ``stream`` the response is one JSON payload (per-seed
  results tagged ``computed`` / ``hit`` / ``coalesced``); with it the
  response is chunked ``application/x-ndjson``: the job's event log
  tailed line by line, then a final ``{"kind": "result", ...}`` line.
- ``GET /cache/<scenario>/<seed>`` -- cached-result lookup by content
  hash (no side effects, counters untouched).
- ``GET /stats`` -- the manager's deterministic counters.
- ``GET /healthz`` -- liveness.

Spec errors map to 400 (the :class:`~repro.scenario.spec.SpecError`
message names the offending field), computation failures to 500;
failed trials are never cached. Every connection is handled
``Connection: close`` -- submissions are long-lived relative to
connection setup, and one socket per job keeps the server trivially
correct. Payloads contain no wall-clock values: identical request
sequences produce byte-identical responses.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any
from urllib.parse import parse_qs, unquote, urlsplit

from repro.scenario.spec import ScenarioSpec, SpecError
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobManager

__all__ = ["BackgroundServer", "ServiceServer", "serve"]

_MAX_BODY = 1 << 20  # one-line specs; a megabyte is already generous


class _RequestError(Exception):
    """A client error carrying its HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


def _parse_submission(
    body: str, query: dict[str, list[str]]
) -> tuple[Any, list[int] | None, bool, bool]:
    """``(spec, seeds, stream, events)`` from a POST /jobs request."""
    spec: Any = body
    seeds: list[int] | None = None
    stream = query.get("stream", ["0"])[-1] not in ("0", "", "false")
    events = query.get("events", ["0"])[-1] not in ("0", "", "false")
    try:
        data = json.loads(body)
    except json.JSONDecodeError:
        data = None  # DSL text; resolve() parses it
    if isinstance(data, dict) and "spec" in data:
        unknown = set(data) - {"spec", "seeds", "stream", "events"}
        if unknown:
            raise _RequestError(
                400, f"unknown submission fields {sorted(unknown)!r}"
            )
        spec = data["spec"]
        raw_seeds = data.get("seeds")
        if raw_seeds is not None:
            if not isinstance(raw_seeds, list) or not all(
                isinstance(seed, int) and not isinstance(seed, bool)
                for seed in raw_seeds
            ):
                raise _RequestError(400, "seeds must be a list of integers")
            seeds = raw_seeds
        stream = bool(data.get("stream", stream))
        events = bool(data.get("events", events))
    elif isinstance(data, dict):
        spec = data  # a bare ScenarioSpec JSON object
    if isinstance(spec, dict):
        spec = ScenarioSpec.from_dict(spec)
    elif not isinstance(spec, (str, ScenarioSpec)):
        raise _RequestError(400, "spec must be DSL text or a JSON object")
    if isinstance(spec, str) and not spec.strip():
        raise _RequestError(400, "empty request body; POST a scenario spec")
    return spec, seeds, stream, events


class ServiceServer:
    """One listening endpoint bound to one :class:`JobManager`."""

    def __init__(
        self,
        manager: JobManager,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Bind and start serving; ``port`` is updated for ``port=0``."""
        self.manager.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def close(self, shutdown_pool: bool = True) -> None:
        """Stop listening, then close the manager (and optionally the pool)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.close(shutdown_pool=shutdown_pool)

    # -- plumbing ---------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        streamed = False

        def mark_streamed() -> None:
            # Called by _stream once the chunked 200 head is on the
            # wire; from then on errors may only travel in-stream.
            nonlocal streamed
            streamed = True

        try:
            method, path, query, headers = await self._read_head(reader)
            body = await self._read_body(reader, headers)
            await self._route(method, path, query, body, writer, mark_streamed)
        except _RequestError as exc:
            self._respond(writer, exc.status, {"error": str(exc)})
        except SpecError as exc:
            self._respond(writer, 400, {"error": str(exc), "field": exc.field})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away; nothing to answer
        except Exception as exc:  # pragma: no cover - defensive catch-all
            if not streamed:
                self._respond(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
        finally:
            try:
                await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _read_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict[str, list[str]], dict[str, str]]:
        request = (await reader.readline()).decode("latin-1").strip()
        parts = request.split()
        if len(parts) != 3:
            raise _RequestError(400, f"malformed request line {request!r}")
        method, target, _version = parts
        split = urlsplit(target)
        # Headers stay connection-local: one ServiceServer handles
        # concurrent connections, so nothing per-request lives on self.
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), unquote(split.path), parse_qs(split.query), headers

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: dict[str, str]
    ) -> str:
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _RequestError(413, f"request body over {_MAX_BODY} bytes")
        if length <= 0:
            return ""
        return (await reader.readexactly(length)).decode("utf-8")

    async def _route(
        self,
        method: str,
        path: str,
        query: dict[str, list[str]],
        body: str,
        writer: asyncio.StreamWriter,
        mark_streamed: Any = None,
    ) -> None:
        segments = [part for part in path.split("/") if part]
        if method == "GET" and segments == ["healthz"]:
            self._respond(writer, 200, {"ok": True})
            return
        if method == "GET" and segments == ["stats"]:
            self._respond(writer, 200, self.manager.stats())
            return
        if method == "GET" and len(segments) == 3 and segments[0] == "cache":
            _, scenario, raw_seed = segments
            try:
                seed = int(raw_seed)
            except ValueError:
                raise _RequestError(400, f"seed must be an integer, got {raw_seed!r}")
            result = self.manager.cache.peek((scenario, seed))
            if result is None:
                self._respond(
                    writer, 404, {"error": f"no cached result for {scenario}/{seed}"}
                )
                return
            self._respond(
                writer,
                200,
                {"scenario": scenario, "seed": seed, "result": result},
            )
            return
        if method == "POST" and segments == ["jobs"]:
            spec, seeds, stream, events = _parse_submission(body, query)
            job = await self.manager.submit(spec, seeds=seeds, events=events or stream)
            if stream:
                await self._stream(writer, job, mark_streamed)
            else:
                try:
                    payload = await job.result()
                except Exception as exc:
                    self._respond(
                        writer,
                        500,
                        {"error": f"{type(exc).__name__}: {exc}", "job": job.id},
                    )
                    return
                self._respond(writer, 200, payload)
            return
        raise _RequestError(404, f"no route for {method} {path}")

    # -- response writing -------------------------------------------------

    def _respond(
        self, writer: asyncio.StreamWriter, status: int, payload: dict[str, Any]
    ) -> None:
        if writer.is_closing():
            return
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)

    async def _stream(
        self,
        writer: asyncio.StreamWriter,
        job: Job,
        mark_streamed: Any = None,
    ) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head)
        if mark_streamed is not None:
            mark_streamed()
        await writer.drain()
        try:
            async for entry in job.log.tail():
                self._chunk(writer, entry)
                await writer.drain()
            payload = await job.result()
            self._chunk(writer, {"kind": "result", **payload})
        except (ConnectionError, asyncio.IncompleteReadError):
            raise  # client went away; the terminal chunk has no reader
        except Exception as exc:
            self._chunk(
                writer,
                {
                    "kind": "error",
                    "error": f"{type(exc).__name__}: {exc}",
                    "job": job.id,
                },
            )
        writer.write(b"0\r\n\r\n")

    @staticmethod
    def _chunk(writer: asyncio.StreamWriter, payload: dict[str, Any]) -> None:
        data = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


async def serve(
    host: str = "127.0.0.1",
    port: int = 8787,
    cache_path: str | None = None,
    workers: int = 1,
    batch: int = 1,
    queue_size: int = 16,
    ready: Any | None = None,
    shutdown: asyncio.Event | None = None,
) -> None:
    """Run the daemon until cancelled (or ``shutdown`` is set).

    The coroutine behind ``python -m repro.cli serve``: builds the
    cache + manager + server stack, optionally reports the bound
    address through ``ready`` (any object with a
    ``set_result``-compatible ``callback(host, port)`` signature is
    overkill -- a plain callable is called as ``ready(host, port)``),
    then parks until cancellation. Teardown closes the endpoint, the
    manager, and the persistent pool deterministically.
    """
    manager = JobManager(
        cache=ResultCache(cache_path),
        workers=workers,
        batch=batch,
        queue_size=queue_size,
    )
    server = ServiceServer(manager, host=host, port=port)
    await server.start()
    if ready is not None:
        ready(server.host, server.port)
    waiter = shutdown if shutdown is not None else asyncio.Event()
    try:
        await waiter.wait()
    finally:
        await server.close()


class BackgroundServer:
    """A daemon on its own thread + event loop (tests, benches, CLIs).

    Context-manager surface: entering starts the thread, runs
    :func:`serve` on a private loop, and blocks until the port is
    bound; exiting requests shutdown and joins. The persistent pool is
    closed by the daemon's teardown path, so a ``with`` block leaves
    no worker processes behind.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_path: str | None = None,
        workers: int = 1,
        batch: int = 1,
        queue_size: int = 16,
    ) -> None:
        self.host = host
        self.port = port
        self._kwargs = {
            "cache_path": cache_path,
            "workers": workers,
            "batch": batch,
            "queue_size": queue_size,
        }
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown: asyncio.Event | None = None
        self._failure: BaseException | None = None

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            self._shutdown = asyncio.Event()

            def bound(host: str, port: int) -> None:
                self.host, self.port = host, port
                self._ready.set()

            await serve(
                host=self.host,
                port=self.port,
                ready=bound,
                shutdown=self._shutdown,
                **self._kwargs,
            )

        try:
            asyncio.run(main())
        except BaseException as exc:  # startup/teardown failures surface on join
            self._failure = exc
            self._ready.set()

    def __enter__(self) -> BackgroundServer:
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise RuntimeError("service failed to start") from self._failure
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Request shutdown and join the daemon thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and self._shutdown is not None:
            try:
                self._loop.call_soon_threadsafe(self._shutdown.set)
            except RuntimeError:
                pass  # loop already gone
        self._thread.join()
        self._thread = None
        if self._failure is not None and not isinstance(
            self._failure, (KeyboardInterrupt, SystemExit)
        ):
            raise RuntimeError("service exited abnormally") from self._failure
