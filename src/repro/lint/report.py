"""Finding reporters: human text and machine JSON.

The JSON form is the CI artifact (schema version 1, stable field
names) so external tooling can diff reports across commits; the text
form is what a developer reads in the terminal, one
``path:line:col: [rule-id] message`` per finding plus a summary line.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import LintResult

JSON_SCHEMA_VERSION = 1


def render_text(result: "LintResult") -> str:
    """One line per finding plus a trailing summary."""
    lines = [
        f"{f.path}:{f.line}:{f.col + 1}: [{f.rule_id}] {f.message}"
        for f in result.findings
    ]
    verdict = "OK" if result.ok else "FAIL"
    lines.append(
        f"repro.lint: {verdict} — {len(result.findings)} finding(s) in "
        f"{result.files_checked} file(s), {len(result.rules_run)} rule(s)"
    )
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """The machine-readable report uploaded as a CI artifact."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "ok": result.ok,
        "files_checked": result.files_checked,
        "rules_run": list(result.rules_run),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule_id,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render(result: "LintResult", fmt: str) -> str:
    if fmt == "json":
        return render_json(result)
    if fmt == "text":
        return render_text(result)
    raise ValueError(f"unknown report format {fmt!r}")
