"""Per-line suppression comments, with mandatory written reasons.

The syntax is::

    do_risky_thing()  # lint: ignore[rule-id] — why this is safe here
    # lint: ignore[rule-id, other-rule] — reason covering the next line
    do_risky_thing()

A trailing comment suppresses findings of the named rule(s) on its own
line; a comment that stands alone on a line suppresses the next line
that carries code. The em-dash separator may also be ``--`` or ``-``.

Two properties keep suppressions honest (both enforced by the engine,
reported under the meta rule ids):

- **a reason is mandatory** -- an ``ignore`` with no text after the
  separator, an unknown rule id, or a malformed bracket list is a
  ``bad-suppression`` finding, not a working suppression;
- **suppressions must pay their way** -- one that matched no finding
  on its target line is reported as ``unused-suppression``, so stale
  exceptions are deleted instead of accumulating.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

# Marker prefix, anchored at the start of the comment text so prose
# merely mentioning the syntax never parses; the bracket payload is
# parsed separately so malformed payloads can be reported precisely.
_MARKER = re.compile(r"#\s*lint\s*:\s*(.*)$")
_IGNORE = re.compile(
    r"ignore\s*\[(?P<ids>[^\]]*)\]\s*(?:(?:—|--|-)\s*(?P<reason>.*))?$"
)


@dataclass
class Suppression:
    """One parsed ``# lint: ignore[...]`` comment."""

    line: int  # line the comment sits on
    target_line: int  # line whose findings it suppresses
    rule_ids: tuple[str, ...]
    reason: str
    comment: str
    used: set = field(default_factory=set)

    def matches(self, rule_id: str, line: int) -> bool:
        return line == self.target_line and rule_id in self.rule_ids


@dataclass(frozen=True)
class SuppressionError:
    """A malformed suppression comment (becomes a bad-suppression finding)."""

    line: int
    message: str


def scan(source: str) -> tuple[list[Suppression], list[SuppressionError]]:
    """Extract all suppression comments (and the malformed ones) from
    ``source``.

    Tokenization (rather than a per-line regex) keeps ``# lint:``
    sequences inside string literals from being treated as comments.
    """
    comments: list[tuple[int, int, str]] = []  # (line, col, text)
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                comments.append((tok.start[0], tok.start[1], tok.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # The engine reports unparsable files separately; suppression
        # scanning just degrades to whatever tokenized cleanly.
        pass

    lines = source.splitlines()
    suppressions: list[Suppression] = []
    errors: list[SuppressionError] = []
    for line_no, col, text in comments:
        marker = _MARKER.match(text)
        if marker is None:
            continue
        payload = marker.group(1).strip()
        parsed = _IGNORE.match(payload)
        if parsed is None:
            errors.append(
                SuppressionError(
                    line_no,
                    "malformed lint comment: expected "
                    "'# lint: ignore[rule-id] — reason'",
                )
            )
            continue
        ids = tuple(part.strip() for part in parsed.group("ids").split(",") if part.strip())
        reason = (parsed.group("reason") or "").strip()
        if not ids:
            errors.append(
                SuppressionError(line_no, "suppression names no rule ids")
            )
            continue
        if not reason:
            errors.append(
                SuppressionError(
                    line_no,
                    f"suppression for [{', '.join(ids)}] carries no reason "
                    "(append '— why this exception is safe')",
                )
            )
            continue
        own_line = lines[line_no - 1] if line_no <= len(lines) else ""
        standalone = own_line[:col].strip() == ""
        target = _next_code_line(lines, line_no) if standalone else line_no
        suppressions.append(
            Suppression(
                line=line_no,
                target_line=target,
                rule_ids=ids,
                reason=reason,
                comment=text,
            )
        )
    return suppressions, errors


def _next_code_line(lines: list[str], comment_line: int) -> int:
    """First line after ``comment_line`` that carries code (not blank,
    not another comment); falls back to the comment's own line."""
    for offset in range(comment_line, len(lines)):
        stripped = lines[offset].strip()
        if stripped and not stripped.startswith("#"):
            return offset + 1
    return comment_line
