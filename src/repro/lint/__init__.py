"""``repro.lint``: static enforcement of the repo's runtime contracts.

The differential harness proves, *dynamically*, that five executors
stay bit-identical; this package enforces, *statically*, the
invariants that equality rides on -- seeded randomness only, frozen
hash-consed topologies, sealed fault-plan memos, a downward-only
layer DAG, optional numpy confined to the batch kernel, and picklable
worker functions. Pure stdlib ``ast``; no third-party dependencies.

Usage::

    python -m repro.lint [--format json] [--out FILE] [paths...]

Library surface: :func:`run_lint` over paths, :func:`lint_source` over
one source blob (what the fixture-corpus tests drive), the rule
:mod:`registry <repro.lint.registry>`, and :class:`LintConfig` -- the
single reviewable statement of every contract the rules pin.

Deliberate exceptions are suppressed inline, never silently::

    self._hash = cached  # lint: ignore[topology-mutation] — lazy cache ...

A suppression without a written reason is itself a finding
(``bad-suppression``), and one that stops matching anything is too
(``unused-suppression``); see docs/static-analysis.md.
"""

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.engine import FileContext, Finding, LintResult, lint_source, run_lint
from repro.lint.registry import Rule, all_rules, known_ids
from repro.lint.report import render_json, render_text

__all__ = [
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "all_rules",
    "known_ids",
    "lint_source",
    "render_json",
    "render_text",
    "run_lint",
]
