"""The linted contracts, as data: layers, hot paths, frozen types.

Rules are generic mechanisms (iterate-over-set detection, import-DAG
checking, attribute-mutation tracking); this module pins them to the
*repo's* actual contracts. Everything a rule needs to know about this
codebase -- the layer DAG, which modules are deterministic, where
numpy may appear, which classes are frozen and which of their methods
legitimately write slots -- lives in one :class:`LintConfig` value, so
the contracts are reviewable in a single place and tests can run rules
against synthetic configs.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class LintConfig:
    """Everything the built-in rules know about the codebase."""

    # -- layering ---------------------------------------------------------
    # Bottom-up layer DAG: a module may import its own layer and any
    # layer *below* it, never above. Matching is by longest dotted
    # prefix, so the "model" carve-out (the message/state vocabulary in
    # repro.sim that core/faults/adversary legitimately speak) wins
    # over the broader "sim" entry. The package root is exact-match
    # only: a brand-new repro.* module that matches no entry is itself
    # a layering finding, which keeps the DAG total as the tree grows.
    layers: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("model", ("repro.sim.messages", "repro.sim.node", "repro.sim.rng")),
        # The spec vocabulary and registry sit low on purpose: they
        # depend on nothing but the standard library, so any layer may
        # name (register into) them without inverting the DAG. The
        # resolution layer -- which imports the live trial machinery --
        # is the separate "scenario" entry near the top.
        ("spec", ("repro.scenario.spec", "repro.scenario.registry")),
        ("core", ("repro.core",)),
        ("net", ("repro.net",)),
        ("faults", ("repro.faults",)),
        ("adversary", ("repro.adversary",)),
        ("sim", ("repro.sim",)),
        ("analysis", ("repro.analysis",)),
        ("obs", ("repro.obs",)),
        ("mc", ("repro.mc",)),
        ("workloads", ("repro.workloads", "repro.families")),
        ("scenario", ("repro.scenario",)),
        # The service daemon drives executions only through resolution
        # and dispatch, and the bench layer's service smoke drives the
        # daemon -- so service sits above scenario and below bench.
        ("service", ("repro.service",)),
        ("bench", ("repro.bench",)),
        ("top", ("repro.cli", "repro.lint", "repro.__main__", "repro")),
    )
    root_package: str = "repro"

    # -- determinism ------------------------------------------------------
    # Modules whose execution feeds state_key equality across the five
    # executors: set-iteration order, wall clocks, process-local ids
    # and ambient randomness are all hazards here. bench/ and cli/ sit
    # outside (timing loops are their job).
    deterministic_modules: tuple[str, ...] = (
        "repro.core",
        "repro.net",
        "repro.faults",
        "repro.adversary",
        "repro.sim",
        "repro.obs",
        "repro.mc",
        "repro.workloads",
        "repro.families",
        "repro.scenario",
        # Cached service payloads must be byte-identical to direct
        # resolve().run() results, so the daemon is clock- and
        # environment-free too (latency timing lives in repro.bench).
        "repro.service",
    )

    # -- optional numpy ---------------------------------------------------
    # numpy is an optional extra: only the batch kernel and the
    # shared-memory arena layer may import it, and only behind the
    # documented try/except ImportError guard so the pure-Python
    # fallback keeps the package importable without it.
    numpy_modules: tuple[str, ...] = ("repro.sim.batch", "repro.sim.arena")

    # -- engine hot path --------------------------------------------------
    # The round engine and the batch kernels must stay free of the
    # observability/persistence/reporting planes (the extension->core
    # dependency direction): an observer bus or trace spill plugs in
    # from above, never the other way around.
    hot_modules: tuple[str, ...] = ("repro.sim.engine", "repro.sim.batch")
    hot_forbidden: tuple[str, ...] = (
        "repro.sim.persistence",
        "repro.analysis",
        "repro.obs",
        "repro.bench",
        "repro.mc",
        "repro.cli",
        "repro.lint",
        "repro.workloads",
    )

    # -- read-only observability ------------------------------------------
    # Observers watch executions, never steer them: code under the obs
    # package may read any simulation object it is handed but must not
    # write attributes on it, mutate its containers, or call APIs that
    # advance/mutate the simulation. The one sanctioned write is the
    # registration seam itself (appending to an engine's observer
    # list).
    obs_modules: tuple[str, ...] = ("repro.obs",)
    obs_mutating_methods: tuple[str, ...] = (
        "run",
        "run_round",
        "record",
        "setup",
        "set_routing_plan",
        "observe_states",
        "on_round",
        "choose",
    )
    obs_allowed_calls: tuple[str, ...] = ("observers.append",)

    # -- frozen Topology --------------------------------------------------
    # Topology instances are interned and shared across executions;
    # the only sanctioned writes are construction-time slot fills and
    # the documented set_routing_plan one-slot cache hook. The lazy
    # derived-view caches inside the class carry inline suppressions
    # instead of blanket method exemptions, so each one states why it
    # is safe.
    topology_module: str = "repro.net.topology"
    topology_class: str = "Topology"
    topology_init_methods: tuple[str, ...] = (
        "__init__",
        "__new__",
        "_lookup",
        "from_receiver_lists",
        "_build_rows",
        "set_routing_plan",
    )
    # Factory callables whose results rules treat as Topology values
    # when tracking mutation outside the defining module.
    topology_factories: tuple[str, ...] = (
        "Topology",
        "Topology.complete",
        "Topology.empty",
        "Topology.from_sorted_edges",
        "Topology.from_receiver_lists",
        "rotate_topology",
        "mobile_topology",
    )

    # -- FaultPlan memo fields --------------------------------------------
    # FaultPlan memoizes live profiles / crash metadata under the
    # documented immutable-after-construction contract; nothing
    # outside faults/base.py may write or clear those tables (a stale
    # or poisoned memo silently desynchronizes the executors).
    plan_module: str = "repro.faults.base"
    plan_class: str = "FaultPlan"
    plan_memo_fields: tuple[str, ...] = (
        "_crash_order",
        "_fault_free",
        "_non_byzantine",
        "_live_cache",
        "_round_cache",
        "_mask_cache",
    )
    plan_public_fields: tuple[str, ...] = ("crashes", "byzantine", "n")

    # -- seeded randomness ------------------------------------------------
    # The one module that owns the root-seed discipline; everything
    # else receives an explicitly seeded random.Random.
    rng_module: str = "repro.sim.rng"

    # -- worker contracts --------------------------------------------------
    # Keyword names that mark a call as fanning work over processes;
    # function-valued arguments in such calls must be module-level.
    # ``pool_keywords`` mark the same fan-out surface through the
    # persistent-pool entry points (``pool="persist"`` / ``"fresh"``):
    # a pool keyword implies process dispatch unless an explicit
    # serial ``workers`` literal on the same call rules it out.
    worker_keywords: tuple[str, ...] = ("workers",)
    pool_keywords: tuple[str, ...] = ("pool",)
    batch_fn_attr: str = "batch_fn"

    # -- shared-memory arenas ----------------------------------------------
    # Tables served by the arena layer are read-only by contract:
    # warm pool workers hand out zero-copy views into shared segments,
    # so a write through one would corrupt every other worker's (and
    # the parent's) view of the graph. Names bound to these factories
    # must never be written through -- kernels copy first.
    arena_module: str = "repro.sim.arena"
    arena_factories: tuple[str, ...] = ("delivered_table",)
    arena_mutating_methods: tuple[str, ...] = (
        "fill",
        "sort",
        "partition",
        "put",
        "itemset",
        "setflags",
        "resize",
        "byteswap",
    )

    # -- scenario registry -------------------------------------------------
    # Registration into the scenario registry is an import-time side
    # effect of the module that owns the component: module level (so
    # the same spec resolves identically in every process -- a
    # registration buried in a function runs who-knows-when, or twice),
    # with literal names and versions (so ``grep register_algorithm``
    # and the registry's duplicate check both see the truth). The
    # registry module itself (which defines the decorators) is exempt.
    registry_module: str = "repro.scenario.registry"
    registration_functions: tuple[str, ...] = (
        "register_algorithm",
        "register_network",
        "register_adversary",
        "register_faults",
        "declare_network",
        "declare_adversary",
        "declare_faults",
    )

    # -- read-only service --------------------------------------------------
    # The consensus-as-a-service daemon is an orchestration shell, not
    # a fifth executor: it may drive work only through the resolution
    # seam (repro.scenario) and the dispatch seam (repro.sim.parallel),
    # never by importing engine, core, adversary or fault machinery
    # directly -- otherwise cached service results could drift from
    # what resolve(spec).run() produces.
    service_modules: tuple[str, ...] = ("repro.service",)
    service_allowed_imports: tuple[str, ...] = (
        "repro.scenario",
        "repro.sim.parallel",
        "repro.service",
    )

    # Free-form extras for tests / future rules.
    extras: dict = field(default_factory=dict)


DEFAULT_CONFIG = LintConfig()
