"""``python -m repro.lint``: the static invariant checker's CLI.

Exit codes follow the usual lint convention: ``0`` clean, ``1`` any
finding, ``2`` usage error (unknown rule id, missing path). CI runs::

    python -m repro.lint --format json --out lint-report.json src/

which prints the text report for the build log *and* writes the JSON
artifact in one pass.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import run_lint
from repro.lint.registry import all_rules
from repro.lint.report import render, render_text


def _split_ids(values: list[str]) -> list[str]:
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant checker: determinism, immutability "
        "and layering contracts, statically enforced.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format for stdout (and --out, when given)",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="also write the report to FILE; stdout then always shows the "
        "text form",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="RULES",
        help="run only these rule ids (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="RULES",
        help="skip these rule ids (comma-separated, repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for entry in all_rules():
            kind = " (meta)" if entry.is_meta else ""
            print(f"{entry.id}{kind}: {entry.summary}")
        return 0

    paths = [Path(p) for p in args.paths]
    for path in paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=sys.stderr)
            return 2

    try:
        result = run_lint(
            paths,
            select=_split_ids(args.select) or None,
            ignore=_split_ids(args.ignore) or None,
        )
    except KeyError as exc:
        print(f"error: unknown rule id {exc.args[0]!r}", file=sys.stderr)
        return 2

    if args.out:
        Path(args.out).write_text(render(result, args.format) + "\n", encoding="utf-8")
        print(render_text(result))
    else:
        print(render(result, args.format))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
