"""The rule registry: every invariant the checker knows, by id.

A rule is a plain function ``(FileContext) -> Iterable[Finding]``
registered under a stable kebab-case id via the :func:`rule`
decorator. The registry is the single source of truth consulted by
the engine (which rules to run), the CLI (``--list-rules``,
``--select``/``--ignore`` validation), the suppression parser (which
ids a ``# lint: ignore[...]`` comment may name) and the docs checker
(``tools/check_docs.py`` verifies ``docs/static-analysis.md`` and this
registry agree, both directions).

Two *meta* rules -- ``bad-suppression`` and ``unused-suppression`` --
are produced by the engine itself while honoring suppression comments,
not by a registered checker function; they are registered here with
``checker=None`` so they still have documented ids, appear in
``--list-rules`` and participate in the docs-parity check.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.engine import FileContext, Finding


@dataclass(frozen=True)
class Rule:
    """One registered invariant check.

    ``id`` is the stable kebab-case name used in reports, suppression
    comments and the docs; ``summary`` is the one-line description
    shown by ``--list-rules``; ``invariant`` names the repo contract
    the rule protects (the docs expand on it).
    """

    id: str
    summary: str
    invariant: str
    checker: Callable[["FileContext"], Iterable["Finding"]] | None

    @property
    def is_meta(self) -> bool:
        """Engine-produced rules (suppression hygiene) have no checker."""
        return self.checker is None


_REGISTRY: dict[str, Rule] = {}


def rule(rule_id: str, *, summary: str, invariant: str) -> Callable:
    """Register the decorated function as the checker for ``rule_id``."""

    def decorate(fn: Callable[["FileContext"], Iterable["Finding"]]) -> Callable:
        register(Rule(rule_id, summary, invariant, fn))
        return fn

    return decorate


def register(entry: Rule) -> None:
    """Add ``entry`` to the registry (ids are unique, kebab-case)."""
    if entry.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {entry.id!r}")
    if not entry.id or not all(part.isalnum() for part in entry.id.split("-")):
        raise ValueError(f"rule id {entry.id!r} is not kebab-case")
    _REGISTRY[entry.id] = entry


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id (loads the built-in set)."""
    _load_builtin()
    return tuple(_REGISTRY[key] for key in sorted(_REGISTRY))


def get(rule_id: str) -> Rule:
    """Look up one rule by id (:exc:`KeyError` on unknown ids)."""
    _load_builtin()
    return _REGISTRY[rule_id]


def known_ids() -> frozenset[str]:
    """The set of valid rule ids (suppression comments validate here)."""
    _load_builtin()
    return frozenset(_REGISTRY)


def _load_builtin() -> None:
    """Import the built-in rule modules exactly once.

    Importing :mod:`repro.lint.rules` triggers the ``@rule``
    decorators; the meta rules are registered here because no checker
    module owns them.
    """
    if "bad-suppression" in _REGISTRY:
        return
    register(
        Rule(
            "bad-suppression",
            summary="suppression comment is malformed, names an unknown rule, "
            "or carries no reason",
            invariant="every suppression documents why the exception is safe",
            checker=None,
        )
    )
    register(
        Rule(
            "unused-suppression",
            summary="suppression comment matched no finding on its target line",
            invariant="suppressions cannot outlive the exception they justified",
            checker=None,
        )
    )
    register(
        Rule(
            "syntax-error",
            summary="file does not parse; no other rule can run on it",
            invariant="every linted file is valid Python",
            checker=None,
        )
    )
    import repro.lint.rules  # noqa: F401  (registers via decorators)
