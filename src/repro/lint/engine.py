"""The lint engine: discover files, parse once, run rules, apply
suppressions.

The engine owns everything rule-agnostic: mapping file paths to dotted
module names (so rules can reason in import-space), parsing each file
to one shared :class:`ast.Module`, dispatching the registered rules,
and folding the suppression layer over the raw findings -- including
the two meta findings (``bad-suppression``, ``unused-suppression``)
that keep the suppression comments themselves honest.

Rules are pure functions from :class:`FileContext` to findings; they
never see the filesystem or each other.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.config import DEFAULT_CONFIG, LintConfig
from repro.lint.registry import Rule, all_rules, known_ids
from repro.lint.suppress import scan


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule_id)


@dataclass
class FileContext:
    """Everything a rule may look at for one file."""

    path: str
    module: str  # dotted module name, e.g. "repro.sim.engine"
    tree: ast.Module
    source: str
    config: LintConfig
    lines: list[str] = field(default_factory=list)

    def finding(self, node: ast.AST | int, rule_id: str, message: str) -> Finding:
        """Build a finding anchored at ``node`` (or a bare line number)."""
        if isinstance(node, int):
            line, col = node, 0
        else:
            line = getattr(node, "lineno", 1)
            col = getattr(node, "col_offset", 0)
        return Finding(self.path, line, col, rule_id, message)

    def in_module(self, prefixes: tuple[str, ...] | list[str]) -> bool:
        """Whether this file's module falls under any dotted prefix."""
        return any(module_matches(self.module, prefix) for prefix in prefixes)


def module_matches(module: str, prefix: str) -> bool:
    """Dotted-prefix match: ``repro.sim.engine`` matches ``repro.sim``."""
    return module == prefix or module.startswith(prefix + ".")


def module_name_for(path: Path) -> str:
    """Derive the dotted module name from a file's package position.

    Walks upward while ``__init__.py`` marks the parent as a package,
    exactly like the import system would; a file outside any package
    is its own single-segment module. ``__init__.py`` itself names the
    package.
    """
    path = path.resolve()
    parts: list[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    if not parts:
        parts.append(path.stem)
    return ".".join(reversed(parts))


@dataclass
class LintResult:
    """Outcome of one engine run."""

    findings: list[Finding]
    files_checked: int
    rules_run: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.findings


def discover(paths: list[Path]) -> list[Path]:
    """Expand files/directories into the sorted ``.py`` file set."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py":
            files.add(path)
        else:
            raise FileNotFoundError(f"not a python file or directory: {path}")
    return sorted(files)


def select_rules(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> tuple[list[Rule], bool]:
    """Resolve ``--select``/``--ignore`` to concrete checker rules.

    Returns the rules plus whether the set is *restricted* (a partial
    run must not report unused-suppression: a comment aimed at a rule
    that was not run is not stale).
    """
    valid = known_ids()
    for rule_id in (select or []) + (ignore or []):
        if rule_id not in valid:
            raise KeyError(rule_id)
    chosen = []
    for entry in all_rules():
        if entry.is_meta:
            continue
        if select and entry.id not in select:
            continue
        if ignore and entry.id in ignore:
            continue
        chosen.append(entry)
    restricted = bool(select) or bool(ignore)
    return chosen, restricted


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    module: str | None = None,
    config: LintConfig = DEFAULT_CONFIG,
    rules: list[Rule] | None = None,
    restricted: bool | None = None,
) -> list[Finding]:
    """Lint one in-memory source blob (the unit the tests drive).

    A corpus override comment (``# lint-corpus-module: repro.x.y``)
    always wins, so fixture snippets lint as the module they claim to
    be even through ``run_lint``; otherwise ``module`` defaults to the
    file stem and real runs pass the package-derived name.
    """
    if rules is None:
        rules, default_restricted = select_rules()
        restricted = default_restricted if restricted is None else restricted
    restricted = bool(restricted)
    module = _corpus_module(source) or module or Path(path).stem

    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        line = exc.lineno or 1
        col = max((exc.offset or 1) - 1, 0)
        return [Finding(path, line, col, "syntax-error", f"file does not parse: {exc.msg}")]

    ctx = FileContext(
        path=path,
        module=module,
        tree=tree,
        source=source,
        config=config,
        lines=source.splitlines(),
    )

    raw: list[Finding] = []
    for entry in rules:
        raw.extend(entry.checker(ctx))
    # One finding per (location, rule): a rule revisiting a node (e.g.
    # via overlapping scope views) must not double-report.
    raw = sorted(set(raw))

    suppressions, errors = scan(source)
    valid = known_ids()
    findings: list[Finding] = []
    for error in errors:
        findings.append(Finding(path, error.line, 0, "bad-suppression", error.message))
    for supp in suppressions:
        for rule_id in supp.rule_ids:
            if rule_id not in valid:
                findings.append(
                    Finding(
                        path,
                        supp.line,
                        0,
                        "bad-suppression",
                        f"unknown rule id {rule_id!r} in suppression",
                    )
                )

    for item in raw:
        suppressed = False
        for supp in suppressions:
            if supp.matches(item.rule_id, item.line):
                supp.used.add(item.rule_id)
                suppressed = True
        if not suppressed:
            findings.append(item)

    if not restricted:
        for supp in suppressions:
            unused = [rid for rid in supp.rule_ids if rid in valid and rid not in supp.used]
            if unused:
                findings.append(
                    Finding(
                        path,
                        supp.line,
                        0,
                        "unused-suppression",
                        f"suppression for [{', '.join(unused)}] matched no finding "
                        f"on line {supp.target_line}; delete it or fix the id",
                    )
                )
    return sorted(findings)


def _corpus_module(source: str) -> str | None:
    """Honor a ``# lint-corpus-module:`` override in the first lines."""
    for line in source.splitlines()[:5]:
        stripped = line.strip()
        if stripped.startswith("# lint-corpus-module:"):
            return stripped.split(":", 1)[1].strip()
    return None


def run_lint(
    paths: list[Path],
    *,
    config: LintConfig = DEFAULT_CONFIG,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths`` with the chosen rules."""
    rules, restricted = select_rules(select, ignore)
    files = discover(paths)
    findings: list[Finding] = []
    for file_path in files:
        source = file_path.read_text(encoding="utf-8")
        findings.extend(
            lint_source(
                source,
                path=str(file_path),
                module=module_name_for(file_path),
                config=config,
                rules=rules,
                restricted=restricted,
            )
        )
    return LintResult(
        findings=sorted(findings),
        files_checked=len(files),
        rules_run=tuple(entry.id for entry in rules),
    )
