"""Scenario-registry registration discipline.

The :mod:`repro.scenario` registry promises deterministic resolution:
the same spec resolves to the same objects in every process, because
registration is an import-time side effect of the module that owns
the component. Two things break that promise silently:

- a registration call buried inside a function -- it runs late, twice
  (tripping the duplicate check), or never, depending on who calls
  what first, so a spec that resolves in one process may not in
  another;
- a computed name or version -- ``grep register_algorithm`` and the
  registry's duplicate detection both stop telling the truth, and the
  spec vocabulary becomes a function of runtime state.

The ``registry-registration`` rule pins both: every call to one of the
registration entry points must sit at module level with a literal
string name (and, when given, a literal integer version). The registry
module itself -- which defines the entry points -- is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import dotted, iter_scopes, scope_nodes


def _registration_name(node: ast.AST, functions: tuple[str, ...]) -> str | None:
    """The entry-point name when ``node`` is a registration call."""
    if not isinstance(node, ast.Call):
        return None
    name = dotted(node.func)
    if name is None:
        return None
    base = name.rsplit(".", 1)[-1]
    return base if base in functions else None


def _literal(expr: ast.expr, kind: type) -> bool:
    return isinstance(expr, ast.Constant) and type(expr.value) is kind


@rule(
    "registry-registration",
    summary="late or computed registration into the scenario registry",
    invariant="scenario-registry registrations are import-time, "
    "module-level side effects of the owning module, with literal "
    "names and versions",
)
def check_registry_registration(ctx) -> Iterator:
    config = ctx.config
    functions = tuple(getattr(config, "registration_functions", ()))
    if not functions or ctx.module == getattr(config, "registry_module", None):
        return
    for scope in iter_scopes(ctx.tree):
        module_level = isinstance(scope, ast.Module)
        for node in scope_nodes(scope):
            fn = _registration_name(node, functions)
            if fn is None:
                continue
            if not module_level:
                yield ctx.finding(
                    node,
                    "registry-registration",
                    f"{fn} called inside a function: registration must be "
                    "an import-time, module-level side effect of the owning "
                    "module (a late registration runs twice or never, and "
                    "specs stop resolving deterministically)",
                )
                continue
            name_arg = node.args[0] if node.args else next(
                (kw.value for kw in node.keywords if kw.arg == "name"), None
            )
            if name_arg is None or not _literal(name_arg, str):
                yield ctx.finding(
                    node,
                    "registry-registration",
                    f"{fn} needs a literal string name (a computed name "
                    "hides the registered vocabulary from grep and from "
                    "the registry's duplicate check)",
                )
            version_kw = next(
                (kw for kw in node.keywords if kw.arg == "version"), None
            )
            if version_kw is not None and not _literal(version_kw.value, int):
                yield ctx.finding(
                    version_kw.value,
                    "registry-registration",
                    f"{fn} needs a literal integer version (versions are "
                    "the spec vocabulary's compatibility contract; computing "
                    "one makes the same spec mean different things)",
                )
