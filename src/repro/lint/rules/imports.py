"""Import rules: the layer DAG, optional numpy, and the hot path.

The dependency direction of the stack is a contract, not an accident:
``model -> spec -> core -> net -> faults -> adversary -> sim ->
analysis -> mc -> workloads -> scenario -> service -> bench -> top``
(see ``docs/static-analysis.md``).
Extensions depend on the core, never the reverse -- the same
discipline the Sawtooth/SentientOS extension contracts spell out --
and numpy stays an optional extra confined to the batch kernel.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import collect_imports


def _layer_of(module: str, config) -> tuple[int, str] | None:
    """(index, name) of the layer owning ``module``; longest dotted
    prefix wins, and the bare package root only matches itself."""
    best: tuple[int, int, str] | None = None  # (prefix_len, idx, name)
    for idx, (name, prefixes) in enumerate(config.layers):
        for prefix in prefixes:
            if prefix == config.root_package:
                if module != prefix:
                    continue
            elif module != prefix and not module.startswith(prefix + "."):
                continue
            if best is None or len(prefix) > best[0]:
                best = (len(prefix), idx, name)
    if best is None:
        return None
    return best[1], best[2]


@rule(
    "layering",
    summary="import against the declared layer DAG (or from an unassigned module)",
    invariant="dependencies flow strictly downward through "
    "model/spec/core/net/faults/adversary/sim/analysis/mc/workloads/"
    "scenario/service/bench/top",
)
def check_layering(ctx) -> Iterator:
    config = ctx.config
    root = config.root_package
    if ctx.module != root and not ctx.module.startswith(root + "."):
        return
    own = _layer_of(ctx.module, config)
    if own is None:
        yield ctx.finding(
            1,
            "layering",
            f"module {ctx.module} is not assigned to any layer; add it to "
            "the layer DAG in repro/lint/config.py",
        )
        return
    own_idx, own_name = own
    for record in collect_imports(ctx.tree, ctx.module):
        if record.type_checking:
            continue  # typing-only imports carry no runtime dependency
        target = record.target
        if target != root and not target.startswith(root + "."):
            continue
        layer = _layer_of(target, config)
        if layer is None:
            yield ctx.finding(
                record.node,
                "layering",
                f"imported module {target} is not assigned to any layer",
            )
            continue
        target_idx, target_name = layer
        if target_idx > own_idx:
            yield ctx.finding(
                record.node,
                "layering",
                f"{ctx.module} (layer '{own_name}') imports {target} "
                f"(layer '{target_name}'): dependencies must flow downward",
            )


@rule(
    "numpy-guard",
    summary="numpy imported outside the guarded batch-kernel path",
    invariant="numpy stays an optional extra: only the batch kernel imports "
    "it, behind try/except ImportError, so the package imports without it",
)
def check_numpy_guard(ctx) -> Iterator:
    for record in collect_imports(ctx.tree, ctx.module):
        head = record.target.split(".", 1)[0]
        if head != "numpy" or record.type_checking:
            continue
        if not ctx.in_module(ctx.config.numpy_modules):
            yield ctx.finding(
                record.node,
                "numpy-guard",
                f"numpy may only be imported in "
                f"{', '.join(ctx.config.numpy_modules)}; route vectorized "
                "work through the batch kernel's backend switch",
            )
        elif not record.guarded and not record.in_function:
            yield ctx.finding(
                record.node,
                "numpy-guard",
                "module-level numpy import must sit in try/except "
                "ImportError so the pure-Python fallback stays importable",
            )


@rule(
    "hot-import",
    summary="engine hot path imports an observability/reporting module",
    invariant="the round engine and batch kernels never depend on "
    "persistence, analysis, bench, mc or CLI layers (extension -> core only)",
)
def check_hot_import(ctx) -> Iterator:
    config = ctx.config
    if not ctx.in_module(config.hot_modules):
        return
    for record in collect_imports(ctx.tree, ctx.module):
        if record.type_checking:
            continue
        for banned in config.hot_forbidden:
            if record.target == banned or record.target.startswith(banned + "."):
                yield ctx.finding(
                    record.node,
                    "hot-import",
                    f"hot-path module {ctx.module} imports {record.target}; "
                    "observers/persistence plug in from above, the engine "
                    "never reaches up",
                )
                break
