"""Determinism rules: what bit-identical ``state_key`` equality rides on.

The differential harness pins five executors (serial sweep, legacy,
traced, batch x2, process pool) to identical states. That only holds
if the layers they share never consult a source of nondeterminism:
set iteration order, ambient module-level RNG state, process-local
object identity, wall clocks or the environment. These rules make
each hazard a finding at the line that introduces it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import dotted, iter_scopes, scope_nodes

_SET_METHODS = ("union", "intersection", "difference", "symmetric_difference")

# time.* attributes that read a clock.
_CLOCK_ATTRS = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _is_unordered(expr: ast.expr, env: set[str]) -> bool:
    """Whether ``expr`` evaluates to a set-like value with arbitrary
    iteration order (syntactic inference plus same-scope name tracking)."""
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Name):
        return expr.id in env
    if isinstance(expr, ast.BinOp) and isinstance(
        expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_unordered(expr.left, env) or _is_unordered(expr.right, env)
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return _is_unordered(func.value, env)
    return False


def _scope_env(scope: ast.AST) -> set[str]:
    """Names assigned a set-like value anywhere in ``scope``.

    Any ordered reassignment removes the name again, so a variable
    that is *sometimes* a set stays flagged only while no ordered
    binding exists -- a deliberate lean toward reporting.
    """
    env: set[str] = set()
    for node in scope_nodes(scope):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if _is_unordered(node.value, env):
                    env.add(target.id)
                else:
                    env.discard(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            note = ast.unparse(node.annotation)
            if note.startswith(("set", "frozenset", "Set", "FrozenSet", "AbstractSet")):
                env.add(node.target.id)
    return env


@rule(
    "set-iteration",
    summary="iteration over a set/frozenset value whose order is arbitrary",
    invariant="ordering-sensitive layers never iterate unordered collections",
)
def check_set_iteration(ctx) -> Iterator:
    if not ctx.in_module(ctx.config.deterministic_modules):
        return
    for scope in iter_scopes(ctx.tree):
        env = _scope_env(scope)
        for node in scope_nodes(scope):
            iters: list[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("list", "tuple")
                and len(node.args) == 1
                and not node.keywords
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if _is_unordered(candidate, env):
                    yield ctx.finding(
                        candidate,
                        "set-iteration",
                        "iteration order of a set/frozenset is arbitrary; "
                        "wrap it in sorted(...) so downstream state is "
                        "order-independent",
                    )


@rule(
    "unseeded-random",
    summary="module-level random.* state used outside the seeded-RNG module",
    invariant="all randomness flows from an explicitly seeded random.Random "
    "derived via repro.sim.rng",
)
def check_unseeded_random(ctx) -> Iterator:
    if ctx.module == ctx.config.rng_module:
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            bad = [a.name for a in node.names if a.name != "Random"]
            if bad:
                yield ctx.finding(
                    node,
                    "unseeded-random",
                    f"importing {', '.join(bad)} from random pulls in "
                    "module-level RNG state; accept a seeded random.Random "
                    "(repro.sim.rng.child_rng) instead",
                )
        elif isinstance(node, ast.Call):
            name = dotted(node.func)
            if name == "random.Random" and not node.args and not node.keywords:
                yield ctx.finding(
                    node,
                    "unseeded-random",
                    "random.Random() with no seed draws from OS entropy; "
                    "pass an explicit seed (repro.sim.rng.derive_seed)",
                )
            elif (
                name is not None
                and name.startswith("random.")
                and name not in ("random.Random", "random.SystemRandom")
            ):
                yield ctx.finding(
                    node,
                    "unseeded-random",
                    f"{name}() mutates/reads the shared module-level RNG; "
                    "draw from an explicitly seeded random.Random instead",
                )
            elif name == "random.SystemRandom":
                yield ctx.finding(
                    node,
                    "unseeded-random",
                    "random.SystemRandom is OS entropy and can never be "
                    "seeded; use a derived random.Random",
                )


def _identity_key(expr: ast.expr) -> str | None:
    """'id' / 'hash' when ``expr`` is that builtin (possibly inside a
    one-expression lambda)."""
    if isinstance(expr, ast.Name) and expr.id in ("id", "hash"):
        return expr.id
    if isinstance(expr, ast.Lambda):
        for inner in ast.walk(expr.body):
            if (
                isinstance(inner, ast.Call)
                and isinstance(inner.func, ast.Name)
                and inner.func.id in ("id", "hash")
            ):
                return inner.func.id
    return None


@rule(
    "id-ordering",
    summary="id()/hash() used to order values",
    invariant="orderings are derived from values, never from "
    "process-local object identity or per-run hashes",
)
def check_id_ordering(ctx) -> Iterator:
    if not ctx.in_module(ctx.config.deterministic_modules):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            for kw in node.keywords:
                if kw.arg == "key":
                    which = _identity_key(kw.value)
                    if which is not None:
                        yield ctx.finding(
                            kw.value,
                            "id-ordering",
                            f"sort key built on {which}() is process-local; "
                            "two runs (or two workers) order differently",
                        )
        elif isinstance(node, ast.Compare) and any(
            isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE)) for op in node.ops
        ):
            for operand in [node.left, *node.comparators]:
                if (
                    isinstance(operand, ast.Call)
                    and isinstance(operand.func, ast.Name)
                    and operand.func.id in ("id", "hash")
                ):
                    yield ctx.finding(
                        operand,
                        "id-ordering",
                        f"comparing {operand.func.id}() values orders by "
                        "process-local identity; compare the values "
                        "themselves",
                    )


@rule(
    "time-env",
    summary="wall clock, environment or OS entropy read in a deterministic layer",
    invariant="simulation state depends only on (topology, config, seed), "
    "never on when/where it runs",
)
def check_time_env(ctx) -> Iterator:
    if not ctx.in_module(ctx.config.deterministic_modules):
        return
    for node in ast.walk(ctx.tree):
        name = dotted(node) if isinstance(node, ast.Attribute) else None
        if name is None:
            continue
        head, _, attr = name.rpartition(".")
        offending = None
        if head == "time" and attr in _CLOCK_ATTRS:
            offending = f"{name}() reads a clock"
        elif attr in ("now", "utcnow", "today") and head.rsplit(".", 1)[-1] in (
            "datetime",
            "date",
        ):
            offending = f"{name}() reads the wall clock"
        elif name in ("os.environ", "os.getenv", "os.urandom"):
            offending = f"{name} depends on the process environment"
        elif head == "uuid" and attr in ("uuid1", "uuid4"):
            offending = f"{name}() is time/entropy derived"
        elif head == "secrets" or name.startswith("secrets."):
            offending = f"{name} is OS entropy"
        if offending:
            yield ctx.finding(
                node,
                "time-env",
                f"{offending}; deterministic layers must depend only on "
                "(inputs, topology, seed)",
            )
