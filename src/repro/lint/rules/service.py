"""Read-only service: the daemon orchestrates, it never simulates.

``repro.service`` promises (docs/service.md) that a cached service
payload is byte-identical to ``resolve(spec).run(seed)`` executed
directly -- the daemon adds scheduling, caching and transport, never
behaviour. The enforceable core of that promise is an import
allowlist: service modules may reach the simulation stack only through
the resolution seam (``repro.scenario``) and the dispatch seam
(``repro.sim.parallel``), plus their own package. A service module
importing engine, core, adversary or fault machinery directly would
open a second execution path whose results the conformance suite never
checks against the canonical one.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import collect_imports


def _allowed(target: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        target == prefix or target.startswith(prefix + ".") for prefix in prefixes
    )


@rule(
    "service-readonly",
    summary="service module imports simulation machinery outside the "
    "resolution/dispatch seams",
    invariant="the service daemon drives executions only through "
    "repro.scenario resolution and repro.sim.parallel dispatch, so "
    "cached payloads stay byte-identical to direct resolve().run() results",
)
def check_service_readonly(ctx) -> Iterator:
    config = ctx.config
    if not ctx.in_module(config.service_modules):
        return
    root = config.root_package
    allowed = tuple(config.service_allowed_imports)
    for record in collect_imports(ctx.tree, ctx.module):
        if record.type_checking:
            continue
        target = record.target
        if target != root and not target.startswith(root + "."):
            continue  # stdlib and third-party imports are the layering
            # rule's concern, not this one's
        if _allowed(target, allowed):
            continue
        yield ctx.finding(
            record.node,
            "service-readonly",
            f"service module {ctx.module} imports {target}; the service "
            f"layer may only import {', '.join(allowed)} -- drive "
            "executions through resolve() and run_trials(), never the "
            "simulation stack directly",
        )
