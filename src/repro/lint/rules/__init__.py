"""Built-in rule set: importing this package registers every rule.

Each module groups the rules protecting one family of invariants:

- :mod:`repro.lint.rules.determinism` -- bit-reproducibility hazards
  (unordered iteration, ambient randomness, process-local identity,
  wall clocks / environment);
- :mod:`repro.lint.rules.imports` -- the layer DAG, the optional-numpy
  guard and the engine hot-path import ban;
- :mod:`repro.lint.rules.mutation` -- immutability of the hash-consed
  :class:`~repro.net.topology.Topology` and the
  :class:`~repro.faults.base.FaultPlan` memo tables;
- :mod:`repro.lint.rules.obs` -- the read-only contract of the
  observability plane (observers watch, they never steer);
- :mod:`repro.lint.rules.registration` -- the import-time, literal-name
  discipline of the scenario registry;
- :mod:`repro.lint.rules.service` -- the import allowlist keeping the
  consensus-as-a-service daemon on the resolution/dispatch seams;
- :mod:`repro.lint.rules.workers` -- picklability contracts for
  functions fanned out over process pools.
"""

from repro.lint.rules import (
    determinism,
    imports,
    mutation,
    obs,
    registration,
    service,
    workers,
)

__all__ = [
    "determinism",
    "imports",
    "mutation",
    "obs",
    "registration",
    "service",
    "workers",
]
