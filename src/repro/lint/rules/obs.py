"""Read-only observability: observers watch, they never steer.

The ``repro.obs`` extension contract (docs/observability.md) promises
that attaching observers cannot change an execution -- the whole value
of the plane rests on traced/observed runs staying bit-identical to
bare ones. This rule enforces the promise at the AST level inside obs
modules: any value that *enters* an obs function from outside (a
parameter, or a local aliased from one) is treated as simulation state
and must not be written to, container-mutated, or driven through a
mutating simulation API. An observer's *own* state (``self``/``cls``
receivers, locally constructed values) is its business.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import FunctionNode, dotted, iter_scopes, scope_nodes

# Container-mutation method names (list/dict/set writers).
_CONTAINER_MUTATORS = (
    "append",
    "extend",
    "insert",
    "clear",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "add",
    "discard",
    "remove",
    "sort",
    "reverse",
)


def _root_name(expr: ast.expr) -> str | None:
    """The base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _foreign_names(scope: ast.AST) -> set[str]:
    """Names in ``scope`` holding values handed in from outside.

    Parameters (minus ``self``/``cls``) seed the set; plain
    assignments extend it through aliases (``states = snapshot.states``
    keeps pointing into the snapshot) and retract it when a name is
    rebound to a locally constructed value.
    """
    names: set[str] = set()
    if isinstance(scope, FunctionNode):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.arg not in ("self", "cls"):
                names.add(arg.arg)
    for node in scope_nodes(scope):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        root = _root_name(node.value) if node.value is not None else None
        if root is not None and root in names:
            names.add(target.id)
        else:
            names.discard(target.id)
    return names


@rule(
    "observer-readonly",
    summary="obs code writes to, mutates, or drives the simulation it watches",
    invariant="observers are strictly read-only: attaching them cannot "
    "change an execution (bit-identity of observed vs bare runs)",
)
def check_observer_readonly(ctx) -> Iterator:
    config = ctx.config
    if not ctx.in_module(config.obs_modules):
        return
    mutating_calls = frozenset(_CONTAINER_MUTATORS) | frozenset(
        config.obs_mutating_methods
    )
    allowed = tuple(config.obs_allowed_calls)

    for scope in iter_scopes(ctx.tree):
        foreign = _foreign_names(scope)
        if not foreign:
            continue
        for node in scope_nodes(scope):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call):
                callee = dotted(node.func)
                if (
                    isinstance(node.func, ast.Name)
                    and node.func.id in ("setattr", "delattr")
                    and node.args
                    and isinstance(node.args[0], ast.Name)
                    and node.args[0].id in foreign
                ):
                    yield ctx.finding(
                        node,
                        "observer-readonly",
                        f"{node.func.id}() on observed value "
                        f"{node.args[0].id!r}: observers are read-only",
                    )
                    continue
                if not isinstance(node.func, ast.Attribute):
                    continue
                root = _root_name(node.func.value)
                if root is None or root not in foreign:
                    continue
                if node.func.attr not in mutating_calls:
                    continue
                if callee is not None and any(
                    callee.endswith("." + suffix) for suffix in allowed
                ):
                    continue  # the sanctioned registration seam
                yield ctx.finding(
                    node,
                    "observer-readonly",
                    f".{node.func.attr}() on observed value {root!r}: "
                    "observers may read simulation state but never mutate "
                    "or advance it",
                )
                continue
            for target in targets:
                if not isinstance(target, (ast.Attribute, ast.Subscript)):
                    continue
                root = _root_name(target)
                if root is None or root not in foreign:
                    continue
                kind = (
                    "attribute" if isinstance(target, ast.Attribute) else "item"
                )
                yield ctx.finding(
                    target,
                    "observer-readonly",
                    f"{kind} write into observed value {root!r}: observers "
                    "are read-only; keep derived state on the observer, not "
                    "the simulation",
                )
