"""Shared AST plumbing for the built-in rules.

Nothing here is rule-specific: scope walking, import collection with
``TYPE_CHECKING`` awareness, and dotted-name rendering. Rules stay
small by leaning on these.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from dataclasses import dataclass

FunctionNode = (ast.FunctionDef, ast.AsyncFunctionDef)
ScopeNode = (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef)


def dotted(node: ast.AST) -> str | None:
    """Render ``a.b.c`` attribute/name chains; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_scopes(tree: ast.Module) -> Iterator[ast.AST]:
    """The module plus every (async) function definition, outermost
    first."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, FunctionNode):
            yield node


def scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every AST node inside ``scope``, nested function bodies excluded
    (each node exactly once: the walk prunes at inner function defs)."""
    stack: list[ast.AST] = list(reversed(list(ast.iter_child_nodes(scope))))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, FunctionNode):
            continue  # its body is the nested scope's business
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def is_type_checking_test(test: ast.expr) -> bool:
    """``if TYPE_CHECKING:`` / ``if typing.TYPE_CHECKING:`` tests."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def type_checking_nodes(tree: ast.Module) -> set[int]:
    """ids() of all nodes living under ``if TYPE_CHECKING:`` blocks."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.If) and is_type_checking_test(node.test):
            for stmt in node.body:
                guarded.add(id(stmt))
                for inner in ast.walk(stmt):
                    guarded.add(id(inner))
    return guarded


def import_guards(tree: ast.Module) -> set[int]:
    """ids() of import statements guarded by ``try: ... except
    ImportError`` (the optional-dependency idiom)."""
    guarded: set[int] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Try):
            continue
        catches_import_error = False
        for handler in node.handlers:
            names: list[str] = []
            if handler.type is None:
                catches_import_error = True
                break
            types = (
                handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
            )
            for entry in types:
                name = dotted(entry)
                if name:
                    names.append(name.rsplit(".", 1)[-1])
            if any(n in ("ImportError", "ModuleNotFoundError", "Exception") for n in names):
                catches_import_error = True
        if not catches_import_error:
            continue
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if isinstance(inner, (ast.Import, ast.ImportFrom)):
                    guarded.add(id(inner))
    return guarded


@dataclass(frozen=True)
class ImportRecord:
    """One imported dotted target, with context the rules care about."""

    node: ast.stmt
    target: str  # resolved dotted target (module[.name] for from-imports)
    type_checking: bool
    guarded: bool  # inside try/except ImportError
    in_function: bool


def collect_imports(tree: ast.Module, module: str) -> list[ImportRecord]:
    """Every import in the file, resolved to absolute dotted targets.

    Relative imports are resolved against ``module`` assuming the file
    is a plain module (not a package ``__init__``); the repo uses
    absolute imports throughout, so this is a best-effort fallback.
    """
    tc_nodes = type_checking_nodes(tree)
    guards = import_guards(tree)
    in_function: set[int] = set()
    for scope in iter_scopes(tree):
        if isinstance(scope, FunctionNode):
            for stmt in ast.walk(scope):
                if isinstance(stmt, (ast.Import, ast.ImportFrom)):
                    in_function.add(id(stmt))

    records: list[ImportRecord] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                records.append(
                    ImportRecord(
                        node,
                        alias.name,
                        id(node) in tc_nodes,
                        id(node) in guards,
                        id(node) in in_function,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                parts = module.split(".")
                base = parts[: len(parts) - node.level]
                prefix = ".".join(base + ([node.module] if node.module else []))
            else:
                prefix = node.module or ""
            for alias in node.names:
                target = f"{prefix}.{alias.name}" if prefix else alias.name
                records.append(
                    ImportRecord(
                        node,
                        target,
                        id(node) in tc_nodes,
                        id(node) in guards,
                        id(node) in in_function,
                    )
                )
    return records
