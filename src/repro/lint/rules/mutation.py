"""Immutability rules: frozen Topology, sealed FaultPlan memos.

``Topology`` instances are interned and shared across executions --
adversary memos, schedule cycles and trace dedup all rely on a graph
never changing after construction. ``FaultPlan`` memoizes live
profiles and crash metadata under an immutable-after-construction
contract. A single stray attribute write poisons every consumer, so
both contracts are enforced at the assignment site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import FunctionNode, dotted, iter_scopes, scope_nodes

_MUTATORS = ("clear", "update", "setdefault", "pop", "popitem", "add", "discard", "remove")


def _annotation_is(annotation: ast.expr | None, class_name: str) -> bool:
    if annotation is None:
        return False
    text = ast.unparse(annotation).strip("'\"")
    return text == class_name or text.endswith("." + class_name)


def _topology_names(scope: ast.AST, ctx) -> set[str]:
    """Names in ``scope`` known to hold Topology instances."""
    names: set[str] = set()
    config = ctx.config
    if isinstance(scope, FunctionNode):
        args = scope.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if _annotation_is(arg.annotation, config.topology_class):
                names.add(arg.arg)
    for node in scope_nodes(scope):
        value = None
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            if _annotation_is(node.annotation, config.topology_class):
                if isinstance(target, ast.Name):
                    names.add(target.id)
                continue
            value = node.value
        if not isinstance(target, ast.Name) or value is None:
            continue
        if isinstance(value, ast.Call):
            callee = dotted(value.func)
            if callee is not None and (
                callee in config.topology_factories
                or callee.rsplit(".", 1)[-1] in config.topology_factories
            ):
                names.add(target.id)
                continue
        names.discard(target.id)
    return names


def _is_factory_call(expr: ast.expr, ctx) -> bool:
    if not isinstance(expr, ast.Call):
        return False
    callee = dotted(expr.func)
    return callee is not None and (
        callee in ctx.config.topology_factories
        or callee.rsplit(".", 1)[-1] in ctx.config.topology_factories
    )


@rule(
    "topology-mutation",
    summary="attribute write on a (frozen, interned) Topology",
    invariant="Topology never changes after construction; the only "
    "sanctioned post-construction write is the set_routing_plan hook",
)
def check_topology_mutation(ctx) -> Iterator:
    config = ctx.config

    # Part 1: inside the defining module, methods of the class itself
    # may only fill slots during construction (or via the documented
    # one-slot routing-plan hook). Lazy caches carry inline
    # suppressions, each with its reason.
    if ctx.module == config.topology_module:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == config.topology_class):
                continue
            for method in node.body:
                if not isinstance(method, FunctionNode):
                    continue
                if method.name in config.topology_init_methods:
                    continue
                for stmt in ast.walk(method):
                    targets: list[ast.expr] = []
                    if isinstance(stmt, ast.Assign):
                        targets = stmt.targets
                    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
                        targets = [stmt.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            yield ctx.finding(
                                target,
                                "topology-mutation",
                                f"{config.topology_class}.{method.name} writes "
                                f"self.{target.attr} outside the construction "
                                "path of a frozen, interned class",
                            )

    # Part 2: everywhere, attribute writes on values known to be
    # Topology instances (annotated parameters, factory-call results).
    for scope in iter_scopes(ctx.tree):
        names = _topology_names(scope, ctx)
        for node in scope_nodes(scope):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "setattr"
                and node.args
                and isinstance(node.args[0], ast.Name)
                and node.args[0].id in names
            ):
                yield ctx.finding(
                    node,
                    "topology-mutation",
                    f"setattr on Topology value {node.args[0].id!r}: "
                    "topologies are immutable; derive a new instance instead",
                )
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                if (isinstance(base, ast.Name) and base.id in names) or _is_factory_call(
                    base, ctx
                ):
                    yield ctx.finding(
                        target,
                        "topology-mutation",
                        f"write to .{target.attr} on a Topology value: "
                        "topologies are frozen and interned; use the "
                        "derive-a-new-instance APIs (union, without_sources, "
                        "...) or the set_routing_plan hook",
                    )


@rule(
    "plan-mutation",
    summary="FaultPlan memo table or fault map mutated outside faults/base.py",
    invariant="FaultPlan is immutable after construction; its memo tables "
    "are private to the class",
)
def check_plan_mutation(ctx) -> Iterator:
    config = ctx.config
    if ctx.module == config.plan_module:
        return
    memo = frozenset(config.plan_memo_fields)

    for scope in iter_scopes(ctx.tree):
        plan_names: set[str] = set()
        if isinstance(scope, FunctionNode):
            args = scope.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_is(arg.annotation, config.plan_class):
                    plan_names.add(arg.arg)
        for node in scope_nodes(scope):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
                if isinstance(target, ast.Name):
                    if isinstance(value, ast.Call) and dotted(value.func) in (
                        config.plan_class,
                        f"{config.plan_module}.{config.plan_class}",
                    ):
                        plan_names.add(target.id)
                    else:
                        plan_names.discard(target.id)

        def _memo_attr(expr: ast.expr) -> str | None:
            """``plan._live_cache``-style access to a memo field.

            ``self._fault_free`` in some *other* class is that class's
            own slot, not a FaultPlan memo, so self/cls receivers are
            exempt (FaultPlan's own methods live in the exempted
            defining module anyway).
            """
            if (
                isinstance(expr, ast.Attribute)
                and expr.attr in memo
                and not (isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"))
            ):
                return expr.attr
            return None

        for node in scope_nodes(scope):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                receiver = node.func.value
                if node.func.attr in _MUTATORS and _memo_attr(receiver):
                    yield ctx.finding(
                        node,
                        "plan-mutation",
                        f".{node.func.attr}() on FaultPlan memo "
                        f".{receiver.attr}: memo tables are private to "
                        "faults/base.py",
                    )
                elif (
                    node.func.attr in _MUTATORS
                    and isinstance(receiver, ast.Attribute)
                    and receiver.attr in config.plan_public_fields
                    and isinstance(receiver.value, ast.Name)
                    and receiver.value.id in plan_names
                ):
                    yield ctx.finding(
                        node,
                        "plan-mutation",
                        f"mutating .{receiver.attr} of a FaultPlan after "
                        "construction desynchronizes its memo tables; build "
                        "a new plan instead",
                    )
                continue
            for target in targets:
                attr = _memo_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = _memo_attr(target.value)
                if attr is not None:
                    yield ctx.finding(
                        target,
                        "plan-mutation",
                        f"write to FaultPlan memo .{attr} outside "
                        "faults/base.py: memo tables are private to the class",
                    )
                    continue
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in config.plan_public_fields
                    and isinstance(target.value, ast.Name)
                    and target.value.id in plan_names
                ):
                    yield ctx.finding(
                        target,
                        "plan-mutation",
                        f"write to .{target.attr} of a FaultPlan after "
                        "construction; plans are immutable once built",
                    )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in config.plan_public_fields
                    and isinstance(target.value.value, ast.Name)
                    and target.value.value.id in plan_names
                ):
                    yield ctx.finding(
                        target,
                        "plan-mutation",
                        f"item write into .{target.value.attr} of a FaultPlan "
                        "after construction; plans are immutable once built",
                    )
