"""Worker-contract rules: what may cross a process boundary.

``Sweep.run(workers=N)`` / ``run_trials(..., workers=N)`` pickle the
trial function into worker processes, and ``batch_fn`` attributes are
dispatched the same way. Lambdas and closures fail at runtime deep in
the pool machinery (or worse, only when a CLI raises the process-wide
worker default); this rule moves the failure to the call site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import FunctionNode, iter_scopes, scope_nodes


def _local_functions(scope: ast.AST) -> set[str]:
    """Names bound to nested defs / lambdas directly inside ``scope``
    (only meaningful for function scopes: module-level defs pickle fine)."""
    if not isinstance(scope, FunctionNode):
        return set()
    names: set[str] = set()
    for node in scope_nodes(scope):
        if isinstance(node, FunctionNode) and node is not scope:
            names.add(node.name)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Lambda):
                names.add(target.id)
    return names


def _serial_literal(expr: ast.expr) -> bool:
    """``workers=1`` / ``workers=None`` never leave the process."""
    return isinstance(expr, ast.Constant) and expr.value in (1, None)


@rule(
    "worker-closure",
    summary="lambda/closure handed to a process-pool call or batch_fn slot",
    invariant="functions fanned out over workers are module-level and "
    "picklable; batch_fn attributes equally so",
)
def check_worker_closure(ctx) -> Iterator:
    config = ctx.config
    for scope in iter_scopes(ctx.tree):
        local_fns = _local_functions(scope)
        for node in scope_nodes(scope):
            if isinstance(node, ast.Call):
                worker_kw = next(
                    (kw for kw in node.keywords if kw.arg in config.worker_keywords),
                    None,
                )
                if worker_kw is None or _serial_literal(worker_kw.value):
                    continue
                candidates = list(node.args) + [
                    kw.value
                    for kw in node.keywords
                    if kw.arg not in config.worker_keywords
                ]
                for arg in candidates:
                    if isinstance(arg, ast.Lambda):
                        yield ctx.finding(
                            arg,
                            "worker-closure",
                            "lambda passed to a workers= call cannot be "
                            "pickled into worker processes; define a "
                            "module-level trial function",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in local_fns:
                        yield ctx.finding(
                            arg,
                            "worker-closure",
                            f"locally-defined function {arg.id!r} passed to a "
                            "workers= call cannot be pickled; hoist it to "
                            "module level",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == config.batch_fn_attr
                    ):
                        if isinstance(node.value, ast.Lambda):
                            yield ctx.finding(
                                node.value,
                                "worker-closure",
                                "batch_fn must be a module-level function "
                                "(it is dispatched over process pools); a "
                                "lambda cannot be pickled",
                            )
                        elif (
                            isinstance(node.value, ast.Name)
                            and node.value.id in local_fns
                        ):
                            yield ctx.finding(
                                node.value,
                                "worker-closure",
                                f"batch_fn bound to local function "
                                f"{node.value.id!r}; batch functions must be "
                                "module-level and picklable",
                            )
