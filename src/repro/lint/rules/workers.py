"""Worker-contract rules: what may cross a process boundary.

``Sweep.run(workers=N)`` / ``run_trials(..., workers=N)`` pickle the
trial function into worker processes, and ``batch_fn`` attributes are
dispatched the same way. Lambdas and closures fail at runtime deep in
the pool machinery (or worse, only when a CLI raises the process-wide
worker default); the ``worker-closure`` rule moves the failure to the
call site. ``pool=`` keywords on the persistent-pool entry points mark
the same fan-out surface and get the same treatment.

The ``arena-readonly`` rule guards the other side of the boundary:
tables served by :mod:`repro.sim.arena` are zero-copy views into
shared-memory segments that warm pool workers hand out by content
hash. A write through one would corrupt every attached process's view
of the graph, so names bound to the arena factories must never be
written through -- kernels copy first (``table.T.copy()``) and write
to the copy.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.registry import rule
from repro.lint.rules.common import FunctionNode, dotted, iter_scopes, scope_nodes


def _local_functions(scope: ast.AST) -> set[str]:
    """Names bound to nested defs / lambdas directly inside ``scope``
    (only meaningful for function scopes: module-level defs pickle fine)."""
    if not isinstance(scope, FunctionNode):
        return set()
    names: set[str] = set()
    for node in scope_nodes(scope):
        if isinstance(node, FunctionNode) and node is not scope:
            names.add(node.name)
        elif isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and isinstance(node.value, ast.Lambda):
                names.add(target.id)
    return names


def _serial_literal(expr: ast.expr) -> bool:
    """``workers=1`` / ``workers=None`` never leave the process."""
    return isinstance(expr, ast.Constant) and expr.value in (1, None)


@rule(
    "worker-closure",
    summary="lambda/closure handed to a process-pool call or batch_fn slot",
    invariant="functions fanned out over workers are module-level and "
    "picklable; batch_fn attributes equally so",
)
def check_worker_closure(ctx) -> Iterator:
    config = ctx.config
    pool_keywords = getattr(config, "pool_keywords", ())
    dispatch_keywords = tuple(config.worker_keywords) + tuple(pool_keywords)
    for scope in iter_scopes(ctx.tree):
        local_fns = _local_functions(scope)
        for node in scope_nodes(scope):
            if isinstance(node, ast.Call):
                worker_kw = next(
                    (kw for kw in node.keywords if kw.arg in config.worker_keywords),
                    None,
                )
                pool_kw = next(
                    (kw for kw in node.keywords if kw.arg in pool_keywords),
                    None,
                )
                # An explicit serial workers literal keeps the call
                # in-process even when a pool keyword is present; a
                # bare pool keyword implies process dispatch (the
                # worker count may come from the process-wide default).
                if worker_kw is not None and _serial_literal(worker_kw.value):
                    continue
                if worker_kw is None and pool_kw is None:
                    continue
                candidates = list(node.args) + [
                    kw.value
                    for kw in node.keywords
                    if kw.arg not in dispatch_keywords
                ]
                for arg in candidates:
                    if isinstance(arg, ast.Lambda):
                        yield ctx.finding(
                            arg,
                            "worker-closure",
                            "lambda passed to a workers=/pool= dispatch call "
                            "cannot be pickled into worker processes; define "
                            "a module-level trial function",
                        )
                    elif isinstance(arg, ast.Name) and arg.id in local_fns:
                        yield ctx.finding(
                            arg,
                            "worker-closure",
                            f"locally-defined function {arg.id!r} passed to a "
                            "workers=/pool= dispatch call cannot be pickled; "
                            "hoist it to module level",
                        )
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == config.batch_fn_attr
                    ):
                        if isinstance(node.value, ast.Lambda):
                            yield ctx.finding(
                                node.value,
                                "worker-closure",
                                "batch_fn must be a module-level function "
                                "(it is dispatched over process pools); a "
                                "lambda cannot be pickled",
                            )
                        elif (
                            isinstance(node.value, ast.Name)
                            and node.value.id in local_fns
                        ):
                            yield ctx.finding(
                                node.value,
                                "worker-closure",
                                f"batch_fn bound to local function "
                                f"{node.value.id!r}; batch functions must be "
                                "module-level and picklable",
                            )


def _base_name(node: ast.expr) -> str | None:
    """The root ``Name`` of a ``name[...]`` / ``name.attr...`` chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _arena_bound_names(scope: ast.AST, factories: tuple[str, ...]) -> set[str]:
    """Names assigned directly from an arena-factory call in ``scope``.

    Tracks ``table = delivered_table(...)`` (plain or dotted callee);
    derived copies (``table.T.copy()`` etc.) bind through a different
    call and are deliberately *not* tracked -- copying first is the
    sanctioned way to obtain a writable array.
    """
    names: set[str] = set()
    for node in scope_nodes(scope):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and isinstance(node.value, ast.Call)):
            continue
        callee = dotted(node.value.func)
        if callee and callee.rsplit(".", 1)[-1] in factories:
            names.add(target.id)
    return names


@rule(
    "arena-readonly",
    summary="write through a shared arena table view",
    invariant="tables served by repro.sim.arena are read-only "
    "shared-memory views; kernels copy before writing",
)
def check_arena_readonly(ctx) -> Iterator:
    config = ctx.config
    factories = getattr(config, "arena_factories", ())
    mutators = getattr(config, "arena_mutating_methods", ())
    if not factories or ctx.module == getattr(config, "arena_module", None):
        return  # the arena layer itself builds the views it serves
    for scope in iter_scopes(ctx.tree):
        names = _arena_bound_names(scope, factories)
        if not names:
            continue
        for node in scope_nodes(scope):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if (
                        isinstance(target, (ast.Subscript, ast.Attribute))
                        and _base_name(target) in names
                    ):
                        yield ctx.finding(
                            target,
                            "arena-readonly",
                            f"write through arena table "
                            f"{_base_name(target)!r}: shared-memory views "
                            "are read-only across every attached process; "
                            "copy first (e.g. table.T.copy())",
                        )
            elif isinstance(node, ast.AugAssign):
                if _base_name(node.target) in names:
                    yield ctx.finding(
                        node.target,
                        "arena-readonly",
                        f"in-place operator on arena table "
                        f"{_base_name(node.target)!r} mutates a read-only "
                        "shared-memory view; copy first",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in mutators
                    and isinstance(func.value, ast.Name)
                    and func.value.id in names
                ):
                    yield ctx.finding(
                        node,
                        "arena-readonly",
                        f"mutating method .{func.attr}() called on arena "
                        f"table {func.value.id!r}; shared views are "
                        "read-only -- copy first",
                    )
