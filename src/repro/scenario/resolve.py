"""Resolve scenario specs against the registry into runnable trials.

This is the layer where names acquire meaning: a
:class:`~repro.scenario.spec.ScenarioSpec` plus the registry yields a
:class:`ResolvedScenario` -- the algorithm family object, the chosen
component entries, and one flat, fully-defaulted parameter dict. From
there every existing execution surface is one call away: serial
builds (``build_execution``), the module-level picklable trial
(``trial_fn`` / ``trial_kwargs``, with the ``batch_fn`` /
``arena_plan`` attachments riding along untouched), lock-step batch
lanes (``batch``), and the parallel sweep machinery
(:func:`resolve_trial`, consumed by :meth:`repro.bench.sweep.Sweep.run`
and ``repro.cli sweep --spec``).

Resolution is deterministic: the registry is populated once at import
time (:func:`ensure_builtin_families`), parameters are validated
against the declared :class:`~repro.scenario.registry.ParamSpec` set
(errors name the offending field, ``algorithm.n`` style), and
:meth:`ResolvedScenario.canonical_spec` re-encodes the result with
every default made explicit -- a fixpoint of
``parse -> resolve -> encode``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.scenario.registry import (
    AlgorithmFamily,
    ParamSpec,
    RegistryEntry,
    entries,
    lookup,
    validate_params,
)
from repro.scenario.spec import ComponentRef, Scalar, ScenarioSpec, SpecError, parse_spec

__all__ = [
    "ResolvedScenario",
    "ensure_builtin_families",
    "resolve",
    "resolve_trial",
    "flat_params",
    "spec_for",
    "run_spec_trial",
]

_SECTION_KINDS = {"network": "network", "adversary": "adversary", "faults": "faults"}


def ensure_builtin_families() -> None:
    """Import the modules that register the built-in families.

    Registration is an import-time side effect of the owning modules
    (the ``registry-registration`` lint rule pins that), so loading
    them is all it takes; Python's import cache makes this idempotent
    and cheap to call before every resolution.
    """
    import repro.families  # noqa: F401  (registers the averaging family)
    import repro.workloads  # noqa: F401  (registers dac/dbac/byz/baseline)


@dataclass(frozen=True)
class ResolvedScenario:
    """One spec bound to registry entries and fully-defaulted params."""

    spec: ScenarioSpec
    entry: RegistryEntry
    components: Mapping[str, RegistryEntry]
    params: Mapping[str, Scalar]

    @property
    def family(self) -> AlgorithmFamily:
        return self.entry.obj

    @property
    def trial_fn(self) -> Any:
        """The family's module-level picklable trial function."""
        fn = self.family.trial
        if fn is None:
            raise SpecError(
                "algorithm",
                f"{self.entry.name!r} declares no trial function",
            )
        return fn

    @property
    def batch_fn(self) -> Any:
        """The trial's batched form (``None`` when it has none)."""
        return getattr(self.trial_fn, "batch_fn", None)

    def trial_kwargs(self) -> dict[str, Scalar]:
        """Keyword arguments for ``trial_fn`` (seed excluded)."""
        return self.family.trial_kwargs(dict(self.params))

    def build_execution(self, seed: int | None = None) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.sim.runner.run_consensus`."""
        use = self.spec.seed if seed is None else seed
        return self.family.build(seed=use, **dict(self.params))

    def run(self, seed: int | None = None) -> dict[str, Any]:
        """Run one trial; the family's picklable summary dict."""
        use = self.spec.seed if seed is None else seed
        return self.trial_fn(seed=use, **self.trial_kwargs())

    def batch(self, seeds: Sequence[int], *, backend: str = "auto") -> list[Any]:
        """Lock-step lanes for ``seeds`` (:class:`repro.sim.batch.LaneResult`)."""
        return self.family.batch(seeds, backend=backend, **dict(self.params))

    def canonical_spec(self) -> ScenarioSpec:
        """The spec with every component and parameter made explicit.

        Spec-level ``rounds`` is folded into the family's
        ``rounds_param``, so the canonical form is a fixpoint:
        resolving it yields these exact params again.
        """
        declared = {p.name for p in self.entry.params}
        algo = ComponentRef(
            self.entry.name,
            self.entry.version,
            tuple((k, v) for k, v in self.params.items() if k in declared),
        )
        refs: dict[str, ComponentRef | None] = {}
        for section, entry in self.components.items():
            names = {p.name for p in entry.params}
            refs[section] = ComponentRef(
                entry.name,
                entry.version,
                tuple((k, v) for k, v in self.params.items() if k in names),
            )
        return ScenarioSpec(
            algorithm=algo,
            network=refs.get("network"),
            adversary=refs.get("adversary"),
            faults=refs.get("faults"),
            seed=self.spec.seed,
        )


def flat_params(entry: RegistryEntry) -> dict[str, tuple[str, ParamSpec]]:
    """``name -> (section, ParamSpec)`` over the family's flat space.

    The flat space is the algorithm's own parameters plus those of the
    *default* component in each section the family accepts -- the
    vocabulary trial functions and test configs speak. Collisions
    between sections are a registration bug and raise ``ValueError``.
    """
    family: AlgorithmFamily = entry.obj
    out: dict[str, tuple[str, ParamSpec]] = {}
    for spec in entry.params:
        out[spec.name] = ("algorithm", spec)
    for section, names in family.components.items():
        component = lookup(_SECTION_KINDS[section], names[0], field=section)
        for spec in component.params:
            if spec.name in out:
                raise ValueError(
                    f"parameter {spec.name!r} of {section} {component.name!r} "
                    f"collides with {out[spec.name][0]} in family {entry.name!r}"
                )
            out[spec.name] = (section, spec)
    return out


def resolve(spec: ScenarioSpec | str) -> ResolvedScenario:
    """Bind a spec (or its text/JSON form) to registry entries.

    Omitted component sections take the family's default component
    with default parameters; unknown names, versions, parameters and
    wrong-typed values raise :class:`SpecError` naming the field.
    """
    ensure_builtin_families()
    if isinstance(spec, str):
        spec = parse_spec(spec)
    entry = lookup("algorithm", spec.algorithm.name, spec.algorithm.version)
    family: AlgorithmFamily = entry.obj
    params = validate_params(entry, spec.algorithm.kwargs(), prefix="algorithm")
    components: dict[str, RegistryEntry] = {}
    for section, kind in _SECTION_KINDS.items():
        ref = getattr(spec, section)
        allowed = tuple(family.components.get(section, ()))
        if ref is None:
            if not allowed:
                continue
            ref = ComponentRef(allowed[0])
        elif not allowed:
            raise SpecError(
                section,
                f"algorithm {entry.name!r} does not take a {section} section",
            )
        elif ref.name not in allowed:
            raise SpecError(
                section,
                f"algorithm {entry.name!r} supports {section} components "
                f"{', '.join(allowed)}; got {ref.name!r}",
            )
        component = lookup(kind, ref.name, ref.version, field=section)
        filled = validate_params(
            component,
            ref.kwargs(),
            prefix=section,
            defaults_override=family.component_param_defaults.get(section),
        )
        for key, value in filled.items():
            if key in params:
                raise SpecError(
                    f"{section}.{key}",
                    f"parameter collides with one already set by "
                    f"another section of {entry.name!r}",
                )
            params[key] = value
        components[section] = component
    if spec.rounds is not None:
        if family.rounds_param is None:
            raise SpecError(
                "rounds",
                f"algorithm {entry.name!r} does not take a rounds budget",
            )
        params[family.rounds_param] = spec.rounds
    params = family.normalize(params)
    return ResolvedScenario(
        spec=spec, entry=entry, components=components, params=params
    )


def spec_for(
    name: str,
    params: Mapping[str, Scalar] | None = None,
    *,
    version: int | None = None,
    seed: int = 0,
    rounds: int | None = None,
    components: Mapping[str, str] | None = None,
) -> ScenarioSpec:
    """Build a spec from a family name and flat parameters.

    The inverse convenience of :func:`resolve` for callers that think
    in the flat vocabulary (test configs, CLI flags): each parameter
    is routed to the section whose component declares it.
    ``components`` overrides the default component per section (for
    example ``{"adversary": "mobile"}``).
    """
    ensure_builtin_families()
    entry = lookup("algorithm", name, version)
    family: AlgorithmFamily = entry.obj
    chosen: dict[str, RegistryEntry] = {}
    for section, names in family.components.items():
        pick = (components or {}).get(section, names[0])
        if pick not in names:
            raise SpecError(
                section,
                f"algorithm {name!r} supports {section} components "
                f"{', '.join(names)}; got {pick!r}",
            )
        chosen[section] = lookup(_SECTION_KINDS[section], pick, field=section)
    algo_names = {p.name for p in entry.params}
    section_params: dict[str, dict[str, Scalar]] = {s: {} for s in chosen}
    algo_params: dict[str, Scalar] = {}
    for key, value in (params or {}).items():
        if key in algo_names:
            algo_params[key] = value
            continue
        owner = next(
            (s for s, comp in chosen.items() if comp.param(key) is not None), None
        )
        if owner is None:
            raise SpecError(
                f"algorithm.{key}",
                f"no section of {name!r} declares this parameter",
            )
        section_params[owner][key] = value
    refs = {
        section: ComponentRef(
            comp.name, comp.version, tuple(section_params[section].items())
        )
        for section, comp in chosen.items()
    }
    return ScenarioSpec(
        algorithm=ComponentRef(entry.name, entry.version, tuple(algo_params.items())),
        network=refs.get("network"),
        adversary=refs.get("adversary"),
        faults=refs.get("faults"),
        seed=seed,
        rounds=rounds,
    )


def resolve_trial(spec: ScenarioSpec | str) -> tuple[Any, dict[str, Scalar]]:
    """``(picklable trial fn, base kwargs)`` for the sweep machinery.

    :meth:`repro.bench.sweep.Sweep.run` accepts a spec in place of a
    trial function and dispatches through this: the returned function
    is the family's module-level trial (its ``batch_fn`` /
    ``arena_plan`` attachments intact, so batching and arena
    publication work exactly as for a hand-picked ``run_*_trial``) and
    the kwargs are the spec's resolved parameters, which grid cells
    may override. The spec's own ``seed`` is ignored there -- sweep
    seeding stays with ``seed0``/``repeats``.
    """
    resolved = resolve(spec)
    return resolved.trial_fn, resolved.trial_kwargs()


def run_spec_trial(spec: ScenarioSpec | str, seed: int | None = None) -> dict[str, Any]:
    """Resolve and run one trial; module-level, hence picklable."""
    return resolve(spec).run(seed)


def algorithm_entries() -> tuple[RegistryEntry, ...]:
    """All registered algorithm families (builtins guaranteed loaded)."""
    ensure_builtin_families()
    return entries("algorithm")
