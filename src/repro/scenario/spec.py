"""Frozen, serializable, content-hashed scenario specifications.

A :class:`ScenarioSpec` is the declarative description of one
experiment: which algorithm family runs (``algorithm: dbac@1(n=6)``),
over which dynamic-graph source (``network: dynadegree@1(window=2)``),
under which adversary and fault plan, from which seed, for how many
rounds. The spec is pure data -- frozen dataclasses over scalars --
so it pickles, hashes, and round-trips through both a canonical JSON
form and a one-line text DSL. Resolution against the pluggable
registry (what the names *mean*) lives in
:mod:`repro.scenario.resolve`; this module knows nothing about
algorithms and depends only on the standard library.

Text DSL grammar (one statement per line; ``;`` also separates
statements, ``#`` starts a comment)::

    algorithm: dbac@1(n=6, epsilon=1e-3)
    network:   dynadegree@1(window=2, selector=nearest)
    faults:    byzantine@1(strategy=extreme)
    seed:      7
    rounds:    2000

Values are scalar literals: integers, floats, ``true``/``false``,
``none``, quoted strings, or barewords (``nearest`` reads as the
string ``"nearest"``). The canonical encoding is deterministic --
sections in a fixed order, parameters sorted by name -- so
``parse_spec(spec.encode()) == spec`` and :attr:`ScenarioSpec.content_hash`
is stable across processes and insertion orders.
"""

from __future__ import annotations

import hashlib
import json
import re
from dataclasses import dataclass, field, replace
from typing import Any

__all__ = [
    "SpecError",
    "ComponentRef",
    "ScenarioSpec",
    "parse_spec",
]

#: Scalar parameter value types a spec may carry.
Scalar = int | float | str | bool | None

_SECTIONS = ("algorithm", "network", "adversary", "faults")
_NAME_RE = re.compile(r"^[a-z][a-z0-9_-]*$")
_BAREWORD_RE = re.compile(r"^[A-Za-z_][A-Za-z0-9_.+-]*$")
_RESERVED_BAREWORDS = frozenset({"true", "false", "none"})


class SpecError(ValueError):
    """A scenario spec failed to parse, validate, or resolve.

    ``field`` names the offending part of the spec (for example
    ``"algorithm.n"`` or ``"faults.strategy"``) so callers -- and the
    error message itself -- can point at exactly what to fix.
    """

    def __init__(self, field: str, message: str) -> None:
        super().__init__(f"{field}: {message}")
        self.field = field


def _check_scalar(field_name: str, value: Any) -> Scalar:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise SpecError(
        field_name,
        f"parameter values must be scalars (int, float, str, bool, none), "
        f"got {type(value).__name__}",
    )


@dataclass(frozen=True)
class ComponentRef:
    """A reference to one registered component: ``name@version(params)``.

    ``params`` is a tuple of ``(key, value)`` pairs sorted by key, so
    two refs built from the same parameters in any insertion order
    compare (and hash) equal.
    """

    name: str
    version: int = 1
    params: tuple[tuple[str, Scalar], ...] = ()

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise SpecError(
                "name",
                f"component name {self.name!r} must match {_NAME_RE.pattern}",
            )
        if not isinstance(self.version, int) or isinstance(self.version, bool) or self.version < 1:
            raise SpecError(
                "version",
                f"version of {self.name!r} must be a positive integer, "
                f"got {self.version!r}",
            )
        canon = tuple(sorted(self.params, key=lambda kv: kv[0]))
        for key, value in canon:
            _check_scalar(f"{self.name}.{key}", value)
        object.__setattr__(self, "params", canon)

    @classmethod
    def make(cls, name: str, version: int = 1, **params: Scalar) -> ComponentRef:
        """Build a ref from keyword parameters."""
        return cls(name, version, tuple(params.items()))

    def kwargs(self) -> dict[str, Scalar]:
        """The parameters as a plain dict."""
        return dict(self.params)

    def with_params(self, **params: Scalar) -> ComponentRef:
        """A copy with the given parameters merged in (overriding)."""
        merged = {**self.kwargs(), **params}
        return ComponentRef(self.name, self.version, tuple(merged.items()))

    def encode(self) -> str:
        """Canonical one-token text form, e.g. ``dbac@1(n=6)``."""
        body = ", ".join(f"{k}={_encode_literal(v)}" for k, v in self.params)
        return f"{self.name}@{self.version}({body})" if body else f"{self.name}@{self.version}"


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-described experiment, as frozen data.

    Only ``algorithm`` is mandatory; omitted component sections take
    the registered family's defaults at resolution time. ``rounds``
    overrides the family's round budget (its meaning -- hard cap or
    fixed horizon -- is the family's ``rounds_param``).
    """

    algorithm: ComponentRef
    network: ComponentRef | None = None
    adversary: ComponentRef | None = None
    faults: ComponentRef | None = None
    seed: int = 0
    rounds: int | None = field(default=None)

    def __post_init__(self) -> None:
        if not isinstance(self.algorithm, ComponentRef):
            raise SpecError("algorithm", "algorithm section is required")
        for section in ("network", "adversary", "faults"):
            value = getattr(self, section)
            if value is not None and not isinstance(value, ComponentRef):
                raise SpecError(section, f"expected a component reference, got {value!r}")
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise SpecError("seed", f"seed must be an integer, got {self.seed!r}")
        if self.rounds is not None and (
            not isinstance(self.rounds, int) or isinstance(self.rounds, bool) or self.rounds < 1
        ):
            raise SpecError("rounds", f"rounds must be a positive integer, got {self.rounds!r}")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data form (the JSON wire format)."""
        out: dict[str, Any] = {}
        for section in _SECTIONS:
            ref = getattr(self, section)
            if ref is not None:
                out[section] = {
                    "name": ref.name,
                    "version": ref.version,
                    "params": dict(ref.params),
                }
        out["seed"] = self.seed
        if self.rounds is not None:
            out["rounds"] = self.rounds
        return out

    @classmethod
    def from_dict(cls, data: Any) -> ScenarioSpec:
        """Inverse of :meth:`to_dict`, validating shapes along the way."""
        if not isinstance(data, dict):
            raise SpecError("spec", f"expected a JSON object, got {type(data).__name__}")
        known = set(_SECTIONS) | {"seed", "rounds"}
        for key in data:
            if key not in known:
                raise SpecError(str(key), "unknown spec field")
        refs: dict[str, ComponentRef | None] = {}
        for section in _SECTIONS:
            raw = data.get(section)
            if raw is None:
                refs[section] = None
                continue
            if not isinstance(raw, dict) or "name" not in raw:
                raise SpecError(section, f"expected {{name, version, params}}, got {raw!r}")
            extra = set(raw) - {"name", "version", "params"}
            if extra:
                raise SpecError(section, f"unknown component fields {sorted(extra)!r}")
            params = raw.get("params", {})
            if not isinstance(params, dict):
                raise SpecError(section, f"params must be an object, got {params!r}")
            try:
                refs[section] = ComponentRef(
                    raw["name"], raw.get("version", 1), tuple(params.items())
                )
            except SpecError as exc:
                raise SpecError(f"{section}.{exc.field}", str(exc).split(": ", 1)[-1]) from exc
        if refs["algorithm"] is None:
            raise SpecError("algorithm", "algorithm section is required")
        return cls(
            algorithm=refs["algorithm"],
            network=refs["network"],
            adversary=refs["adversary"],
            faults=refs["faults"],
            seed=data.get("seed", 0),
            rounds=data.get("rounds"),
        )

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, no whitespace."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> ScenarioSpec:
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("spec", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    def encode(self) -> str:
        """Canonical text-DSL form; ``parse_spec`` inverts it."""
        lines = [f"{section}: {getattr(self, section).encode()}"
                 for section in _SECTIONS if getattr(self, section) is not None]
        lines.append(f"seed: {self.seed}")
        if self.rounds is not None:
            lines.append(f"rounds: {self.rounds}")
        return "\n".join(lines)

    @property
    def content_hash(self) -> str:
        """Stable hex digest of the canonical JSON form."""
        return hashlib.blake2b(self.to_json().encode("utf-8"), digest_size=16).hexdigest()

    def with_seed(self, seed: int) -> ScenarioSpec:
        """A copy differing only in ``seed``."""
        return replace(self, seed=seed)


# -- literal syntax ------------------------------------------------------


def _encode_literal(value: Scalar) -> str:
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    if (
        _BAREWORD_RE.match(value)
        and value.lower() not in _RESERVED_BAREWORDS
        and _parse_literal("", value) == value
    ):
        return value
    return json.dumps(value)


def _parse_literal(field_name: str, token: str) -> Scalar:
    token = token.strip()
    if not token:
        raise SpecError(field_name, "empty parameter value")
    low = token.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    if low in ("none", "null"):
        return None
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise SpecError(field_name, f"unterminated string literal {token!r}")
        if token[0] == '"':
            try:
                return json.loads(token)
            except json.JSONDecodeError as exc:
                raise SpecError(field_name, f"bad string literal {token!r}: {exc}") from exc
        return token[1:-1]
    try:
        return int(token, 0)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    if _BAREWORD_RE.match(token):
        return token
    raise SpecError(field_name, f"cannot parse literal {token!r}")


_COMPONENT_RE = re.compile(
    r"^(?P<name>[a-z][a-z0-9_-]*)(?:@(?P<version>\d+))?(?:\((?P<body>.*)\))?$",
    re.DOTALL,
)


def _split_args(body: str) -> list[str]:
    """Split ``a=1, b="x, y"`` on commas outside quotes."""
    parts: list[str] = []
    depth_quote: str | None = None
    current: list[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if depth_quote is not None:
            current.append(ch)
            if ch == "\\" and depth_quote == '"' and i + 1 < len(body):
                current.append(body[i + 1])
                i += 1
            elif ch == depth_quote:
                depth_quote = None
        elif ch in "\"'":
            depth_quote = ch
            current.append(ch)
        elif ch == ",":
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if current or parts:
        parts.append("".join(current))
    return parts


def _parse_component(section: str, text: str) -> ComponentRef:
    text = text.strip()
    match = _COMPONENT_RE.match(text)
    if not match:
        raise SpecError(section, f"cannot parse component reference {text!r}")
    name = match.group("name")
    version = int(match.group("version") or 1)
    body = match.group("body")
    params: list[tuple[str, Scalar]] = []
    seen: set[str] = set()
    if body is not None and body.strip():
        for part in _split_args(body):
            part = part.strip()
            if not part:
                raise SpecError(section, f"empty parameter in {text!r}")
            if "=" not in part:
                raise SpecError(section, f"expected key=value, got {part!r}")
            key, _, raw = part.partition("=")
            key = key.strip()
            if not key.isidentifier():
                raise SpecError(section, f"bad parameter name {key!r}")
            if key in seen:
                raise SpecError(f"{section}.{key}", "duplicate parameter")
            seen.add(key)
            params.append((key, _parse_literal(f"{section}.{key}", raw)))
    try:
        return ComponentRef(name, version, tuple(params))
    except SpecError as exc:
        raise SpecError(f"{section}.{exc.field}", str(exc).split(": ", 1)[-1]) from exc


def parse_spec(text: str) -> ScenarioSpec:
    """Parse a spec from the text DSL (or canonical JSON).

    A leading ``{`` selects the JSON reader; anything else is treated
    as DSL statements separated by newlines or ``;``.
    """
    stripped = text.strip()
    if not stripped:
        raise SpecError("spec", "empty spec")
    if stripped.startswith("{"):
        return ScenarioSpec.from_json(stripped)
    sections: dict[str, ComponentRef] = {}
    seed = 0
    rounds: int | None = None
    seen: set[str] = set()
    statements = [
        stmt
        for line in stripped.splitlines()
        for stmt in line.split("#", 1)[0].split(";")
        if stmt.strip()
    ]
    for stmt in statements:
        if ":" not in stmt:
            raise SpecError("spec", f"expected 'section: value', got {stmt.strip()!r}")
        section, _, rest = stmt.partition(":")
        section = section.strip().lower()
        rest = rest.strip()
        if section in seen:
            raise SpecError(section, "duplicate section")
        seen.add(section)
        if section in _SECTIONS:
            sections[section] = _parse_component(section, rest)
        elif section == "seed":
            value = _parse_literal("seed", rest)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError("seed", f"seed must be an integer, got {rest!r}")
            seed = value
        elif section == "rounds":
            value = _parse_literal("rounds", rest)
            if not isinstance(value, int) or isinstance(value, bool):
                raise SpecError("rounds", f"rounds must be an integer, got {rest!r}")
            rounds = value
        else:
            raise SpecError(
                section,
                f"unknown section (expected one of {', '.join(_SECTIONS)}, seed, rounds)",
            )
    if "algorithm" not in sections:
        raise SpecError("algorithm", "algorithm section is required")
    return ScenarioSpec(
        algorithm=sections["algorithm"],
        network=sections.get("network"),
        adversary=sections.get("adversary"),
        faults=sections.get("faults"),
        seed=seed,
        rounds=rounds,
    )
