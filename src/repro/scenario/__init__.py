"""Declarative scenarios: a frozen spec DSL plus a pluggable registry.

The package splits in two layers. The *vocabulary* --
:mod:`repro.scenario.spec` (frozen, content-hashed
:class:`~repro.scenario.spec.ScenarioSpec` with text/JSON round-trip)
and :mod:`repro.scenario.registry` (``(kind, name, version)`` entries
with declared parameters) -- is stdlib-only and sits at the bottom of
the layer DAG, so any module may speak it. *Resolution*
(:mod:`repro.scenario.resolve`) binds names to the live trial
machinery and sits above :mod:`repro.workloads`.

See ``docs/scenarios.md`` for the DSL grammar and the
"add an algorithm in one module" recipe.
"""

from repro.scenario.registry import (
    AlgorithmFamily,
    ParamSpec,
    RegistryEntry,
    declare_adversary,
    declare_faults,
    declare_network,
    entries,
    lookup,
    register_adversary,
    register_algorithm,
    register_faults,
    register_network,
    unregister,
)
from repro.scenario.resolve import (
    ResolvedScenario,
    algorithm_entries,
    ensure_builtin_families,
    flat_params,
    resolve,
    resolve_trial,
    run_spec_trial,
    spec_for,
)
from repro.scenario.spec import ComponentRef, ScenarioSpec, SpecError, parse_spec

__all__ = [
    "AlgorithmFamily",
    "ComponentRef",
    "ParamSpec",
    "RegistryEntry",
    "ResolvedScenario",
    "ScenarioSpec",
    "SpecError",
    "algorithm_entries",
    "declare_adversary",
    "declare_faults",
    "declare_network",
    "ensure_builtin_families",
    "entries",
    "flat_params",
    "lookup",
    "parse_spec",
    "register_adversary",
    "register_algorithm",
    "register_faults",
    "register_network",
    "resolve",
    "resolve_trial",
    "run_spec_trial",
    "spec_for",
    "unregister",
]
