"""The pluggable scenario registry: names and versions, as data.

Algorithm families, dynamic-graph sources, adversaries and fault
plans are registered here under ``(kind, name, version)`` keys, so a
:class:`~repro.scenario.spec.ScenarioSpec` can refer to any of them
by name alone (the Sawtooth ``consensus.algorithm.name/version``
idiom). Registration happens once, at import time, in the module
that owns the component -- the ``registry-registration`` lint rule
pins that discipline -- which keeps resolution deterministic: the
same spec resolves to the same objects in every process.

Two flavours of entry coexist:

* *algorithm families* carry an :class:`AlgorithmFamily` object that
  knows how to build serial executions, run trials, and batch lanes
  (:func:`register_algorithm`);
* *components* (network / adversary / faults) are declared parameter
  namespaces (:func:`declare_network` and friends): the family's own
  ``build`` interprets them, so declaring one never imports foreign
  machinery into this module.

This module depends only on the standard library and the spec
vocabulary; resolution against the live trial machinery lives in
:mod:`repro.scenario.resolve`.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from repro.scenario.spec import Scalar, SpecError

__all__ = [
    "MISSING",
    "ParamSpec",
    "RegistryEntry",
    "AlgorithmFamily",
    "register_algorithm",
    "register_network",
    "register_adversary",
    "register_faults",
    "declare_network",
    "declare_adversary",
    "declare_faults",
    "lookup",
    "entries",
    "unregister",
]

KINDS = ("algorithm", "network", "adversary", "faults")

#: Sentinel for "no default: the spec must supply this parameter".
MISSING = object()

_TYPES: dict[str, tuple[type, ...]] = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}


@dataclass(frozen=True)
class ParamSpec:
    """One declared parameter: name, scalar type, default, choices.

    ``type`` is one of ``int | float | str | bool``; ``float`` accepts
    integer literals, ``int`` rejects booleans. ``default=MISSING``
    makes the parameter required; ``nullable`` admits ``none``.
    """

    name: str
    type: str = "str"
    default: Any = MISSING
    choices: tuple[Scalar, ...] | None = None
    nullable: bool = False

    def __post_init__(self) -> None:
        if self.type not in _TYPES:
            raise ValueError(f"unknown parameter type {self.type!r} for {self.name!r}")

    @property
    def required(self) -> bool:
        return self.default is MISSING

    def check(self, field: str, value: Any) -> Scalar:
        """Validate one value against this spec, naming ``field`` on error."""
        if value is None:
            if self.nullable:
                return None
            raise SpecError(field, "parameter is not nullable")
        accepted = _TYPES[self.type]
        if isinstance(value, bool) and self.type != "bool":
            raise SpecError(field, f"expected {self.type}, got bool {value!r}")
        if not isinstance(value, accepted):
            raise SpecError(
                field, f"expected {self.type}, got {type(value).__name__} {value!r}"
            )
        if self.type == "float":
            value = float(value)
        if self.choices is not None and value not in self.choices:
            raise SpecError(
                field,
                f"{value!r} is not one of {', '.join(repr(c) for c in self.choices)}",
            )
        return value


@dataclass(frozen=True)
class RegistryEntry:
    """One registered component: key, payload, declared parameters."""

    kind: str
    name: str
    version: int
    obj: Any
    params: tuple[ParamSpec, ...] = ()
    description: str = ""

    @property
    def key(self) -> tuple[str, str, int]:
        return (self.kind, self.name, self.version)

    def param(self, name: str) -> ParamSpec | None:
        for spec in self.params:
            if spec.name == name:
                return spec
        return None


_REGISTRY: dict[tuple[str, str, int], RegistryEntry] = {}


def _register_entry(entry: RegistryEntry) -> RegistryEntry:
    if entry.kind not in KINDS:
        raise ValueError(f"unknown registry kind {entry.kind!r}")
    if entry.key in _REGISTRY:
        raise ValueError(
            f"{entry.kind} {entry.name!r} version {entry.version} is already "
            "registered; bump the version instead of re-registering"
        )
    seen: set[str] = set()
    for spec in entry.params:
        if spec.name in seen:
            raise ValueError(
                f"{entry.kind} {entry.name!r} declares parameter "
                f"{spec.name!r} twice"
            )
        seen.add(spec.name)
    _REGISTRY[entry.key] = entry
    return entry


def register_algorithm(
    name: str,
    *,
    version: int = 1,
    params: Sequence[ParamSpec] = (),
    description: str = "",
) -> Callable[[type], type]:
    """Class decorator registering an :class:`AlgorithmFamily` subclass.

    The decorated class is instantiated once and stored as the entry's
    payload; parameter specs may be given here or as the class's
    ``params`` attribute.
    """

    def deco(cls: type) -> type:
        family = cls()
        declared = tuple(params) or tuple(getattr(family, "params", ()))
        doc = (cls.__doc__ or "").strip()
        _register_entry(
            RegistryEntry(
                kind="algorithm",
                name=name,
                version=version,
                obj=family,
                params=declared,
                description=description or (doc.splitlines()[0] if doc else ""),
            )
        )
        return cls

    return deco


def _declare(
    kind: str,
    name: str,
    *,
    version: int = 1,
    params: Sequence[ParamSpec] = (),
    description: str = "",
    obj: Any = None,
) -> RegistryEntry:
    return _register_entry(
        RegistryEntry(
            kind=kind,
            name=name,
            version=version,
            obj=obj,
            params=tuple(params),
            description=description,
        )
    )


def register_network(name: str, **kwargs: Any) -> RegistryEntry:
    """Register a dynamic-graph source under ``(network, name, version)``."""
    return _declare("network", name, **kwargs)


def register_adversary(name: str, **kwargs: Any) -> RegistryEntry:
    """Register an adversary under ``(adversary, name, version)``."""
    return _declare("adversary", name, **kwargs)


def register_faults(name: str, **kwargs: Any) -> RegistryEntry:
    """Register a fault-plan shape under ``(faults, name, version)``."""
    return _declare("faults", name, **kwargs)


# Declaration aliases: components carry no payload object, only a
# parameter namespace the owning family's ``build`` interprets.
declare_network = register_network
declare_adversary = register_adversary
declare_faults = register_faults


def lookup(
    kind: str, name: str, version: int | None = None, *, field: str | None = None
) -> RegistryEntry:
    """Resolve ``(kind, name, version)``; ``version=None`` takes the latest.

    Raises :class:`SpecError` naming ``field`` (default: the kind) when
    nothing matches, listing what *is* registered so typos are obvious.
    """
    field = field or kind
    versions = sorted(
        entry.version for entry in _REGISTRY.values()
        if entry.kind == kind and entry.name == name
    )
    if not versions:
        known = ", ".join(sorted({e.name for e in _REGISTRY.values() if e.kind == kind}))
        raise SpecError(
            field,
            f"unknown {kind} {name!r} (registered: {known or '<none>'})",
        )
    if version is None:
        version = versions[-1]
    entry = _REGISTRY.get((kind, name, version))
    if entry is None:
        raise SpecError(
            field,
            f"{kind} {name!r} has no version {version} "
            f"(registered versions: {', '.join(map(str, versions))})",
        )
    return entry


def entries(kind: str | None = None) -> tuple[RegistryEntry, ...]:
    """All registered entries (of one kind), sorted by (kind, name, version)."""
    out = [e for e in _REGISTRY.values() if kind is None or e.kind == kind]
    return tuple(sorted(out, key=lambda e: e.key))


def unregister(kind: str, name: str, version: int) -> None:
    """Remove one entry (test hook; production code never unregisters)."""
    _REGISTRY.pop((kind, name, version), None)


def validate_params(
    entry: RegistryEntry,
    given: Mapping[str, Scalar],
    *,
    prefix: str,
    defaults_override: Mapping[str, Scalar] | None = None,
) -> dict[str, Scalar]:
    """Check ``given`` against ``entry.params`` and fill defaults.

    ``prefix`` scopes error fields (``algorithm.n``); ``defaults_override``
    lets a family shift a shared component's defaults (for example dbac
    defaulting the dynadegree selector to ``nearest``) without forking
    the component declaration.
    """
    overrides = dict(defaults_override or {})
    declared = {spec.name: spec for spec in entry.params}
    for key in given:
        if key not in declared:
            known = ", ".join(sorted(declared)) or "<none>"
            raise SpecError(
                f"{prefix}.{key}",
                f"unknown parameter for {entry.kind} {entry.name!r} "
                f"(declared: {known})",
            )
    filled: dict[str, Scalar] = {}
    for name, spec in declared.items():
        if name in given:
            filled[name] = spec.check(f"{prefix}.{name}", given[name])
        elif name in overrides:
            filled[name] = spec.check(f"{prefix}.{name}", overrides[name])
        elif spec.required:
            raise SpecError(
                f"{prefix}.{name}",
                f"required parameter of {entry.kind} {entry.name!r} is missing",
            )
        else:
            filled[name] = spec.default
    return filled


class AlgorithmFamily:
    """Base class for registered algorithm families.

    A family adapts one algorithm (and its component vocabulary) to
    the repo's execution surfaces. Subclasses override the class
    attributes and the ``build``/``trial``/``batch`` trio; everything
    a spec can say about the family is declared as data so the
    conformance suite and the CLI can introspect it.

    Attributes
    ----------
    params:
        Algorithm-section :class:`ParamSpec` declarations.
    components:
        Mapping ``section -> tuple of allowed component names`` (first
        entry is the default used when the spec omits the section).
    component_param_defaults:
        ``{section: {param: default}}`` overrides applied when
        validating that component's parameters under this family.
    harness_defaults:
        Parameter overrides the differential-test harness applies
        (for example a tighter ``max_rounds`` so fuzz grids stay fast).
    conformance:
        ``{adversary_name: (param_dict, ...)}`` -- the tiny
        configurations the auto-enrolling conformance suite runs for
        each algorithm x adversary pairing.
    rounds_param:
        Name of the parameter a spec-level ``rounds`` maps onto
        (``None`` forbids the section for this family).
    """

    params: tuple[ParamSpec, ...] = ()
    components: Mapping[str, tuple[str, ...]] = {}
    component_param_defaults: Mapping[str, Mapping[str, Scalar]] = {}
    harness_defaults: Mapping[str, Scalar] = {}
    conformance: Mapping[str, tuple[Mapping[str, Scalar], ...]] = {}
    rounds_param: str | None = "max_rounds"
    #: Module-level picklable trial function (positional-free kwargs).
    trial: Callable[..., Any] | None = None

    def normalize(self, params: dict[str, Scalar]) -> dict[str, Scalar]:
        """Fill derived defaults (for example ``f`` from ``n``)."""
        return params

    def build(self, *, seed: int, **params: Any) -> dict[str, Any]:
        """Keyword arguments for :func:`repro.sim.runner.run_consensus`."""
        raise NotImplementedError

    def batch(self, seeds: Sequence[int], *, backend: str = "auto", **params: Any):
        """Lock-step lanes (:class:`repro.sim.batch.LaneResult` list)."""
        raise NotImplementedError

    def trial_kwargs(self, params: Mapping[str, Scalar]) -> dict[str, Scalar]:
        """Map resolved flat params onto ``self.trial``'s signature."""
        return dict(params)

    def vectorizable(self, params: Mapping[str, Scalar]) -> bool:
        """Whether the numpy batch backend supports these parameters."""
        return False
