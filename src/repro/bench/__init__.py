"""Benchmark harness: the experiment registry behind EXPERIMENTS.md.

Every table/figure-equivalent claim of the paper maps to one experiment
function here (see DESIGN.md section 3 for the index). Experiments
return :class:`~repro.bench.tables.TableResult` objects that render as
fixed-width tables; ``python -m repro.bench.cli`` runs them from the
command line, and the ``benchmarks/`` pytest-benchmark suite wraps them
with timing and assertions.
"""

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.bench.tables import TableResult, render_table

__all__ = ["EXPERIMENTS", "run_experiment", "TableResult", "render_table"]
