"""Batched-DBAC perf smoke: vectorized Byzantine lanes and compaction.

Measures the lane families the batched Byzantine kernel
(:class:`repro.sim.batch.ByzBatchEngine`) vectorizes and emits a
machine-readable ``BENCH_batch_dbac.json`` so the perf trajectory is
tracked from this PR on (CI runs it at tiny sizes; the
``bench_engine_scaling`` suite runs the same legs at larger ones):

- **dbac** -- aggregate rounds/s for boundary DBAC lanes (``nearest``
  enforcing adversary, equivocating Byzantine nodes) on the serial
  fast path (the python backend is lock-step over fast-path engines)
  vs the vectorized numpy kernel;
- **mobile** -- the same comparison for mobile-omission DAC lanes;
- **compaction** -- long-tailed DBAC grids at capped vector width,
  chunked drain (``compact=False``) vs seed-queue refill
  (``compact=True``).

Also asserts the kernel's identity contracts at tiny sizes (batched
lanes vs independent serial engines by full state key; numpy vs python
backend; compaction on/off equality), so the CI smoke is a correctness
gate as well as a trend line.

Usage::

    python -m repro.bench.batch_smoke --out BENCH_batch_dbac.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.sim.batch import numpy_available, run_byz_batch, run_dbac_batch
from repro.sim.engine import Engine
from repro.workloads import build_dbac_execution


def _serial_dbac_lane(
    n: int, f: int, seed: int, epsilon: float, max_rounds: int = 50_000
) -> tuple[Engine, Any]:
    """One serial engine run of the exact lane the batch engine claims."""
    from repro.workloads import TRIAL_BYZANTINE_STRATEGIES

    factory = TRIAL_BYZANTINE_STRATEGIES["extreme"]
    kwargs = build_dbac_execution(
        n=n,
        f=f,
        epsilon=epsilon,
        seed=seed,
        byzantine_factory=lambda node: factory(),
    )
    engine = Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )
    result = engine.run(
        max_rounds, stop_when=lambda eng: eng.fault_free_range() <= epsilon
    )
    return engine, result


def verify_contracts(n: int = 6) -> dict[str, Any]:
    """The batched Byzantine kernel's identity contracts, at tiny ``n``."""
    f = (n - 1) // 5
    seeds = [0, 1, 2, 3]
    python_lanes = run_dbac_batch(n, f, seeds, backend="python")
    for seed, lane in zip(seeds, python_lanes):
        engine, result = _serial_dbac_lane(n, f, seed, epsilon=1e-3)
        assert lane.rounds == int(result) and lane.stopped == result.stopped, (
            f"python batch lane diverged from serial engine (seed {seed})"
        )
        assert lane.state_keys == {
            node: proc.state_key() for node, proc in engine.processes.items()
        }, f"python batch state diverged from serial engine (seed {seed})"
    checks: dict[str, Any] = {"serial_vs_python_batch": True, "numpy_checked": False}
    if numpy_available():
        numpy_lanes = run_dbac_batch(n, f, seeds, backend="numpy")
        assert numpy_lanes == python_lanes, "numpy DBAC backend diverged"
        compacted = run_dbac_batch(n, f, seeds * 3, width=3, compact=True)
        chunked = run_dbac_batch(n, f, seeds * 3, width=3, compact=False)
        assert compacted == chunked, "lane compaction changed results"
        mobile_python = run_byz_batch(
            n, None, seeds, adversary="mobile-block_min", backend="python"
        )
        mobile_numpy = run_byz_batch(
            n, None, seeds, adversary="mobile-block_min", backend="numpy"
        )
        assert mobile_numpy == mobile_python, "numpy mobile backend diverged"
        checks["numpy_checked"] = True
        checks["compaction_identity"] = True
        checks["mobile_identity"] = True
    return checks


def measure_dbac(
    n: int, lanes: int = 32, epsilon: float = 1e-6
) -> dict[str, Any]:
    """Serial-fast-path vs vectorized aggregate rounds/s for DBAC lanes."""
    f = (n - 1) // 5
    seeds = list(range(lanes))
    start = time.perf_counter()
    serial = run_dbac_batch(n, f, seeds, epsilon=epsilon, backend="python")
    serial_s = max(time.perf_counter() - start, 1e-9)
    rounds = sum(lane.rounds for lane in serial)
    start = time.perf_counter()
    batched = run_dbac_batch(n, f, seeds, epsilon=epsilon)
    batched_s = max(time.perf_counter() - start, 1e-9)
    assert batched == serial, "batched DBAC lanes diverged from the serial path"
    return {
        "n": n,
        "f": f,
        "lanes": lanes,
        "epsilon": epsilon,
        "total_rounds": rounds,
        "serial_rounds_per_s": rounds / serial_s,
        "batched_rounds_per_s": rounds / batched_s,
        "speedup": serial_s / batched_s,
        "backend": "numpy" if numpy_available() else "python",
    }


def measure_mobile(
    n: int, lanes: int = 32, mode: str = "block_min", epsilon: float = 1e-6
) -> dict[str, Any]:
    """Serial-fast-path vs vectorized rounds/s for mobile-omission lanes."""
    seeds = list(range(lanes))
    adversary = f"mobile-{mode}"
    start = time.perf_counter()
    serial = run_byz_batch(
        n, None, seeds, adversary=adversary, epsilon=epsilon, backend="python"
    )
    serial_s = max(time.perf_counter() - start, 1e-9)
    rounds = sum(lane.rounds for lane in serial)
    start = time.perf_counter()
    batched = run_byz_batch(n, None, seeds, adversary=adversary, epsilon=epsilon)
    batched_s = max(time.perf_counter() - start, 1e-9)
    assert batched == serial, "batched mobile lanes diverged from the serial path"
    return {
        "n": n,
        "mode": mode,
        "lanes": lanes,
        "epsilon": epsilon,
        "total_rounds": rounds,
        "serial_rounds_per_s": rounds / serial_s,
        "batched_rounds_per_s": rounds / batched_s,
        "speedup": serial_s / batched_s,
        "backend": "numpy" if numpy_available() else "python",
    }


def measure_compaction(
    n: int, seeds_total: int = 64, width: int = 8, epsilon: float = 1e-6
) -> dict[str, Any]:
    """Chunked drain vs seed-queue compaction at capped vector width.

    Long-tailed grids are where compaction earns its keep: without it
    every ``width``-sized chunk waits for its slowest lane before the
    next chunk may start; with it, freed rows restart on queued seeds
    immediately. Results are asserted identical.
    """
    f = (n - 1) // 5
    seeds = list(range(seeds_total))
    start = time.perf_counter()
    chunked = run_dbac_batch(n, f, seeds, epsilon=epsilon, width=width, compact=False)
    chunked_s = max(time.perf_counter() - start, 1e-9)
    start = time.perf_counter()
    compacted = run_dbac_batch(n, f, seeds, epsilon=epsilon, width=width, compact=True)
    compacted_s = max(time.perf_counter() - start, 1e-9)
    assert compacted == chunked, "lane compaction changed results"
    rounds = sum(lane.rounds for lane in chunked)
    return {
        "n": n,
        "f": f,
        "seeds": seeds_total,
        "width": width,
        "epsilon": epsilon,
        "total_rounds": rounds,
        "chunked_rounds_per_s": rounds / chunked_s,
        "compacted_rounds_per_s": rounds / compacted_s,
        "compaction_speedup": chunked_s / compacted_s,
    }


def run_smoke(n: int = 11, lanes: int = 16) -> dict[str, Any]:
    """All legs at one size; the payload written to BENCH_batch_dbac.json."""
    return {
        "bench": "batch_dbac",
        "contracts": verify_contracts(min(n, 6)),
        "dbac": measure_dbac(n=n, lanes=lanes),
        "mobile": measure_mobile(n=n, lanes=lanes),
        "compaction": measure_compaction(
            n=n, seeds_total=4 * lanes, width=max(2, lanes // 2)
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-batch-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--n", type=int, default=11, help="network size (default 11)")
    parser.add_argument(
        "--lanes", type=int, default=16, help="batch lanes B (default 16)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_batch_dbac.json",
        help="JSON output path (default BENCH_batch_dbac.json)",
    )
    args = parser.parse_args(argv)
    payload = run_smoke(n=args.n, lanes=args.lanes)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    dbac = payload["dbac"]
    mobile = payload["mobile"]
    compaction = payload["compaction"]
    print(f"contracts: {payload['contracts']}")
    print(
        f"dbac    n={dbac['n']} f={dbac['f']} B={dbac['lanes']}: "
        f"{dbac['batched_rounds_per_s']:.0f} rounds/s "
        f"({dbac['speedup']:.2f}x vs serial fast path, {dbac['backend']})"
    )
    print(
        f"mobile  n={mobile['n']} {mobile['mode']} B={mobile['lanes']}: "
        f"{mobile['batched_rounds_per_s']:.0f} rounds/s "
        f"({mobile['speedup']:.2f}x vs serial fast path)"
    )
    print(
        f"compact n={compaction['n']} width={compaction['width']} "
        f"seeds={compaction['seeds']}: {compaction['compaction_speedup']:.2f}x "
        f"vs chunked drain"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
