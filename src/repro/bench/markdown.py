"""Markdown rendering of experiment results.

``python -m repro.bench.cli --full --markdown results.md`` regenerates
a machine-written companion to EXPERIMENTS.md: every experiment's table
as GitHub-flavored markdown, with pass/fail badges and the notes as
footnotes. Useful for CI artifacts and for diffing runs across
versions.
"""

from __future__ import annotations

from repro.bench.tables import TableResult


def table_to_markdown(result: TableResult) -> str:
    """One experiment as a markdown section."""
    status = "PASS" if result.passed else "**FAIL**"
    lines = [
        f"## {result.experiment_id} — {result.title}",
        "",
        f"Status: {status}",
        "",
        "| " + " | ".join(result.headers) + " |",
        "|" + "|".join("---" for _ in result.headers) + "|",
    ]
    for row in result.rows:
        lines.append("| " + " | ".join(_escape(cell) for cell in row) + " |")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def report_to_markdown(results: list[TableResult], title: str = "Experiment results") -> str:
    """A full multi-experiment markdown report with a summary table."""
    lines = [
        f"# {title}",
        "",
        "| experiment | title | status |",
        "|---|---|---|",
    ]
    for result in results:
        badge = "PASS" if result.passed else "**FAIL**"
        lines.append(f"| {result.experiment_id} | {_escape(result.title)} | {badge} |")
    lines.append("")
    for result in results:
        lines.append(table_to_markdown(result))
    return "\n".join(lines)


def _escape(cell: str) -> str:
    return cell.replace("|", "\\|")
