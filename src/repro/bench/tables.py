"""Fixed-width table rendering for experiment results.

The paper has no numeric tables (its results are theorems); the
harness prints, for every claim, a table pairing "paper says" with the
measured quantity so EXPERIMENTS.md can record both.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TableResult:
    """One experiment's rendered outcome."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    passed: bool = True

    def add_row(self, *cells: object) -> None:
        """Append one row; cells are stringified."""
        row = [_format_cell(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def add_note(self, note: str) -> None:
        """Append a free-text footnote."""
        self.notes.append(note)

    def fail(self, reason: str) -> None:
        """Mark the experiment as not reproducing the claim."""
        self.passed = False
        self.notes.append(f"FAILED: {reason}")

    def render(self) -> str:
        """The full fixed-width rendering."""
        return render_table(self)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_table(result: TableResult) -> str:
    """Render one :class:`TableResult` as a fixed-width text block."""
    widths = [len(h) for h in result.headers]
    for row in result.rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths)).rstrip()

    status = "PASS" if result.passed else "FAIL"
    out = [
        f"== {result.experiment_id}: {result.title} [{status}] ==",
        line(result.headers),
        line(["-" * w for w in widths]),
    ]
    out.extend(line(row) for row in result.rows)
    for note in result.notes:
        out.append(f"  note: {note}")
    return "\n".join(out)
