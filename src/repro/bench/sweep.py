"""Parameter-sweep driver: cartesian grids over execution builders.

The experiment functions in :mod:`repro.bench.experiments` hand-roll
their loops for readability; this module is the general-purpose
version exposed to users: declare a grid, point it at a runner
callback, get structured records back with grouping/aggregation
helpers and table/markdown rendering.

Example
-------
>>> from repro.bench.sweep import Sweep
>>> from repro.sim.runner import run_consensus
>>> from repro.workloads import build_dac_execution
>>> sweep = Sweep(grid={"n": [5, 9], "window": [1, 3]}, repeats=2)
>>> records = sweep.run(
...     lambda n, window, seed: run_consensus(
...         **build_dac_execution(n=n, f=(n - 1) // 2, seed=seed, window=window)
...     ).rounds
... )
>>> len(records)
8
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.statistics import Summary, summarize
from repro.bench.tables import TableResult
from repro.sim.parallel import TrialSpec, run_trials


@dataclass(frozen=True)
class SweepRecord:
    """One cell of a sweep: the parameter assignment and its result."""

    params: tuple[tuple[str, Any], ...]
    seed: int
    result: Any

    def param(self, name: str) -> Any:
        """Value of one parameter in this record."""
        for key, value in self.params:
            if key == name:
                return value
        available = ", ".join(repr(key) for key, _ in self.params) or "<none>"
        raise KeyError(
            f"no parameter {name!r} in record {self.params!r} "
            f"(seed={self.seed}; available parameters: {available})"
        )


@dataclass
class Sweep:
    """A cartesian parameter grid with per-cell repetition.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the values to sweep. The
        cartesian product of all values is executed.
    repeats:
        Trials per cell; trial ``i`` receives ``seed = seed0 + i``.
    seed0:
        Base seed for the repetition counter.
    """

    grid: Mapping[str, Sequence[Any]]
    repeats: int = 1
    seed0: int = 0
    records: list[SweepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep needs at least one parameter")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def cells(self) -> list[dict[str, Any]]:
        """All parameter assignments, in deterministic order."""
        names = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            out.append(dict(zip(names, combo)))
        return out

    def run(
        self,
        fn: Callable[..., Any] | str | Any,
        *,
        workers: int | None = None,
        batch: int | None = None,
        batch_fn: Callable[..., Sequence[Any]] | None = None,
        pool: str | None = None,
        arenas: bool | None = None,
    ) -> list[SweepRecord]:
        """Execute ``fn(**params, seed=...)`` over the whole grid.

        ``fn`` may also be a **scenario spec** -- a
        :class:`repro.scenario.ScenarioSpec` or its text/JSON form
        (see ``docs/scenarios.md``). The spec resolves through the
        registry (:func:`repro.scenario.resolve_trial`) to the
        family's module-level trial function plus its fully-defaulted
        parameters; grid cells override spec parameters key-by-key,
        and the ``batch_fn``/``arena_plan`` attachments ride along, so
        every knob below works identically for spec-driven sweeps.
        The spec's own ``seed`` is ignored here -- sweep seeding stays
        with ``seed0``/``repeats``.

        ``workers`` fans independent trials out over a process pool
        (see :mod:`repro.sim.parallel`): ``1`` runs serially
        in-process, ``0`` means one worker per CPU, and ``None`` (the
        default) uses the process-wide default (serial unless a CLI
        ``--workers`` flag raised it). Seeds are scheduled before any
        dispatch and results are collected in grid order, so the
        records are identical -- same results, same order -- for every
        worker count; parallelism is purely a speed knob. ``fn`` must
        be picklable (a module-level function) when more than one
        worker is used.

        ``batch`` composes the second speed knob: repeats of one grid
        cell are grouped into single calls of a *batched* trial
        function (``batch_fn``, defaulting to ``fn``'s ``batch_fn``
        attribute -- e.g. :func:`repro.workloads.run_dac_trial` carries
        its :mod:`repro.sim.batch`-backed form). Batching is equally a
        pure speed knob: ``workers=N, batch=B`` records are identical
        to ``workers=1, batch=1`` records. ``None`` uses the
        process-wide default (a CLI ``--batch`` flag), which degrades
        to unbatched execution for functions without a batched form.

        ``pool`` and ``arenas`` pass through to
        :func:`repro.sim.parallel.run_trials`: by default parallel runs
        reuse the persistent module-level worker pool (and publish
        shared-memory structure tables for batched dispatch);
        ``pool="fresh"`` spins a pool up for this call only and
        ``arenas=False`` disables table publication. Both are pure
        speed knobs -- records are identical in any combination.

        Results are collected into :attr:`records` (appending across
        multiple ``run`` calls) and returned.
        """
        base: dict[str, Any] = {}
        if not callable(fn):
            from repro.scenario.resolve import resolve_trial

            fn, base = resolve_trial(fn)
        specs = [
            TrialSpec(tuple(sorted({**base, **cell}.items())), self.seed0 + trial)
            for cell in self.cells()
            for trial in range(self.repeats)
        ]
        results = run_trials(
            fn,
            specs,
            workers=workers,
            batch=batch,
            batch_fn=batch_fn,
            pool=pool,
            arenas=arenas,
        )
        new_records = [
            SweepRecord(spec.params, spec.seed, result)
            for spec, result in zip(specs, results)
        ]
        self.records.extend(new_records)
        return new_records

    # -- Aggregation -----------------------------------------------------

    def group_by(self, *names: str) -> dict[tuple, list[SweepRecord]]:
        """Bucket the records by the given parameter names.

        Raises ``ValueError`` when any accumulated record lacks one of
        the names. That happens when :meth:`run` was called more than
        once over different grids (records append across runs): group
        only by parameters common to every grid, or use a fresh Sweep
        per grid.
        """
        groups: dict[tuple, list[SweepRecord]] = {}
        for record in self.records:
            try:
                key = tuple(record.param(name) for name in names)
            except KeyError as exc:
                raise ValueError(
                    f"cannot group heterogeneous records by {names!r}: "
                    f"{exc.args[0]}. Records accumulated from runs over "
                    "different grids can only be grouped by their common "
                    "parameters."
                ) from exc
            groups.setdefault(key, []).append(record)
        return groups

    def summarize_by(
        self, *names: str, value: Callable[[SweepRecord], float] = lambda r: float(r.result)
    ) -> dict[tuple, Summary]:
        """Per-group statistics of a numeric projection of the results."""
        return {
            key: summarize([value(r) for r in records])
            for key, records in self.group_by(*names).items()
        }

    def to_table(
        self,
        *names: str,
        title: str = "sweep",
        experiment_id: str = "SWEEP",
        value: Callable[[SweepRecord], float] = lambda r: float(r.result),
    ) -> TableResult:
        """Render grouped mean +/- CI as a :class:`TableResult`."""
        table = TableResult(
            experiment_id,
            title,
            [*names, "trials", "mean", "ci low", "ci high"],
        )
        for key, stats in sorted(self.summarize_by(*names, value=value).items()):
            table.add_row(*key, stats.count, stats.mean, stats.ci_low, stats.ci_high)
        return table
