"""Parameter-sweep driver: cartesian grids over execution builders.

The experiment functions in :mod:`repro.bench.experiments` hand-roll
their loops for readability; this module is the general-purpose
version exposed to users: declare a grid, point it at a runner
callback, get structured records back with grouping/aggregation
helpers and table/markdown rendering.

Example
-------
>>> from repro.bench.sweep import Sweep
>>> from repro.sim.runner import run_consensus
>>> from repro.workloads import build_dac_execution
>>> sweep = Sweep(grid={"n": [5, 9], "window": [1, 3]}, repeats=2)
>>> records = sweep.run(
...     lambda n, window, seed: run_consensus(
...         **build_dac_execution(n=n, f=(n - 1) // 2, seed=seed, window=window)
...     ).rounds
... )
>>> len(records)
8
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from repro.analysis.statistics import Summary, summarize
from repro.bench.tables import TableResult


@dataclass(frozen=True)
class SweepRecord:
    """One cell of a sweep: the parameter assignment and its result."""

    params: tuple[tuple[str, Any], ...]
    seed: int
    result: Any

    def param(self, name: str) -> Any:
        """Value of one parameter in this record."""
        for key, value in self.params:
            if key == name:
                return value
        raise KeyError(f"no parameter {name!r} in {self.params}")


@dataclass
class Sweep:
    """A cartesian parameter grid with per-cell repetition.

    Parameters
    ----------
    grid:
        Mapping from parameter name to the values to sweep. The
        cartesian product of all values is executed.
    repeats:
        Trials per cell; trial ``i`` receives ``seed = seed0 + i``.
    seed0:
        Base seed for the repetition counter.
    """

    grid: Mapping[str, Sequence[Any]]
    repeats: int = 1
    seed0: int = 0
    records: list[SweepRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ValueError("sweep needs at least one parameter")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")

    def cells(self) -> list[dict[str, Any]]:
        """All parameter assignments, in deterministic order."""
        names = list(self.grid)
        out = []
        for combo in itertools.product(*(self.grid[name] for name in names)):
            out.append(dict(zip(names, combo)))
        return out

    def run(self, fn: Callable[..., Any]) -> list[SweepRecord]:
        """Execute ``fn(**params, seed=...)`` over the whole grid.

        Results are collected into :attr:`records` (appending across
        multiple ``run`` calls) and returned.
        """
        new_records = []
        for cell in self.cells():
            for trial in range(self.repeats):
                seed = self.seed0 + trial
                result = fn(**cell, seed=seed)
                record = SweepRecord(tuple(sorted(cell.items())), seed, result)
                new_records.append(record)
        self.records.extend(new_records)
        return new_records

    # -- Aggregation -----------------------------------------------------

    def group_by(self, *names: str) -> dict[tuple, list[SweepRecord]]:
        """Bucket the records by the given parameter names."""
        groups: dict[tuple, list[SweepRecord]] = {}
        for record in self.records:
            key = tuple(record.param(name) for name in names)
            groups.setdefault(key, []).append(record)
        return groups

    def summarize_by(
        self, *names: str, value: Callable[[SweepRecord], float] = lambda r: float(r.result)
    ) -> dict[tuple, Summary]:
        """Per-group statistics of a numeric projection of the results."""
        return {
            key: summarize([value(r) for r in records])
            for key, records in self.group_by(*names).items()
        }

    def to_table(
        self,
        *names: str,
        title: str = "sweep",
        experiment_id: str = "SWEEP",
        value: Callable[[SweepRecord], float] = lambda r: float(r.result),
    ) -> TableResult:
        """Render grouped mean +/- CI as a :class:`TableResult`."""
        table = TableResult(
            experiment_id,
            title,
            [*names, "trials", "mean", "ci low", "ci high"],
        )
        for key, stats in sorted(self.summarize_by(*names, value=value).items()):
            table.add_row(*key, stats.count, stats.mean, stats.ci_low, stats.ci_high)
        return table
