"""Command-line experiment runner.

Usage::

    python -m repro.bench.cli                 # run everything, quick grid
    python -m repro.bench.cli --full          # full grids (slower)
    python -m repro.bench.cli -e E1 -e I4     # selected experiments
    python -m repro.bench.cli --workers 4     # parallel sweep default
    python -m repro.bench.cli --batch 8       # batched lock-step trials
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.registry import EXPERIMENTS, run_experiment
from repro.sim.parallel import set_default_batch, set_default_workers


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the paper's claims (see DESIGN.md for the index).",
    )
    parser.add_argument(
        "-e",
        "--experiment",
        action="append",
        dest="experiments",
        metavar="ID",
        help="experiment id (repeatable); default: all",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="run the full parameter grids instead of the quick ones",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="list experiment ids and exit",
    )
    parser.add_argument(
        "--markdown",
        metavar="PATH",
        default=None,
        help="additionally write the results as a markdown report",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="default worker processes for sweep-based experiments "
        "(0 = one per CPU); results are identical for every worker count",
    )
    parser.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="B",
        help="default lock-step batch size for sweep-based experiments "
        "(repro.sim.batch; composes with --workers); results are "
        "identical for every batch size",
    )
    args = parser.parse_args(argv)

    # Experiments built on repro.bench.sweep.Sweep pick these defaults
    # up without every experiment function growing extra parameters.
    set_default_workers(args.workers)
    set_default_batch(args.batch)

    if args.list:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    selected = args.experiments or list(EXPERIMENTS)
    results = []
    all_passed = True
    for experiment_id in selected:
        start = time.perf_counter()
        result = run_experiment(experiment_id, quick=not args.full)
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"  ({elapsed:.2f}s)")
        print()
        results.append(result)
        all_passed = all_passed and result.passed

    if args.markdown:
        from pathlib import Path

        from repro.bench.markdown import report_to_markdown

        grid = "full" if args.full else "quick"
        Path(args.markdown).write_text(
            report_to_markdown(results, title=f"Experiment results ({grid} grid)")
        )
        print(f"markdown report written to {args.markdown}")
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
