"""Consensus-as-a-service perf smoke: cold vs cache-hit vs coalesced.

Measures the service stack of :mod:`repro.service` end to end -- HTTP
round trip, job queue, dispatch onto the persistent pool, and the
content-addressed result cache -- and emits a machine-readable
``BENCH_service.json`` so the latency trajectory is tracked:

- **cold** -- first submission of a scenario: every seed computed
  through ``run_trials`` on the warm pool;
- **cache hit** -- the same scenario resubmitted with a *different
  spelling* (defaults elided vs explicit, sections reordered): the
  canonical-fixpoint identity must map it onto the cached entries, so
  the job runs no trials at all;
- **coalesced** -- the same scenario submitted twice concurrently at
  fresh seeds: the second request must piggyback on the first's
  in-flight computation instead of computing again.

Every leg's payload is asserted byte-identical (canonical JSON) to the
others and to direct ``resolve(spec).run(seed)`` executions first, so
the CI smoke is a correctness gate -- the daemon adds transport and
caching, never behaviour -- as well as a trend line.

Usage::

    python -m repro.bench.service_smoke --out BENCH_service.json
    python -m repro.bench.service_smoke --n 13 --seeds 8 --workers 4
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Any

from repro.scenario import resolve
from repro.service import BackgroundServer, ServiceClient


def _spec(n: int) -> str:
    """The benchmark scenario, defaults elided."""
    return f"algorithm: dac@1(n={n}); rounds: 500"


def _spec_respelled(n: int) -> str:
    """The same scenario, defaults explicit and differently ordered."""
    return f"algorithm: dac@1(epsilon=1e-3, n={n}); seed: 0; rounds: 500"


def _canonical(payload: dict[str, Any]) -> str:
    """Seed-to-result mapping as canonical JSON (order-independent)."""
    return json.dumps(
        {str(row["seed"]): row["result"] for row in payload["results"]},
        sort_keys=True,
    )


def verify_contracts(client: ServiceClient, n: int, seeds: list[int]) -> dict[str, Any]:
    """Service-vs-direct identity and cache-key identity (asserted)."""
    first = client.submit(_spec(n), seeds=seeds)
    assert all(row["status"] == "computed" for row in first["results"]), (
        "first submission must compute every seed"
    )
    respelled = client.submit(_spec_respelled(n), seeds=seeds)
    assert respelled["scenario"] == first["scenario"], (
        "differently-spelled spec must resolve to the same scenario key"
    )
    assert all(row["status"] == "hit" for row in respelled["results"]), (
        "respelled resubmission must be served from cache"
    )
    assert _canonical(respelled) == _canonical(first), (
        "cached payload diverged from the computed one"
    )
    resolved = resolve(_spec(n))
    direct = {seed: resolved.run(seed) for seed in seeds}
    service = {row["seed"]: row["result"] for row in first["results"]}
    assert json.dumps(service, sort_keys=True) == json.dumps(direct, sort_keys=True), (
        "service results diverged from direct resolve(spec).run(seed)"
    )
    return {
        "scenario": first["scenario"],
        "respelled_all_hits": True,
        "direct_identity": True,
    }


def measure_latency(
    client: ServiceClient, n: int, seeds: list[int]
) -> dict[str, Any]:
    """Wall-clock latency of the cold, cache-hit and coalesced legs.

    The coalesced leg fires two concurrent submissions at fresh seeds:
    the daemon's in-flight map shares one computation between them, so
    both finish in roughly one computation's time.
    """
    cold_seeds = [seed + 1000 for seed in seeds]
    started = time.perf_counter()
    cold = client.submit(_spec(n), seeds=cold_seeds)
    cold_s = max(time.perf_counter() - started, 1e-9)
    assert all(row["status"] == "computed" for row in cold["results"])

    started = time.perf_counter()
    hit = client.submit(_spec_respelled(n), seeds=cold_seeds)
    hit_s = max(time.perf_counter() - started, 1e-9)
    assert all(row["status"] == "hit" for row in hit["results"])
    assert _canonical(hit) == _canonical(cold)

    coalesced_seeds = [seed + 2000 for seed in seeds]
    payloads: list[dict[str, Any]] = [{}, {}]

    def submit(slot: int) -> None:
        payloads[slot] = client.submit(_spec(n), seeds=coalesced_seeds)

    racer = threading.Thread(target=submit, args=(0,))
    started = time.perf_counter()
    racer.start()
    submit(1)
    racer.join()
    coalesced_s = max(time.perf_counter() - started, 1e-9)
    assert _canonical(payloads[0]) == _canonical(payloads[1]), (
        "concurrent submissions of one scenario returned different payloads"
    )
    shared = sum(payload["coalesced"] + payload["hit"] for payload in payloads)
    computed = sum(payload["computed"] for payload in payloads)
    return {
        "n": n,
        "seeds": len(seeds),
        "cold_s": cold_s,
        "cache_hit_s": hit_s,
        "coalesced_pair_s": coalesced_s,
        "hit_speedup": cold_s / hit_s,
        "coalesced_shared_trials": shared,
        "coalesced_computed_trials": computed,
    }


def run_smoke(n: int, seeds: int, workers: int, batch: int) -> dict[str, Any]:
    """All legs against one ephemeral daemon; the BENCH_service.json payload."""
    seed_list = list(range(seeds))
    with BackgroundServer(workers=workers, batch=batch) as server:
        client = ServiceClient(server.host, server.port)
        contracts = verify_contracts(client, n, seed_list)
        latency = measure_latency(client, n, seed_list)
        stats = client.stats()
    return {
        "bench": "service",
        "workers": workers,
        "batch": batch,
        "contracts": contracts,
        "latency": latency,
        "stats": stats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--n", type=int, default=9, help="network size of the benchmark spec"
    )
    parser.add_argument(
        "--seeds", type=int, default=4, help="seeds per submission (default 4)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool width behind the daemon"
    )
    parser.add_argument(
        "--batch", type=int, default=1, help="lanes per batched call (default 1)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_service.json",
        help="JSON output path (default BENCH_service.json)",
    )
    args = parser.parse_args(argv)
    payload = run_smoke(args.n, seeds=args.seeds, workers=args.workers, batch=args.batch)
    print(f"contracts: {payload['contracts']}")
    leg = payload["latency"]
    print(
        f"n={leg['n']:3d}: cold {leg['cold_s'] * 1e3:.1f}ms, "
        f"hit {leg['cache_hit_s'] * 1e3:.1f}ms "
        f"({leg['hit_speedup']:.1f}x), coalesced pair "
        f"{leg['coalesced_pair_s'] * 1e3:.1f}ms "
        f"({leg['coalesced_shared_trials']} shared / "
        f"{leg['coalesced_computed_trials']} computed trials)"
    )
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
