"""The experiment registry: id -> function, used by the CLI and benches."""

from __future__ import annotations

from collections.abc import Callable

from repro.bench.experiments import (
    experiment_e1,
    experiment_e2,
    experiment_e3,
    experiment_e4,
    experiment_e5,
    experiment_f1,
    experiment_i1,
    experiment_i2,
    experiment_i4,
    experiment_s1,
    experiment_s2,
    experiment_s3,
    experiment_s4,
    experiment_x1,
    experiment_x2,
    experiment_x3,
    experiment_x4,
)
from repro.bench.experiments_ext import (
    experiment_x5,
    experiment_x6,
    experiment_x7,
    experiment_x8,
)
from repro.bench.tables import TableResult

EXPERIMENTS: dict[str, Callable[[bool], TableResult]] = {
    "F1": experiment_f1,
    "E1": experiment_e1,
    "E2": experiment_e2,
    "E3": experiment_e3,
    "E4": experiment_e4,
    "E5": experiment_e5,
    "I1": experiment_i1,
    "I2": experiment_i2,
    "I4": experiment_i4,
    "X1": experiment_x1,
    "X2": experiment_x2,
    "X3": experiment_x3,
    "X4": experiment_x4,
    "X5": experiment_x5,
    "X6": experiment_x6,
    "X7": experiment_x7,
    "X8": experiment_x8,
    "S1": experiment_s1,
    "S2": experiment_s2,
    "S3": experiment_s3,
    "S4": experiment_s4,
}


def run_experiment(experiment_id: str, quick: bool = True) -> TableResult:
    """Run one experiment by its DESIGN.md id (e.g. ``"E1"``)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key](quick)
