"""Zero-copy dispatch perf smoke: persistent pool + shared-memory arenas.

Measures the dispatch stack the PR 8 scale-out rewrite targeted and
emits a machine-readable ``BENCH_parallel.json`` so the perf
trajectory is tracked (CI runs it at tiny sizes; the acceptance run
uses n = 33 and 65):

- **serial** -- the in-process reference every other leg must match
  bit for bit;
- **cold pool** -- batched dispatch including pool startup (the price
  the first sweep of a session pays);
- **warm pool** -- the same dispatch on the already-running pool with
  arenas published: the steady-state regime persistent pools buy;
- **fresh pool** -- a pool spun up for the call and torn down after
  (the pre-persistent-pool behaviour, ``pool="fresh"``);
- **no arenas** -- warm pool with shared-memory table publication
  disabled, isolating the arena contribution.

Every timed leg's results are asserted equal to the serial reference
first (pooled-vs-serial identity), so the CI smoke is a correctness
gate as well as a trend line.

Usage::

    python -m repro.bench.parallel_smoke --out BENCH_parallel.json
    python -m repro.bench.parallel_smoke --n 33 --n 65 --repeats 12
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Callable

from repro.sim.arena import arenas_available
from repro.sim.parallel import TrialSpec, close_pool, run_trials
from repro.workloads import run_dac_trial

from repro.sim import parallel as _parallel


def _specs(n: int, repeats: int) -> list[TrialSpec]:
    """One boundary-DAC trial spec per seed: the sweep shape CLIs emit."""
    return [TrialSpec((("n", n),), seed=seed) for seed in range(repeats)]


def _timed(fn: Callable[[], list[Any]]) -> tuple[list[Any], float]:
    start = time.perf_counter()
    results = fn()
    return results, max(time.perf_counter() - start, 1e-9)


def verify_contracts(n: int = 9, workers: int = 2) -> dict[str, Any]:
    """Pooled-vs-serial identity across every dispatch mode (asserted)."""
    specs = _specs(n, 6)
    close_pool()
    serial = run_trials(run_dac_trial, specs, workers=1)
    checks: dict[str, Any] = {}
    for label, kwargs in (
        ("persist-batched", {"workers": workers, "batch": 3}),
        ("persist-unbatched", {"workers": workers}),
        ("fresh-batched", {"workers": workers, "batch": 3, "pool": "fresh"}),
        ("no-arenas", {"workers": workers, "batch": 3, "arenas": False}),
    ):
        pooled = run_trials(run_dac_trial, specs, **kwargs)
        assert pooled == serial, f"dispatch mode {label!r} diverged from serial"
        checks[label] = True
    # The persist legs above must have shared one warm pool; fresh/serial
    # legs must not have replaced it.
    assert _parallel._pool_executor is not None, "persistent pool missing"
    checks["arenas_available"] = arenas_available()
    close_pool()
    return checks


def measure_dispatch(
    n: int, repeats: int, workers: int, batch: int
) -> dict[str, Any]:
    """Aggregate trial rounds/s of each dispatch leg at size ``n``.

    The metric is total simulated rounds across the sweep divided by
    wall time, so pool startup, pickling and table shipping all land
    in the denominator -- exactly the cost a sweep user sees.
    """
    specs = _specs(n, repeats)
    serial, serial_s = _timed(lambda: run_trials(run_dac_trial, specs, workers=1))
    total_rounds = sum(result["rounds"] for result in serial)

    close_pool()
    cold, cold_s = _timed(
        lambda: run_trials(run_dac_trial, specs, workers=workers, batch=batch)
    )
    warm, warm_s = _timed(
        lambda: run_trials(run_dac_trial, specs, workers=workers, batch=batch)
    )
    bare, bare_s = _timed(
        lambda: run_trials(
            run_dac_trial, specs, workers=workers, batch=batch, arenas=False
        )
    )
    close_pool()
    fresh, fresh_s = _timed(
        lambda: run_trials(
            run_dac_trial, specs, workers=workers, batch=batch, pool="fresh"
        )
    )
    for label, results in (
        ("cold", cold),
        ("warm", warm),
        ("no-arenas", bare),
        ("fresh", fresh),
    ):
        assert results == serial, f"timed leg {label!r} diverged from serial"
    return {
        "n": n,
        "repeats": repeats,
        "total_rounds": total_rounds,
        "serial_rounds_per_s": total_rounds / serial_s,
        "cold_pool_rounds_per_s": total_rounds / cold_s,
        "warm_pool_rounds_per_s": total_rounds / warm_s,
        "fresh_pool_rounds_per_s": total_rounds / fresh_s,
        "no_arenas_rounds_per_s": total_rounds / bare_s,
        "warm_vs_fresh_speedup": fresh_s / warm_s,
        "warm_vs_cold_speedup": cold_s / warm_s,
        "arenas_speedup": bare_s / warm_s,
    }


def run_smoke(
    sizes: list[int], repeats: int, workers: int, batch: int
) -> dict[str, Any]:
    """All legs at every size; the payload written to BENCH_parallel.json."""
    payload: dict[str, Any] = {
        "bench": "parallel",
        "workers": workers,
        "batch": batch,
        "contracts": verify_contracts(min(min(sizes), 9), workers=workers),
        "sizes": [
            measure_dispatch(n, repeats=repeats, workers=workers, batch=batch)
            for n in sizes
        ],
    }
    close_pool()
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-parallel-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--n",
        type=int,
        action="append",
        dest="sizes",
        metavar="N",
        help="network size; repeatable (default: one run at 13)",
    )
    parser.add_argument(
        "--repeats", type=int, default=8, help="trials per size (default 8)"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="pool width (default 2)"
    )
    parser.add_argument(
        "--batch", type=int, default=4, help="seeds per batched call (default 4)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_parallel.json",
        help="JSON output path (default BENCH_parallel.json)",
    )
    args = parser.parse_args(argv)
    sizes = args.sizes or [13]
    payload = run_smoke(
        sizes, repeats=args.repeats, workers=args.workers, batch=args.batch
    )
    print(f"contracts: {payload['contracts']}")
    for leg in payload["sizes"]:
        print(
            f"n={leg['n']:3d}: serial {leg['serial_rounds_per_s']:.0f}, "
            f"cold {leg['cold_pool_rounds_per_s']:.0f}, "
            f"warm {leg['warm_pool_rounds_per_s']:.0f}, "
            f"fresh {leg['fresh_pool_rounds_per_s']:.0f}, "
            f"no-arenas {leg['no_arenas_rounds_per_s']:.0f} rounds/s "
            f"(warm {leg['warm_vs_fresh_speedup']:.2f}x vs fresh, "
            f"{leg['warm_vs_cold_speedup']:.2f}x vs cold, "
            f"arenas {leg['arenas_speedup']:.2f}x)"
        )
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
