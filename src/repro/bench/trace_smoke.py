"""Trace/observer perf smoke: the cost of watching an execution.

PR 7 moved traced and observed rounds onto the port-major delivery
sweep (snapshots assembled after delivery, behind one branch) and
added the streaming v3 trace spill plus the ``repro.obs`` bus. This
smoke tracks what each consumer costs, in rounds/s on the enforced
fault-free DAC family, and emits ``BENCH_trace.json`` so CI keeps the
trend line:

- **untraced** -- the bare sweep: no sink, no observers (the fast
  path; the observation branch's only cost is one boolean check per
  round, the PR's <2% regression budget);
- **traced-sweep** -- ``record_trace=True`` on the sweep vs
  **traced-legacy**, the retained sender-major loop with its inline
  snapshot path (the pre-PR 7 traced implementation);
- **traced-spill** -- the same traced sweep streaming through a
  :class:`~repro.sim.persistence.TraceWriter` v3 sink instead of the
  in-memory trace;
- **observed** -- no trace, an observer bus with a
  :class:`~repro.obs.MetricsAggregator` attached (snapshot assembly
  plus event fan-out).

Also asserts the observation identity contracts at tiny ``n`` (traced
sweep == traced legacy == untraced == observed by full state key, and
the spilled file re-reads to the identical trace), so the CI smoke is
a correctness gate as well as a trend line.

Usage::

    python -m repro.bench.trace_smoke --out BENCH_trace.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from typing import Any

from repro.obs import MetricsAggregator, ObserverBus, attach_engine
from repro.sim.engine import Engine
from repro.sim.persistence import TraceWriter, load_trace, trace_to_dict
from repro.workloads import build_dac_execution


def _make_engine(
    kwargs: dict[str, Any],
    *,
    use_sweep: bool = True,
    record_trace: bool = False,
    trace_sink: Any | None = None,
    observe: bool = False,
) -> Engine:
    engine = Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=record_trace,
        trace_sink=trace_sink,
    )
    engine._use_sweep = use_sweep
    if observe:
        bus = ObserverBus()
        bus.attach(MetricsAggregator())
        attach_engine(bus, engine)
    return engine


def _state(engine: Engine) -> dict[int, tuple]:
    return {node: proc.state_key() for node, proc in engine.processes.items()}


def verify_contracts(n: int = 9, rounds: int = 40) -> dict[str, Any]:
    """The observation identity contracts at tiny ``n`` (asserted)."""
    checks: dict[str, Any] = {}
    for seed in (0, 1):
        build = lambda: build_dac_execution(  # noqa: E731
            n=n, f=(n - 1) // 2, seed=seed
        )
        bare = _make_engine(build())
        traced = _make_engine(build(), record_trace=True)
        legacy = _make_engine(build(), record_trace=True, use_sweep=False)
        observed = _make_engine(build(), observe=True)
        for engine in (bare, traced, legacy, observed):
            engine.run(rounds)
        reference = _state(bare)
        assert _state(traced) == reference, f"traced sweep diverged (seed {seed})"
        assert _state(legacy) == reference, f"legacy traced diverged (seed {seed})"
        assert _state(observed) == reference, f"observed run diverged (seed {seed})"
        assert trace_to_dict(traced.trace) == trace_to_dict(legacy.trace), (
            f"sweep and legacy traces differ (seed {seed})"
        )
        fd, path = tempfile.mkstemp(suffix=".jsonl")
        os.close(fd)
        try:
            with TraceWriter(path, n, chunk_rounds=16) as sink:
                spilled = _make_engine(build(), trace_sink=sink)
                spilled.run(rounds)
            assert _state(spilled) == reference, f"spilled run diverged (seed {seed})"
            assert trace_to_dict(load_trace(path)) == trace_to_dict(traced.trace), (
                f"spilled file re-reads differently (seed {seed})"
            )
        finally:
            os.unlink(path)
    checks["traced_sweep_vs_legacy"] = True
    checks["observed_vs_bare"] = True
    checks["spill_round_trip"] = True
    return checks


def _rounds_per_second(engine: Engine, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    return rounds / max(time.perf_counter() - start, 1e-9)


def measure(n: int, rounds: int, warmup: int | None = None) -> dict[str, Any]:
    """All five legs at size ``n`` (enforced fault-free rotate DAC).

    ``warmup`` rounds (default ``2n + 5``, one full rotate cycle plus
    slack) run first so every leg measures the cached routing-plan
    regime.
    """
    if warmup is None:
        warmup = 2 * n + 5
    f = (n - 1) // 2
    build = lambda: build_dac_execution(  # noqa: E731
        n=n, f=f, seed=1, crash_nodes=0
    )
    result: dict[str, Any] = {"n": n, "f": f, "rounds": rounds}

    legs: list[tuple[str, dict[str, Any]]] = [
        ("untraced", {}),
        ("traced_sweep", {"record_trace": True}),
        ("traced_legacy", {"record_trace": True, "use_sweep": False}),
        ("observed", {"observe": True}),
    ]
    for label, options in legs:
        engine = _make_engine(build(), **options)
        _rounds_per_second(engine, warmup)
        result[f"{label}_rounds_per_s"] = _rounds_per_second(engine, rounds)

    fd, path = tempfile.mkstemp(suffix=".jsonl")
    os.close(fd)
    try:
        with TraceWriter(path, n) as sink:
            engine = _make_engine(build(), trace_sink=sink)
            _rounds_per_second(engine, warmup)
            result["traced_spill_rounds_per_s"] = _rounds_per_second(
                engine, rounds
            )
    finally:
        os.unlink(path)

    untraced = result["untraced_rounds_per_s"]
    result["traced_sweep_speedup_vs_legacy"] = (
        result["traced_sweep_rounds_per_s"] / result["traced_legacy_rounds_per_s"]
    )
    result["tracing_overhead"] = untraced / result["traced_sweep_rounds_per_s"]
    result["spill_overhead"] = untraced / result["traced_spill_rounds_per_s"]
    result["observer_overhead"] = untraced / result["observed_rounds_per_s"]
    return result


def run_smoke(n: int = 17, rounds: int = 1500) -> dict[str, Any]:
    """All legs at one size; the payload written to BENCH_trace.json."""
    return {
        "bench": "trace",
        "contracts": verify_contracts(min(n, 9)),
        "enforced": measure(n=n, rounds=rounds),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--n", type=int, default=17, help="network size (default 17)")
    parser.add_argument(
        "--rounds", type=int, default=1500, help="measured rounds per leg (default 1500)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_trace.json",
        help="JSON output path (default BENCH_trace.json)",
    )
    args = parser.parse_args(argv)
    payload = run_smoke(n=args.n, rounds=args.rounds)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"contracts: {payload['contracts']}")
    data = payload["enforced"]
    print(
        f"n={data['n']}: untraced {data['untraced_rounds_per_s']:.0f} rounds/s | "
        f"traced sweep {data['traced_sweep_rounds_per_s']:.0f} "
        f"vs legacy {data['traced_legacy_rounds_per_s']:.0f} "
        f"({data['traced_sweep_speedup_vs_legacy']:.2f}x) | "
        f"spill {data['traced_spill_rounds_per_s']:.0f} | "
        f"observed {data['observed_rounds_per_s']:.0f}"
    )
    print(
        f"overheads vs untraced: tracing {data['tracing_overhead']:.2f}x, "
        f"spill {data['spill_overhead']:.2f}x, "
        f"observers {data['observer_overhead']:.2f}x"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
