"""Delivery-sweep perf smoke: the serial engine's port-major sweep.

Measures the untraced round families the PR 5 delivery rewrite
targeted and emits a machine-readable ``BENCH_delivery.json`` so the
perf trajectory is tracked from this PR on (CI runs it at tiny sizes;
the ``bench_engine_scaling`` suite runs the same legs at the ISSUE's
acceptance sizes n = 33 and 65):

- **enforced** -- fault-free boundary DAC under the enforcing
  rotating-quorum adversary: port-major sweep vs the retained legacy
  sender-major loop (the traced path's implementation), steady-state
  and cold-start-inclusive rounds/s;
- **crash** -- the same comparison with the full staggered-crash
  schedule (sender-axis masking + stopped receivers);
- **plan-cache** -- the routing-plan cache's hit behavior: rounds/s on
  a replayed interned graph cycle (plan-cache hits every round) vs an
  adversary that never repeats a graph (every round pays graph
  construction plus a plan build -- the full cost of a novel
  schedule).

Also asserts the sweep's identity contract at tiny ``n`` (sweep vs
legacy loop by full state key, crash and Byzantine grids), so the CI
smoke is a correctness gate as well as a trend line.

Usage::

    python -m repro.bench.delivery_smoke --out BENCH_delivery.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any

from repro.sim.engine import Engine
from repro.workloads import build_dac_execution, build_dbac_execution


def _make_engine(kwargs: dict[str, Any], use_sweep: bool) -> Engine:
    engine = Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )
    engine._use_sweep = use_sweep
    return engine


def _state(engine: Engine) -> dict[int, tuple]:
    return {node: proc.state_key() for node, proc in engine.processes.items()}


def verify_contracts(n: int = 9) -> dict[str, Any]:
    """The sweep's identity contracts at tiny ``n`` (asserted)."""
    checks: dict[str, Any] = {}
    for label, build in (
        ("enforced", lambda s: build_dac_execution(n=n, f=(n - 1) // 2, seed=s, crash_nodes=0)),
        ("crash", lambda s: build_dac_execution(n=n, f=(n - 1) // 2, seed=s)),
        ("window", lambda s: build_dac_execution(n=n, f=(n - 1) // 2, seed=s, window=2)),
        ("byzantine", lambda s: build_dbac_execution(n=max(n, 6), f=1, seed=s)),
    ):
        for seed in (0, 1):
            swept = _make_engine(build(seed), True)
            legacy = _make_engine(build(seed), False)
            rounds = 40
            swept_result = swept.run(rounds)
            legacy_result = legacy.run(rounds)
            assert int(swept_result) == int(legacy_result), label
            assert _state(swept) == _state(legacy), (
                f"sweep diverged from legacy loop ({label}, seed {seed})"
            )
            assert (swept.metrics.delivered, swept.metrics.bits) == (
                legacy.metrics.delivered,
                legacy.metrics.bits,
            ), f"sweep metrics diverged ({label}, seed {seed})"
        checks[label] = True
    return checks


def _rounds_per_second(engine: Engine, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    return rounds / max(time.perf_counter() - start, 1e-9)


def measure_family(
    n: int, rounds: int, crash: bool, warmup: int | None = None
) -> dict[str, Any]:
    """Sweep vs legacy rounds/s for one enforced family at size ``n``.

    ``warmup`` rounds (default ``2n + 5``: one full rotate cycle plus
    slack) run first so the steady-state numbers measure the cached
    routing-plan regime; the cold figure includes plan/graph builds.
    """
    if warmup is None:
        warmup = 2 * n + 5
    f = (n - 1) // 2
    build = lambda: build_dac_execution(  # noqa: E731
        n=n, f=f, seed=1, crash_nodes=None if crash else 0
    )
    result: dict[str, Any] = {"n": n, "f": f, "crash": crash, "rounds": rounds}
    for label, use_sweep in (("sweep", True), ("legacy", False)):
        cold_engine = _make_engine(build(), use_sweep)
        result[f"{label}_cold_rounds_per_s"] = _rounds_per_second(
            cold_engine, warmup + rounds
        )
        warm_engine = _make_engine(build(), use_sweep)
        _rounds_per_second(warm_engine, warmup)
        result[f"{label}_rounds_per_s"] = _rounds_per_second(warm_engine, rounds)
    result["speedup"] = result["sweep_rounds_per_s"] / result["legacy_rounds_per_s"]
    result["speedup_cold"] = (
        result["sweep_cold_rounds_per_s"] / result["legacy_cold_rounds_per_s"]
    )
    return result


def measure_plan_cache(n: int, rounds: int) -> dict[str, Any]:
    """Replayed-cycle (plan cache hits) vs novel-graph (misses) rounds/s.

    Both legs run the sweep. The hit leg replays the enforcing rotate
    cycle of interned graphs, so every measured round reuses a cached
    routing plan. The miss leg's adversary derives its dropped-edge
    set from the bits of ``t``, so every measured round (up to
    ``2^(n-1)`` rounds) presents a graph the engine has never seen --
    paying graph construction *and* a routing-plan build, which is
    exactly what a never-repeating schedule costs per round. The gap
    is therefore the full stable-vs-novel-schedule spread, not the
    plan build in isolation.
    """
    from repro.adversary.base import MessageAdversary
    from repro.net.topology import Topology

    if rounds + 2 * n + 16 >= 2 ** (n - 1):
        raise ValueError(
            f"rounds={rounds} would wrap the novel-graph space at n={n}"
        )

    class _NovelGraphAdversary(MessageAdversary):
        """Complete graph minus a t-bitmask edge set: structurally
        distinct every round for 2^(n-1) rounds, so neither the intern
        table nor the routing-plan slot ever serves a measured round."""

        def choose(self, t, view):
            n = self.n
            drop = {(i, (i + 1) % n) for i in range(n - 1) if t >> i & 1}
            edges = [
                (a, b)
                for a in range(n)
                for b in range(n)
                if a != b and (a, b) not in drop
            ]
            return Topology(n, edges)

    f = (n - 1) // 2
    kwargs = build_dac_execution(n=n, f=f, seed=1, crash_nodes=0)
    hit_engine = _make_engine(kwargs, True)
    _rounds_per_second(hit_engine, 2 * n + 5)
    hit = _rounds_per_second(hit_engine, rounds)

    kwargs = build_dac_execution(n=n, f=f, seed=1, crash_nodes=0)
    kwargs["adversary"] = _NovelGraphAdversary()
    miss_engine = _make_engine(kwargs, True)
    _rounds_per_second(miss_engine, n + 5)
    miss = _rounds_per_second(miss_engine, rounds)
    return {
        "n": n,
        "rounds": rounds,
        "replayed_rounds_per_s": hit,
        "novel_graph_rounds_per_s": miss,
        "stable_schedule_speedup": hit / miss,
    }


def run_smoke(n: int = 17, rounds: int = 1500) -> dict[str, Any]:
    """All legs at one size; the payload written to BENCH_delivery.json."""
    return {
        "bench": "delivery",
        "contracts": verify_contracts(min(n, 9)),
        "enforced": measure_family(n=n, rounds=rounds, crash=False),
        "crash": measure_family(n=n, rounds=rounds, crash=True),
        "plan_cache": measure_plan_cache(n=n, rounds=max(200, rounds // 4)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-delivery-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--n", type=int, default=17, help="network size (default 17)")
    parser.add_argument(
        "--rounds", type=int, default=1500, help="measured rounds per leg (default 1500)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_delivery.json",
        help="JSON output path (default BENCH_delivery.json)",
    )
    args = parser.parse_args(argv)
    payload = run_smoke(n=args.n, rounds=args.rounds)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    print(f"contracts: {payload['contracts']}")
    for leg in ("enforced", "crash"):
        data = payload[leg]
        print(
            f"{leg:8s} n={data['n']}: sweep {data['sweep_rounds_per_s']:.0f} rounds/s, "
            f"legacy {data['legacy_rounds_per_s']:.0f} rounds/s "
            f"({data['speedup']:.2f}x warm, {data['speedup_cold']:.2f}x cold-incl.)"
        )
    cache = payload["plan_cache"]
    print(
        f"plan-cache n={cache['n']}: replayed {cache['replayed_rounds_per_s']:.0f} "
        f"vs novel-graph {cache['novel_graph_rounds_per_s']:.0f} rounds/s "
        f"({cache['stable_schedule_speedup']:.2f}x stable vs novel schedule)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
