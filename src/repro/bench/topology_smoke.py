"""Topology-layer perf smoke: enforced-adversary and lookahead legs.

Measures the two hot paths the Topology refactor targeted and emits a
machine-readable ``BENCH_topology.json`` so the perf trajectory is
tracked from this PR on (CI runs it at tiny ``n``; the
``bench_engine_scaling`` suite runs the same legs at larger sizes):

- **enforced** -- untraced engine rounds/s under the boundary
  ``(window, floor(n/2))`` rotating-quorum adversary (the ISSUE's
  acceptance scenario), plus a graph-construction micro-comparison:
  the legacy dict-of-frozensets ``DirectedGraph`` build (what every
  pre-Topology cache miss paid, replicated here verbatim) vs a cold
  ``Topology`` build vs the interned replay hit that enforced rounds
  actually take.
- **lookahead** -- ``LookaheadQuorumAdversary`` candidate evaluations
  per second through the copy-on-write overlay, against a reference
  implementation of the pre-Topology per-candidate
  ``copy.deepcopy`` simulation (kept here, outside the shipping
  adversary, purely as the comparison baseline).

Also asserts the refactor's identity contracts at tiny ``n`` (serial
vs both batch backends; no ``copy.deepcopy`` inside the candidate
loop), so the CI smoke is a correctness gate as well as a trend line.

Usage::

    python -m repro.bench.topology_smoke --out BENCH_topology.json
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
import time
from typing import Any

from repro.adversary.constrained import rotate_picks
from repro.adversary.greedy import LookaheadQuorumAdversary
from repro.core.dac import DACProcess
from repro.net.ports import random_ports
from repro.net.topology import Topology
from repro.sim.engine import Engine, EngineView
from repro.sim.node import Delivery
from repro.sim.rng import child_rng, spawn_inputs
from repro.workloads import build_dac_execution


def _build_engine(kwargs: dict[str, Any]) -> Engine:
    return Engine(
        kwargs["processes"],
        kwargs["adversary"],
        kwargs["ports"],
        fault_plan=kwargs["fault_plan"],
        f=kwargs["f"],
        seed=kwargs["seed"],
        record_trace=False,
    )


def _legacy_graph_build(n: int, edges: list[tuple[int, int]]) -> dict:
    """The pre-Topology ``DirectedGraph.__init__`` body, verbatim.

    Reproduced here (not imported -- the shipping class no longer works
    this way) so the construction micro-benchmark compares against what
    every cache miss used to cost: a frozenset edge set plus two dicts
    of per-node frozensets, rebuilt from scratch.
    """
    in_neighbors: dict[int, set[int]] = {v: set() for v in range(n)}
    out_neighbors: dict[int, set[int]] = {v: set() for v in range(n)}
    edge_set: set[tuple[int, int]] = set()
    for u, v in edges:
        edge_set.add((u, v))
        in_neighbors[v].add(u)
        out_neighbors[u].add(v)
    return {
        "edges": frozenset(edge_set),
        "in": {v: frozenset(s) for v, s in in_neighbors.items()},
        "out": {v: frozenset(s) for v, s in out_neighbors.items()},
    }


def measure_enforced(
    n: int = 9, rounds: int = 2000, window: int = 1, selector: str = "rotate"
) -> dict[str, Any]:
    """Enforced-adversary rounds/s plus the construction micro-bench."""
    engine = _build_engine(
        build_dac_execution(n=n, f=(n - 1) // 2, epsilon=1e-12, seed=3, window=window,
                            selector=selector, max_rounds=rounds + 1)
    )
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    elapsed = max(time.perf_counter() - start, 1e-9)

    # Construction micro-bench on one representative rotate round.
    live = tuple(range(n))
    edges = sorted(
        (u, receiver)
        for receiver, senders in enumerate(rotate_picks(n, live, 1, n // 2))
        for u in senders
    )
    reps = 400

    start = time.perf_counter()
    for _ in range(reps):
        _legacy_graph_build(n, edges)
    legacy = max(time.perf_counter() - start, 1e-9) / reps

    # Cold-path timing requires clearing the intern table; snapshot and
    # restore it so process-wide hash-consing identity (other live
    # memos, identity assertions in the same test process) survives.
    table = Topology._intern
    saved = dict(table)
    try:
        start = time.perf_counter()
        for _ in range(reps):
            table.clear()  # force the cold path
            graph = Topology.from_sorted_edges(n, edges)
            graph.out_rows()  # adjacency the engine will read
        cold = max(time.perf_counter() - start, 1e-9) / reps
    finally:
        table.clear()
        table.update(saved)

    graph = Topology.from_sorted_edges(n, edges)
    graph.out_rows()
    start = time.perf_counter()
    for _ in range(reps):
        Topology.from_sorted_edges(n, edges).out_rows()
    hit = max(time.perf_counter() - start, 1e-9) / reps

    return {
        "n": n,
        "window": window,
        "selector": selector,
        "rounds": rounds,
        "rounds_per_s": rounds / elapsed,
        "construction_us": {
            "legacy_dict_of_frozensets": legacy * 1e6,
            "topology_cold": cold * 1e6,
            "topology_interned_hit": hit * 1e6,
        },
        "construction_speedup_cold": legacy / cold,
        "construction_speedup_hit": legacy / hit,
    }


def _deepcopy_simulate(
    adversary: LookaheadQuorumAdversary,
    graph: Topology,
    t: int,
    view: EngineView,
) -> tuple[float, int]:
    """The pre-Topology candidate evaluation, kept as the bench baseline:
    deep-copy every fault-free process, deliver to the clones."""
    plan = view.fault_plan
    clones = {}
    before_phases = {}
    for v in plan.fault_free:
        proc = view.process(v)
        clones[v] = copy.deepcopy(proc)
        before_phases[v] = proc.phase
    for v, clone in clones.items():
        pairs = []
        for u in graph.in_row(v):
            if plan.is_byzantine(u):
                continue
            message = view.broadcast_of(u)
            if message is None:
                continue
            targets = plan.send_targets(u, t)
            if targets is not None and v not in targets:
                continue
            pairs.append((u, message))
        own = view.broadcast_of(v)
        if own is not None:
            pairs.append((v, own))
        batch = [Delivery(view.ports.port_of(v, u), message) for u, message in pairs]
        batch.sort(key=lambda d: d.port)
        clone.deliver(batch)
    values = [clone.value for clone in clones.values()]
    spread = (max(values) - min(values)) if values else 0.0
    advances = sum(1 for v, c in clones.items() if c.phase > before_phases[v])
    return spread, advances


def measure_lookahead(n: int = 9, rounds: int = 60, degree: int | None = None) -> dict[str, Any]:
    """Lookahead rounds/s and overlay-vs-deepcopy candidate evaluation."""
    degree = n // 2 if degree is None else degree

    def fresh_engine() -> tuple[Engine, LookaheadQuorumAdversary]:
        ports = random_ports(n, child_rng(11, "ports"))
        inputs = spawn_inputs(11, n)
        procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-12)
            for v in range(n)
        }
        adv = LookaheadQuorumAdversary(degree)
        return Engine(procs, adv, ports, record_trace=False), adv

    engine, adv = fresh_engine()
    start = time.perf_counter()
    for _ in range(rounds):
        engine.run_round()
    elapsed = max(time.perf_counter() - start, 1e-9)
    candidates = rounds * len(adv._selectors)

    # Candidate-evaluation micro-bench: same round, same candidate
    # graph, overlay vs the deep-copy reference. The overlay leg runs
    # the shipping `_simulate` (deliver to the live processes, restore
    # the plan); the reference leg is the pre-Topology per-candidate
    # deep copy. The state-management decomposition (snapshot/restore
    # vs deepcopy alone, the exact cost the refactor removed) is
    # reported alongside the end-to-end ratio, which also pays the
    # (shared) delivery work.
    engine, adv = fresh_engine()
    broadcasts, _meta = engine._collect_broadcasts(0)
    view = EngineView(engine, 0, broadcasts)
    graph = adv._candidate(adv._selectors[0], 0, view)
    adv.choose(0, view)  # builds the port rows; state-neutral
    sender_info = adv._sender_info(0, view)
    reps = 200

    from repro.adversary.greedy import _StateOverlay

    processes = {v: view.process(v) for v in view.fault_plan.fault_free}
    before = {v: proc.phase for v, proc in processes.items()}
    overlay = _StateOverlay(processes)
    start = time.perf_counter()
    for _ in range(reps):
        overlay_result = adv._simulate(graph, sender_info, processes, before, overlay)
    overlay_s = max(time.perf_counter() - start, 1e-9) / reps

    start = time.perf_counter()
    for _ in range(reps):
        deepcopy_result = _deepcopy_simulate(adv, graph, 0, view)
    deepcopy_s = max(time.perf_counter() - start, 1e-9) / reps

    assert overlay_result == deepcopy_result, (
        f"overlay simulate diverged from deep-copy reference: "
        f"{overlay_result} vs {deepcopy_result}"
    )

    # State management alone: what one candidate used to pay to clone
    # every process vs what the overlay pays to rewind them.
    start = time.perf_counter()
    for _ in range(reps):
        overlay.restore()
    restore_s = max(time.perf_counter() - start, 1e-9) / reps
    start = time.perf_counter()
    for _ in range(max(reps // 4, 1)):
        for proc in processes.values():
            copy.deepcopy(proc)
    clone_s = max(time.perf_counter() - start, 1e-9) / max(reps // 4, 1)

    return {
        "n": n,
        "degree": degree,
        "rounds": rounds,
        "rounds_per_s": rounds / elapsed,
        "candidate_evals_per_s": candidates / elapsed,
        "candidate_eval_us": {
            "overlay": overlay_s * 1e6,
            "deepcopy_reference": deepcopy_s * 1e6,
        },
        "candidate_eval_speedup": deepcopy_s / overlay_s,
        "state_management_us": {
            "overlay_restore": restore_s * 1e6,
            "deepcopy_clone": clone_s * 1e6,
        },
        "state_management_speedup": clone_s / restore_s,
    }


def verify_contracts(n: int = 7) -> dict[str, Any]:
    """The refactor's identity contracts, asserted at tiny ``n``."""
    from repro.sim.batch import numpy_available, run_dac_batch

    seeds = [0, 1, 2]
    f = (n - 1) // 2
    python_lanes = run_dac_batch(n, f, seeds, backend="python")
    # Serial reference: independent Engine runs, lane for lane.
    for seed, lane in zip(seeds, python_lanes):
        kwargs = build_dac_execution(n=n, f=f, seed=seed)
        engine = _build_engine(kwargs)
        result = engine.run(
            kwargs["max_rounds"], stop_when=Engine.all_fault_free_output
        )
        assert lane.rounds == int(result) and lane.stopped == result.stopped, (
            f"python batch lane diverged from serial engine (seed {seed})"
        )
        assert lane.state_keys == {
            node: proc.state_key() for node, proc in engine.processes.items()
        }, f"python batch state diverged from serial engine (seed {seed})"
    checks = {"serial_vs_python_batch": True, "numpy_checked": False}
    if numpy_available():
        numpy_lanes = run_dac_batch(n, f, seeds, backend="numpy")
        assert numpy_lanes == python_lanes, "numpy backend diverged"
        checks["numpy_checked"] = True

    # No deepcopy inside the candidate loop.
    real_deepcopy = copy.deepcopy

    def forbidden(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("copy.deepcopy called in the candidate loop")

    copy.deepcopy = forbidden
    try:
        ports = random_ports(n, child_rng(5, "ports"))
        inputs = spawn_inputs(5, n)
        procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-3)
            for v in range(n)
        }
        Engine(
            procs, LookaheadQuorumAdversary(n // 2), ports, record_trace=False
        ).run(4)
    finally:
        copy.deepcopy = real_deepcopy
    checks["lookahead_no_deepcopy"] = True
    return checks


def run_smoke(n: int = 9, rounds: int = 800) -> dict[str, Any]:
    """All legs at one size; the payload written to BENCH_topology.json."""
    return {
        "bench": "topology",
        "contracts": verify_contracts(min(n, 7)),
        "enforced": measure_enforced(n=n, rounds=rounds),
        "enforced_window": measure_enforced(n=n, rounds=rounds, window=3),
        "lookahead": measure_lookahead(n=n, rounds=max(20, rounds // 20)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-topology-smoke", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--n", type=int, default=9, help="network size (default 9)")
    parser.add_argument(
        "--rounds", type=int, default=800, help="enforced rounds to time (default 800)"
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default="BENCH_topology.json",
        help="JSON output path (default BENCH_topology.json)",
    )
    args = parser.parse_args(argv)
    payload = run_smoke(n=args.n, rounds=args.rounds)
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
    enforced = payload["enforced"]
    lookahead = payload["lookahead"]
    print(f"contracts: {payload['contracts']}")
    print(
        f"enforced   n={enforced['n']} T={enforced['window']}: "
        f"{enforced['rounds_per_s']:.0f} rounds/s; construction "
        f"legacy/cold {enforced['construction_speedup_cold']:.2f}x, "
        f"legacy/hit {enforced['construction_speedup_hit']:.2f}x"
    )
    print(
        f"lookahead  n={lookahead['n']} D={lookahead['degree']}: "
        f"{lookahead['candidate_evals_per_s']:.0f} candidate evals/s; "
        f"overlay vs deepcopy {lookahead['candidate_eval_speedup']:.2f}x "
        f"end-to-end, {lookahead['state_management_speedup']:.2f}x on "
        f"state management"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
