"""Extension experiments beyond the core reproduction (X5-X8).

- X5 executes Section II-B's claim that ``(T, D)``-dynaDegree is
  *incomparable* with the prior stability properties (rooted spanning
  trees, T-interval connectivity).
- X6 validates an analytic model of the Section VII probabilistic
  adversary against measured rounds.
- X7 searches adversary x Byzantine-strategy space for the slowest
  DBAC contraction ever observed -- an empirical data point for the
  paper's open question on the optimal Byzantine convergence rate.
- X8 probes the multi-hop future work: on networks where *information*
  flow (dynaReach) is rich but *direct* in-degree (dynaDegree) is
  starved, every quorum-counting algorithm stalls -- quantifying why
  anonymity makes multi-hop consensus require new ideas.
"""

from __future__ import annotations

from repro.adversary.comparative import RootedStarAdversary, StableSpanningTreeAdversary
from repro.adversary.constrained import RotatingQuorumAdversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.analysis.probabilistic import (
    expected_rounds_per_phase,
    prob_round_degree,
)
from repro.analysis.statistics import summarize
from repro.bench.tables import TableResult
from repro.core.asymptotic import AsymptoticAveragingProcess
from repro.core.dac import DACProcess
from repro.core.phases import dac_end_phase, dbac_convergence_rate
from repro.net.ports import random_ports
from repro.net.properties import property_profile
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import build_dbac_execution, dac_degree


# ---------------------------------------------------------------------------
# X5 -- stability properties are incomparable (Section II-B).
# ---------------------------------------------------------------------------

def experiment_x5(quick: bool = True) -> TableResult:
    """Prior stability notions vs dynaDegree, head to head.

    Rooted-star and stable-path adversaries satisfy the *prior*
    properties in their strongest forms yet starve dynaDegree; DAC
    (which needs ``(T, floor(n/2))``) stalls on them while asymptotic
    averaging converges. Under the paper's own minimal adversary, both
    succeed. Executable incomparability.
    """
    table = TableResult(
        "X5",
        "Stability-property comparison (Section II-B)",
        [
            "adversary",
            "rooted/round",
            "T-int conn (T=1)",
            "max D (T=4)",
            "DAC",
            "averaging",
        ],
    )
    n = 9
    rounds_cap = 150 if quick else 400
    adversaries = {
        "rooted star (fixed root)": lambda: RootedStarAdversary("fixed"),
        "rooted star (rotating)": lambda: RootedStarAdversary("rotate"),
        "stable spanning path": lambda: StableSpanningTreeAdversary(),
        "(1, n/2) rotating quorum": lambda: RotatingQuorumAdversary(dac_degree(n)),
    }
    # The fixed star and stable path are rooted/connected forever yet
    # pin dynaDegree at 1 -> DAC starves. The *rotating* star is the
    # instructive subtlety: rotation supplies n-1 distinct senders over
    # a long window, i.e. (T, floor(n/2))-dynaDegree for T ~ n/2+1, so
    # DAC legitimately terminates -- dynaDegree counts distinct
    # senders, not per-round connectivity.
    expectations = {
        "rooted star (fixed root)": ("stalls", "converges"),
        "rooted star (rotating)": ("terminates", "converges"),
        "stable spanning path": ("stalls", "converges"),
        "(1, n/2) rotating quorum": ("terminates", "converges"),
    }
    for name, make in adversaries.items():
        ports = random_ports(n, child_rng(41, "ports"))
        inputs = spawn_inputs(41, n)

        dac_procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2)
            for v in range(n)
        }
        dac_report = run_consensus(
            dac_procs, make(), ports, epsilon=1e-2, max_rounds=rounds_cap
        )
        avg_procs = {
            v: AsymptoticAveragingProcess(n, 0, inputs[v], ports.self_port(v))
            for v in range(n)
        }
        avg_report = run_consensus(
            avg_procs,
            make(),
            ports,
            epsilon=1e-2,
            stop_mode="oracle",
            max_rounds=rounds_cap,
        )

        trace = dac_report.trace.dynamic_graph()
        profile = property_profile(trace, windows=[1])
        from repro.net.dynadegree import max_degree_for_window

        max_d4 = max_degree_for_window(trace, 4)

        dac_verdict = "terminates" if dac_report.terminated else "stalls"
        avg_verdict = "converges" if avg_report.terminated else "diverges"
        table.add_row(
            name,
            f"{profile['rooted_fraction']:.0%}",
            profile["t_interval_connected"][1],
            max_d4,
            f"{dac_verdict} ({dac_report.rounds}r)",
            f"{avg_verdict} ({avg_report.rounds}r)",
        )
        want_dac, want_avg = expectations[name]
        if dac_verdict != want_dac or avg_verdict != want_avg:
            table.fail(
                f"{name}: expected DAC {want_dac} / averaging {want_avg}, "
                f"got {dac_verdict} / {avg_verdict}"
            )
    table.add_note("Rooted-every-round and T-interval-connected networks can still")
    table.add_note("starve (T, n/2)-dynaDegree -- and vice versa: incomparable, as")
    table.add_note("Section II-B argues. Averaging = Charron-Bost et al. category (ii).")
    return table


# ---------------------------------------------------------------------------
# X6 -- analytic model of the probabilistic adversary vs measurement.
# ---------------------------------------------------------------------------

def experiment_x6(quick: bool = True) -> TableResult:
    """Binomial/coupon-collector model vs measured rounds (Section VII)."""
    table = TableResult(
        "X6",
        "Probabilistic adversary: analytic model vs measured rounds",
        [
            "n",
            "p",
            "P[deg >= D]/round",
            "E[rounds/phase]",
            "model rounds",
            "measured",
            "ratio",
        ],
    )
    n = 9
    epsilon = 1e-2
    quorum = n // 2 + 1
    p_end = dac_end_phase(epsilon)
    grid_p = [0.2, 0.5, 0.8] if quick else [0.15, 0.2, 0.3, 0.5, 0.7, 0.9]
    trials = 8 if quick else 24
    worst_ratio = 0.0
    for p in grid_p:
        per_round = prob_round_degree(n, p, dac_degree(n))
        per_phase = expected_rounds_per_phase(n, p, quorum)
        model = per_phase * p_end
        measured = []
        for trial in range(trials):
            seed = 500 + trial
            ports = random_ports(n, child_rng(seed, "ports"))
            inputs = spawn_inputs(seed, n)
            procs = {
                v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=epsilon)
                for v in range(n)
            }
            report = run_consensus(
                procs,
                RandomLinkAdversary(p),
                ports,
                epsilon=epsilon,
                max_rounds=5000,
                seed=seed,
            )
            if report.terminated:
                measured.append(float(report.rounds))
        stats = summarize(measured)
        ratio = stats.mean / model if model > 0 else float("inf")
        worst_ratio = max(worst_ratio, ratio)
        table.add_row(n, p, per_round, per_phase, model, stats.mean, ratio)
        # The model ignores jumps and phase overlap, so it must be an
        # over-estimate (ratio <= ~1); a ratio far above 1 would mean
        # the model is broken.
        if ratio > 1.25:
            table.fail(f"p={p}: measured exceeds model by {ratio:.2f}x")
    table.add_note("Model: phases are sequential coupon-collector rounds; jumping and")
    table.add_note("overlap make real executions faster, so measured/model <= ~1.")
    return table


# ---------------------------------------------------------------------------
# X7 -- adversarial search for the slowest DBAC contraction.
# ---------------------------------------------------------------------------

def experiment_x7(quick: bool = True) -> TableResult:
    """Empirical probe of the open question: optimal Byzantine rate.

    Sweeps adversary selectors x Byzantine strategies x seeds and
    reports the worst (largest) per-phase contraction DBAC ever showed.
    The proven bound is ``1 - 2^-n``; the open question is how much of
    that gap is real. Everything we can throw at it stays near 1/2.
    """
    from repro.faults.byzantine import (
        ExtremeByzantine,
        FixedValueByzantine,
        PhaseLiarByzantine,
        RandomByzantine,
    )

    table = TableResult(
        "X7",
        "Worst observed DBAC rate vs the 1 - 2^-n bound (open question)",
        ["n", "f", "configs tried", "worst rate seen", "bound", "gap factor"],
    )
    grid_nf = [(6, 1)] if quick else [(6, 1), (11, 2)]
    selectors = ["nearest", "rotate"] if quick else ["nearest", "rotate", "random"]
    strategies = {
        "extreme": ExtremeByzantine,
        "random": lambda: RandomByzantine(low=-1.0, high=2.0),
        "liar": lambda: PhaseLiarByzantine(value=1.0, phase_lead=100),
        "pin": lambda: FixedValueByzantine(0.5),
    }
    seeds = range(3) if quick else range(8)
    for n, f in grid_nf:
        worst = 0.0
        tried = 0
        for selector in selectors:
            for name, factory in strategies.items():
                for seed in seeds:
                    report = run_consensus(
                        **build_dbac_execution(
                            n=n,
                            f=f,
                            epsilon=1e-3,
                            seed=seed,
                            selector=selector,
                            byzantine_factory=lambda node: factory(),
                        )
                    )
                    tried += 1
                    if report.convergence_rates:
                        worst = max(worst, max(report.convergence_rates))
        bound = dbac_convergence_rate(n)
        gap = (1 - worst) / (1 - bound) if bound < 1 else float("inf")
        table.add_row(n, f, tried, worst, bound, gap)
        if worst > bound + 1e-9:
            table.fail(f"n={n}: observed rate {worst} above the proven bound")
    table.add_note("No strategy pushed DBAC anywhere near 1 - 2^-n; the worst observed")
    table.add_note("contraction stays ~1/2, evidence the true optimal Byzantine rate is")
    table.add_note("far below the proven bound (the paper's Section VII open question).")
    return table


# ---------------------------------------------------------------------------
# X8 -- the multi-hop future work, probed (Section I / VII).
# ---------------------------------------------------------------------------

def experiment_x8(quick: bool = True) -> TableResult:
    """Multi-hop information flow cannot feed single-hop quorums.

    A static directed ring gives every node in-degree exactly 1
    (dynaDegree pinned at (T, 1) forever) while full-relay information
    flow reaches n-1 distinct origins within n-1 rounds (dynaReach
    (n-1, n-1)). DAC needs floor(n/2) *distinct direct ports* per
    phase, so it stalls; so does the piggyback variant -- relayed
    values are unattributable under anonymity and cannot count toward
    the quorum. Asymptotic averaging, which needs no counting,
    converges. This is the executable content of "multi-hop is left as
    future work": relaying moves *values*, not *port-distinctness*.
    """
    from repro.adversary.base import StaticAdversary
    from repro.core.piggyback import PiggybackDACProcess
    from repro.net.dynadegree import max_degree_for_window
    from repro.net.generators import cycle_edges
    from repro.net.topology import Topology
    from repro.net.temporal import max_reach_for_window

    table = TableResult(
        "X8",
        "Multi-hop probe: directed ring -- rich dynaReach, starved dynaDegree",
        ["n", "algorithm", "max D (direct)", "max D (reach)", "verdict", "rounds"],
    )
    n = 7 if quick else 9
    window = n - 1
    rounds_cap = 120 if quick else 300
    ring = Topology(n, cycle_edges(n, bidirectional=False))
    ports = random_ports(n, child_rng(47, "ports"))
    inputs = spawn_inputs(47, n)

    def ring_adversary():
        return StaticAdversary(ring)

    contenders = {
        "DAC": lambda v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2),
        "PiggybackDAC k=8": lambda v: PiggybackDACProcess(
            n, 0, inputs[v], ports.self_port(v), epsilon=1e-2, k=8
        ),
        "asymptotic averaging": lambda v: AsymptoticAveragingProcess(
            n, 0, inputs[v], ports.self_port(v)
        ),
    }
    expectations = {
        "DAC": "stalls",
        "PiggybackDAC k=8": "stalls",
        "asymptotic averaging": "converges",
    }
    for name, factory in contenders.items():
        procs = {v: factory(v) for v in range(n)}
        stop_mode = "oracle" if name == "asymptotic averaging" else "output"
        report = run_consensus(
            procs,
            ring_adversary(),
            ports,
            epsilon=1e-2,
            stop_mode=stop_mode,
            max_rounds=rounds_cap,
        )
        trace = report.trace.dynamic_graph()
        direct = max_degree_for_window(trace, window)
        reach = max_reach_for_window(trace, window)
        verdict = (
            "converges"
            if report.terminated and stop_mode == "oracle"
            else ("terminates" if report.terminated else "stalls")
        )
        table.add_row(n, name, direct, reach, verdict, report.rounds)
        want = expectations[name]
        matched = (verdict == want) or (want == "converges" and verdict == "terminates")
        if not matched:
            table.fail(f"{name}: expected {want}, got {verdict}")
    table.add_note("dynaReach hits n-1 (full information flow) while direct dynaDegree")
    table.add_note("is pinned at 1: anonymous quorum counting cannot use journeys, so")
    table.add_note("the paper's multi-hop future work needs new algorithmic ideas.")
    return table
