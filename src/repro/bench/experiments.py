"""The experiment functions: one per row of DESIGN.md's index.

Every function reproduces one claim of the paper and returns a
:class:`~repro.bench.tables.TableResult` whose ``passed`` flag records
whether the claim held in simulation. Functions accept ``quick=True``
(the default used by the pytest-benchmark wrappers) to run a reduced
but still meaningful parameter grid; ``quick=False`` runs the fuller
sweep recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import time

from repro.adversary.base import StaticAdversary
from repro.adversary.constrained import PhaseSkewAdversary
from repro.adversary.mobile import MobileOmissionAdversary
from repro.adversary.periodic import figure1_adversary
from repro.adversary.random_adv import RandomLinkAdversary
from repro.analysis.agreement import cross_group_gap, groupwise_spread
from repro.analysis.convergence import fit_geometric_rate, phases_until
from repro.analysis.statistics import summarize
from repro.bench.tables import TableResult
from repro.core.baselines import FloodMinProcess, IteratedMidpointProcess, MajorityVoteProcess
from repro.core.dac import DACProcess
from repro.core.phases import (
    dac_end_phase,
    dbac_convergence_rate,
    dbac_end_phase,
    rounds_upper_bound,
)
from repro.core.piggyback import PiggybackDACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import (
    ExtremeByzantine,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
)
from repro.mc.explorer import BoundedExplorer, mobile_omission_choices
from repro.net.dynadegree import DynaDegreeProfile
from repro.net.dynamic import DynamicGraph
from repro.net.ports import identity_ports, random_ports
from repro.sim.engine import Engine
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus
from repro.workloads import (
    build_dac_execution,
    build_dbac_execution,
    dac_degree,
    dbac_degree,
    theorem9_part2_execution,
    theorem9_split_execution,
    theorem10_split_execution,
)


# ---------------------------------------------------------------------------
# F1 -- Figure 1: the (2,1)-but-not-(1,1) example adversary.
# ---------------------------------------------------------------------------

def experiment_f1(quick: bool = True) -> TableResult:
    """Reproduce Figure 1: profile the example adversary's stability."""
    table = TableResult(
        "F1",
        "Figure 1 adversary: max D per window T (n=3)",
        ["T", "max D", "(T,1) holds?", "paper says"],
    )
    adversary = figure1_adversary()
    adversary.setup(3, FaultPlan.fault_free_plan(3), child_rng(0, "adv"))
    trace = DynamicGraph(3)
    rounds = 12 if quick else 64
    for t in range(rounds):
        trace.record(adversary.choose(t, None))
    profile = DynaDegreeProfile.from_trace(trace, windows=[1, 2, 3, 4])
    expectations = {1: "violated", 2: "holds", 3: "holds", 4: "holds"}
    for window in (1, 2, 3, 4):
        max_d = profile.max_degree_by_window[window]
        holds = profile.satisfies(window, 1)
        table.add_row(window, max_d, holds, expectations[window])
        if (expectations[window] == "holds") != holds:
            table.fail(f"(T={window}, D=1) expected {expectations[window]}")
    table.add_note("Paper: satisfies (2,1)-dynaDegree but not (1,1)-dynaDegree.")
    return table


# ---------------------------------------------------------------------------
# E1 -- DAC correctness at the feasibility boundary (Theorem 3).
# ---------------------------------------------------------------------------

def experiment_e1(quick: bool = True) -> TableResult:
    """DAC correct at n >= 2f+1 with (T, floor(n/2))-dynaDegree."""
    table = TableResult(
        "E1",
        "DAC correctness at the boundary (f = (n-1)/2 crashes, D = floor(n/2))",
        ["n", "f", "T", "selector", "rounds", "spread", "correct", "trace (T,D) ok"],
    )
    grid_n = [5, 9] if quick else [5, 9, 15, 25]
    grid_t = [1, 3] if quick else [1, 3, 5]
    selectors = ["rotate", "nearest"] if quick else ["rotate", "nearest", "random"]
    for n in grid_n:
        f = (n - 1) // 2
        for window in grid_t:
            for selector in selectors:
                report = run_consensus(
                    **build_dac_execution(
                        n=n,
                        f=f,
                        epsilon=1e-3,
                        seed=n * 100 + window,
                        window=window,
                        selector=selector,
                    )
                )
                table.add_row(
                    n,
                    f,
                    window,
                    selector,
                    report.rounds,
                    report.output_spread,
                    report.correct,
                    bool(report.dynadegree_verified),
                )
                if not report.correct or not report.dynadegree_verified:
                    table.fail(f"n={n} T={window} {selector}: {report.summary()}")
    table.add_note("Paper: termination + validity + eps-agreement (Theorem 3).")
    return table


# ---------------------------------------------------------------------------
# E2 -- DAC convergence rate 1/2 (Remark 1).
# ---------------------------------------------------------------------------

def experiment_e2(quick: bool = True) -> TableResult:
    """Per-phase contraction of range(V(p)) vs the proven 1/2."""
    table = TableResult(
        "E2",
        "DAC per-phase convergence rate (bound: 0.5, optimal per [17])",
        ["n", "adversary", "phases", "max rate", "mean rate", "fit", "<= 0.5"],
    )
    grid = [(9, "nearest"), (9, "rotate")] if quick else [
        (9, "nearest"),
        (9, "rotate"),
        (15, "nearest"),
        (25, "nearest"),
    ]

    def one_report(n: int, selector: str):
        if selector == "lookahead":
            from repro.adversary.greedy import LookaheadQuorumAdversary

            ports = random_ports(n, child_rng(n, "ports"))
            inputs = spawn_inputs(n, n)
            procs = {
                v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-4)
                for v in range(n)
            }
            return run_consensus(
                procs,
                LookaheadQuorumAdversary(n // 2, objective="max_range"),
                ports,
                epsilon=1e-4,
                max_rounds=400,
            )
        return run_consensus(
            **build_dac_execution(n=n, f=0, epsilon=1e-4, seed=n, selector=selector)
        )

    grid = grid + [(9, "lookahead")]
    for n, selector in grid:
        report = one_report(n, selector)
        rates = report.convergence_rates
        fit = fit_geometric_rate(report.phase_ranges)
        ok = bool(rates) and max(rates) <= 0.5 + 1e-9
        table.add_row(
            n,
            selector,
            len(rates),
            max(rates) if rates else 0.0,
            sum(rates) / len(rates) if rates else 0.0,
            fit if fit is not None else "-",
            ok,
        )
        if not ok:
            table.fail(f"n={n} {selector}: rate above 1/2: {rates}")
    table.add_note("Every measured per-phase rate must be <= 1/2; nearest-value")
    table.add_note("selection drives it close to 1/2 (the worst case is tight).")
    return table


# ---------------------------------------------------------------------------
# E3 -- DAC round complexity vs the T * p_end bound (Eq. 2, Sec. VII).
# ---------------------------------------------------------------------------

def experiment_e3(quick: bool = True) -> TableResult:
    """Measured rounds-to-output vs the worst-case T * p_end."""
    table = TableResult(
        "E3",
        "DAC rounds to terminate vs T * p_end",
        ["T", "epsilon", "p_end", "bound T*p_end", "measured rounds", "within bound"],
    )
    grid_t = [1, 2, 4] if quick else [1, 2, 4, 8]
    grid_eps = [1e-1, 1e-3] if quick else [1e-1, 1e-2, 1e-3]
    for window in grid_t:
        for eps in grid_eps:
            p_end = dac_end_phase(eps)
            bound = rounds_upper_bound(window, p_end)
            report = run_consensus(
                **build_dac_execution(n=9, f=0, epsilon=eps, seed=window, window=window)
            )
            # Start-up slack: nodes may need one extra window to align.
            ok = report.terminated and report.rounds <= bound + 2 * window
            table.add_row(window, eps, p_end, bound, report.rounds, ok)
            if not ok:
                table.fail(f"T={window} eps={eps}: {report.rounds} > {bound}")
    table.add_note("Paper: both algorithms complete in T * p_end rounds worst case.")
    return table


# ---------------------------------------------------------------------------
# E4 -- DBAC correctness at the boundary (Theorems 4 and 7).
# ---------------------------------------------------------------------------

_BYZ_STRATEGIES = {
    "extreme": ExtremeByzantine,
    "random": lambda: RandomByzantine(low=-5.0, high=5.0),
    "phase-liar": lambda: PhaseLiarByzantine(value=1.0, phase_lead=500),
    "pin-high": lambda: FixedValueByzantine(1.0),
}


def experiment_e4(quick: bool = True) -> TableResult:
    """DBAC correct at n >= 5f+1 with (T, floor((n+3f)/2))-dynaDegree."""
    table = TableResult(
        "E4",
        "DBAC correctness at the boundary (f Byzantine, D = floor((n+3f)/2))",
        ["n", "f", "strategy", "T", "rounds", "spread", "ok", "trace ok"],
    )
    grid_nf = [(6, 1)] if quick else [(6, 1), (11, 2), (16, 3)]
    strategies = ["extreme", "phase-liar"] if quick else sorted(_BYZ_STRATEGIES)
    windows = [1] if quick else [1, 3]
    for n, f in grid_nf:
        for name in strategies:
            for window in windows:
                report = run_consensus(
                    **build_dbac_execution(
                        n=n,
                        f=f,
                        epsilon=1e-2,
                        seed=n + window,
                        window=window,
                        byzantine_factory=lambda node: _BYZ_STRATEGIES[name](),
                    )
                )
                ok = report.terminated and report.epsilon_agreement and report.validity
                table.add_row(
                    n,
                    f,
                    name,
                    window,
                    report.rounds,
                    report.output_spread,
                    ok,
                    bool(report.dynadegree_verified),
                )
                if not ok or not report.dynadegree_verified:
                    table.fail(f"n={n} {name} T={window}: {report.summary()}")
    table.add_note("Validity is judged against fault-free inputs (Definition 3).")
    return table


# ---------------------------------------------------------------------------
# E5 -- DBAC convergence: measured vs the 1 - 2^-n bound (Theorem 7, Eq. 6).
# ---------------------------------------------------------------------------

def experiment_e5(quick: bool = True) -> TableResult:
    """How conservative are the Theorem 7 rate and Equation 6 p_end?"""
    table = TableResult(
        "E5",
        "DBAC measured rate / phases vs proven bounds",
        [
            "n",
            "f",
            "rate bound",
            "max measured",
            "Eq.6 p_end",
            "measured phases",
            "bound ok",
        ],
    )
    grid = [(6, 1)] if quick else [(6, 1), (11, 2)]
    epsilon = 1e-2
    for n, f in grid:
        report = run_consensus(
            **build_dbac_execution(n=n, f=f, epsilon=epsilon, seed=5)
        )
        bound = dbac_convergence_rate(n)
        rates = report.convergence_rates
        measured_max = max(rates) if rates else 0.0
        p_end_bound = dbac_end_phase(epsilon, n)
        measured_phases = phases_until(report.phase_ranges, epsilon)
        ok = measured_max <= bound + 1e-9 and (
            measured_phases is None or measured_phases <= p_end_bound
        )
        table.add_row(
            n,
            f,
            bound,
            measured_max,
            p_end_bound,
            measured_phases if measured_phases is not None else "-",
            ok,
        )
        if not ok:
            table.fail(f"n={n}: measured rate {measured_max} vs bound {bound}")
    table.add_note("Eq. 6 is a worst-case bound (~2^n ln(1/eps) phases); measured")
    table.add_note("executions converge near rate 1/2 -- orders of magnitude faster.")
    return table


# ---------------------------------------------------------------------------
# I1 -- Corollary 1: exact consensus impossible at (1, n-2).
# ---------------------------------------------------------------------------

def experiment_i1(quick: bool = True) -> TableResult:
    """Break exact-consensus candidates with the mobile-omission power."""
    table = TableResult(
        "I1",
        "Exact consensus vs (1, n-2) mobile omission (Corollary 1 / [18])",
        ["candidate", "n", "method", "violation", "states explored"],
    )
    n = 3
    candidates = {
        "FloodMin": lambda v, x: FloodMinProcess(n, 0, x, v, num_rounds=2),
        "MajorityVote": lambda v, x: MajorityVoteProcess(n, 0, x, v, num_rounds=2),
    }
    for name, factory in candidates.items():
        explorer = BoundedExplorer(
            n,
            factory,
            [0.0, 1.0, 1.0],
            mobile_omission_choices(n),
            horizon=2,
            cache_choices=True,
        )
        violation = explorer.search()
        table.add_row(
            name,
            n,
            "exhaustive model check",
            violation.kind if violation else "none found",
            explorer.states_explored,
        )
        if violation is None or violation.kind != "disagreement":
            table.fail(f"{name}: no disagreement execution found")

    # Concrete adversary at larger n (the constructive strategy).
    big_n = 5 if quick else 9
    ports = identity_ports(big_n)
    inputs = [0.0] + [1.0] * (big_n - 1)

    def floodmin_under(adversary):
        procs = {
            v: FloodMinProcess(big_n, 0, inputs[v], ports.self_port(v))
            for v in range(big_n)
        }
        return run_consensus(
            procs, adversary, ports, epsilon=0.0, max_rounds=2 * big_n
        )

    report = floodmin_under(MobileOmissionAdversary("block_min"))
    disagreed = report.terminated and not report.epsilon_agreement
    table.add_row(
        "FloodMin",
        big_n,
        "block-min adversary (1, n-2)",
        "disagreement" if disagreed else "none",
        "-",
    )
    if not disagreed or report.dynadegree_verified is not True:
        table.fail(f"block-min adversary failed at n={big_n}")

    # The boundary is tight: one more unit of degree -- the complete
    # graph, (1, n-1) -- and the same algorithm reaches exact agreement.
    clean = floodmin_under(MobileOmissionAdversary("none"))
    agreed = clean.terminated and clean.epsilon_agreement
    table.add_row(
        "FloodMin",
        big_n,
        "complete graph (1, n-1)",
        "exact agreement" if agreed else "UNEXPECTED",
        "-",
    )
    if not agreed:
        table.fail(f"FloodMin failed on the complete graph at n={big_n}")
    table.add_note("Every witness schedule satisfies (1, n-2)-dynaDegree; at (1, n-1)")
    table.add_note("the same algorithm solves exact consensus -- the bound is tight.")
    return table


# ---------------------------------------------------------------------------
# I2 / I3 -- Theorem 9: crash-model necessity.
# ---------------------------------------------------------------------------

def experiment_i2(quick: bool = True) -> TableResult:
    """Degree floor(n/2)-1 and n <= 2f both break DAC-style algorithms."""
    table = TableResult(
        "I2/I3",
        "Crash necessity (Theorem 9): both horns of the dilemma",
        ["scenario", "n", "algorithm", "terminated", "agreement", "verdict"],
    )
    sizes = [8] if quick else [6, 8, 12]
    for n in sizes:
        eager = run_consensus(**theorem9_split_execution(n=n, seed=n))
        horn1 = eager.terminated and not eager.epsilon_agreement
        table.add_row(
            f"(1, n/2-1) split",
            n,
            "eager quorum n/2",
            eager.terminated,
            eager.epsilon_agreement,
            "disagrees 0 vs 1" if horn1 else "UNEXPECTED",
        )
        if not horn1:
            table.fail(f"n={n}: eager run did not disagree")

        stalled = run_consensus(
            **theorem9_split_execution(n=n, seed=n, eager_quorum=False, max_rounds=150)
        )
        horn2 = not stalled.terminated
        table.add_row(
            f"(1, n/2-1) split",
            n,
            "DAC (quorum n/2+1)",
            stalled.terminated,
            stalled.epsilon_agreement,
            "stalls forever" if horn2 else "UNEXPECTED",
        )
        if not horn2:
            table.fail(f"n={n}: plain DAC terminated under the split")

    part2 = run_consensus(**theorem9_part2_execution(n=8, seed=1))
    ok = part2.terminated and not part2.epsilon_agreement
    table.add_row(
        "n = 2f, isolate R rounds",
        8,
        "eager quorum n/2",
        part2.terminated,
        part2.epsilon_agreement,
        "decides too early" if ok else "UNEXPECTED",
    )
    if not ok:
        table.fail("n=2f construction did not split")
    table.add_note("Eager quorum = the most any algorithm can await at this degree.")
    return table


# ---------------------------------------------------------------------------
# I4 -- Theorem 10: Byzantine necessity.
# ---------------------------------------------------------------------------

def experiment_i4(quick: bool = True) -> TableResult:
    """Degree floor((n+3f)/2)-1 + two-faced core splits the network."""
    table = TableResult(
        "I4",
        "Byzantine necessity (Theorem 10): overlap groups + equivocation",
        ["f", "n", "algorithm", "terminated", "A-side", "B-side", "gap", "verdict"],
    )
    fs = [1] if quick else [1, 2, 3]
    for f in fs:
        n = 5 * f + 1
        eager = run_consensus(**theorem10_split_execution(f=f, seed=f))
        low_end = (n - f) // 2
        high_start = (n + f) // 2
        listeners_a = frozenset(range(low_end))
        listeners_b = frozenset(range(high_start, n))
        spreads = groupwise_spread(eager.outputs, {"a": listeners_a, "b": listeners_b})
        gap = cross_group_gap(eager.outputs, listeners_a, listeners_b)
        a_val = (
            sum(eager.outputs[v] for v in listeners_a if v in eager.outputs)
            / max(1, len([v for v in listeners_a if v in eager.outputs]))
        )
        b_val = (
            sum(eager.outputs[v] for v in listeners_b if v in eager.outputs)
            / max(1, len([v for v in listeners_b if v in eager.outputs]))
        )
        horn1 = eager.terminated and gap > 0.9 and max(spreads.values()) < 0.05
        table.add_row(
            f,
            n,
            "eager quorum D",
            eager.terminated,
            a_val,
            b_val,
            gap,
            "0 vs 1 split" if horn1 else "UNEXPECTED",
        )
        if not horn1:
            table.fail(f"f={f}: expected clean 0 vs 1 split, gap={gap}")

        stalled = run_consensus(
            **theorem10_split_execution(f=f, seed=f, eager_quorum=False, max_rounds=150)
        )
        horn2 = not stalled.terminated
        table.add_row(
            f,
            n,
            "DBAC (quorum D+1)",
            stalled.terminated,
            "-",
            "-",
            "-",
            "stalls forever" if horn2 else "UNEXPECTED",
        )
        if not horn2:
            table.fail(f"f={f}: plain DBAC terminated at degree D-1")
    table.add_note("Trace satisfies (1, D-1) exactly; Byzantine nodes run two honest")
    table.add_note("faces (input 0 toward A's listeners, input 1 toward B's).")
    return table


# ---------------------------------------------------------------------------
# X1 -- Section VII: probabilistic message adversary.
# ---------------------------------------------------------------------------

def experiment_x1(quick: bool = True) -> TableResult:
    """Expected rounds-to-epsilon under i.i.d. link probability p."""
    table = TableResult(
        "X1",
        "Probabilistic adversary: rounds to eps-agreement vs link prob p",
        ["n", "p", "trials", "mean rounds", "95% CI", "all safe"],
    )
    grid_n = [5] if quick else [5, 9, 15]
    grid_p = [0.3, 0.6, 0.9] if quick else [0.2, 0.3, 0.5, 0.7, 0.9]
    trials = 5 if quick else 20
    for n in grid_n:
        for p in grid_p:
            rounds = []
            safe = True
            for trial in range(trials):
                seed = 1000 * n + int(100 * p) + trial
                ports = random_ports(n, child_rng(seed, "ports"))
                inputs = spawn_inputs(seed, n)
                procs = {
                    v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-2)
                    for v in range(n)
                }
                report = run_consensus(
                    procs,
                    RandomLinkAdversary(p),
                    ports,
                    epsilon=1e-2,
                    stop_mode="oracle",
                    max_rounds=3000,
                    seed=seed,
                )
                safe = safe and report.validity
                if report.terminated:
                    rounds.append(float(report.rounds))
            if rounds:
                stats = summarize(rounds)
                table.add_row(
                    n,
                    p,
                    len(rounds),
                    stats.mean,
                    f"[{stats.ci_low:.1f}, {stats.ci_high:.1f}]",
                    safe,
                )
            else:
                table.add_row(n, p, 0, "-", "-", safe)
            if not safe:
                table.fail(f"n={n} p={p}: validity violated")
    table.add_note("Section VII proposes this model; rounds shrink as p grows.")
    return table


# ---------------------------------------------------------------------------
# X2 -- Section VII: piggybacking bandwidth / convergence trade-off.
# ---------------------------------------------------------------------------

def experiment_x2(quick: bool = True) -> TableResult:
    """Relay k old states: wall-clock rounds vs bits per round."""
    table = TableResult(
        "X2",
        "Piggyback trade-off: relayed entries k vs rounds and bandwidth",
        ["k", "p", "trials", "mean rounds", "mean bits/round", "safe"],
    )
    n = 9
    grid_k = [0, 2, 8] if quick else [0, 1, 2, 4, 8]
    grid_p = [0.3] if quick else [0.15, 0.3, 0.5]
    trials = 6 if quick else 16
    for p in grid_p:
        for k in grid_k:
            rounds, bits = [], []
            safe = True
            for trial in range(trials):
                seed = 77 + trial
                ports = random_ports(n, child_rng(seed, "ports"))
                inputs = spawn_inputs(seed, n)
                procs = {
                    v: PiggybackDACProcess(
                        n, 0, inputs[v], ports.self_port(v), epsilon=1e-3, k=k
                    )
                    for v in range(n)
                }
                report = run_consensus(
                    procs,
                    RandomLinkAdversary(p),
                    ports,
                    epsilon=1e-3,
                    stop_mode="oracle",
                    max_rounds=2000,
                    seed=seed,
                )
                safe = safe and report.validity
                if report.terminated:
                    rounds.append(float(report.rounds))
                    bits.append(report.metrics.mean_bits_per_round)
            mean_rounds = sum(rounds) / len(rounds) if rounds else float("nan")
            mean_bits = sum(bits) / len(bits) if bits else float("nan")
            table.add_row(k, p, len(rounds), mean_rounds, mean_bits, safe)
            if not safe:
                table.fail(f"k={k} p={p}: validity violated")
    table.add_note("The paper poses this trade-off as open; measured: bandwidth grows")
    table.add_note("linearly in k while round gains are modest (DAC's per-phase rate")
    table.add_note("is already optimal at 1/2).")
    return table


# ---------------------------------------------------------------------------
# X3 -- Jump-rule ablation.
# ---------------------------------------------------------------------------

def experiment_x3(quick: bool = True) -> TableResult:
    """DAC with and without the jump rule under phase skew."""
    table = TableResult(
        "X3",
        "Jump ablation: phase-skew adversary (fast clique + slow nodes)",
        ["n", "slow", "T", "jump", "terminated", "rounds"],
    )
    n = 9
    slow = frozenset({6, 7, 8})
    windows = [3] if quick else [2, 3, 5]
    for window in windows:
        for jump in (True, False):
            ports = random_ports(n, child_rng(23, "ports"))
            inputs = spawn_inputs(23, n)
            procs = {
                v: DACProcess(
                    n, 0, inputs[v], ports.self_port(v), epsilon=1e-2, enable_jump=jump
                )
                for v in range(n)
            }
            report = run_consensus(
                procs,
                PhaseSkewAdversary(n // 2, slow=slow, window=window),
                ports,
                epsilon=1e-2,
                max_rounds=250,
            )
            table.add_row(
                n, len(slow), window, jump, report.terminated, report.rounds
            )
            if jump and not report.correct:
                table.fail(f"T={window}: DAC with jump failed")
            if not jump and report.terminated:
                table.fail(f"T={window}: no-jump run unexpectedly terminated")
    table.add_note("Without jumping, slow nodes wait forever for same-phase states")
    table.add_note("that nobody will resend under O(log n) bandwidth (Section IV).")
    return table


# ---------------------------------------------------------------------------
# X4 -- Baseline comparison: DAC matches the reliable-channel rate.
# ---------------------------------------------------------------------------

def experiment_x4(quick: bool = True) -> TableResult:
    """DAC (hostile dynamic net) vs Dolev et al. (reliable complete net)."""
    table = TableResult(
        "X4",
        "DAC vs reliable-channel iterated midpoint: per-phase rate",
        ["algorithm", "network", "phases", "fit rate", "rate <= 0.5"],
    )
    n = 9
    ports = identity_ports(n)
    inputs = spawn_inputs(31, n)

    baseline_procs = {
        v: IteratedMidpointProcess(n, 0, inputs[v], v, num_rounds=10)
        for v in range(n)
    }
    base_report = run_consensus(
        baseline_procs, StaticAdversary(), ports, epsilon=1e-3, max_rounds=12
    )
    base_fit = fit_geometric_rate(base_report.phase_ranges)
    table.add_row(
        "IteratedMidpoint [13]",
        "reliable complete",
        len(base_report.phase_ranges) - 1,
        base_fit if base_fit is not None else "collapses in 1 phase",
        "n/a" if base_fit is None else base_fit <= 0.5 + 1e-6,
    )
    table.add_note("On a fully reliable complete graph every node sees every value,")
    table.add_note("so the baseline agrees after a single phase (fit undefined).")

    dac_report = run_consensus(
        **build_dac_execution(n=n, f=0, epsilon=1e-3, seed=31, selector="nearest")
    )
    dac_fit = fit_geometric_rate(dac_report.phase_ranges)
    ok = bool(dac_report.convergence_rates) and max(dac_report.convergence_rates) <= 0.5 + 1e-9
    table.add_row(
        "DAC (Algorithm 1)",
        "worst-case (1, n/2) dynamic",
        len(dac_report.phase_ranges) - 1,
        dac_fit if dac_fit else "-",
        ok,
    )
    if not ok:
        table.fail("DAC exceeded rate 1/2")
    table.add_note("Paper: DAC achieves the optimal rate 1/2 even in the dynamic")
    table.add_note("model -- matching the reliable-channel classic per phase.")
    return table


# ---------------------------------------------------------------------------
# S1 -- Engine throughput scaling (engineering sanity).
# ---------------------------------------------------------------------------

def experiment_s1(quick: bool = True) -> TableResult:
    """Simulation throughput: rounds/second vs network size."""
    table = TableResult(
        "S1",
        "Engine throughput (complete graph, DAC, trace off)",
        ["n", "rounds", "seconds", "rounds/s", "link msgs/s"],
    )
    sizes = [10, 40] if quick else [10, 20, 40, 80, 160]
    for n in sizes:
        ports = identity_ports(n)
        inputs = spawn_inputs(3, n)
        procs = {
            v: DACProcess(n, 0, inputs[v], v, epsilon=1e-12) for v in range(n)
        }
        engine = Engine(procs, StaticAdversary(), ports, record_trace=False)
        rounds = 30 if quick else 60
        start = time.perf_counter()
        engine.run(rounds)
        elapsed = max(time.perf_counter() - start, 1e-9)
        table.add_row(
            n,
            rounds,
            elapsed,
            rounds / elapsed,
            engine.metrics.delivered / elapsed,
        )
    table.add_note("Pure-Python reference simulator; scaling is O(n^2) per round.")
    return table


# ---------------------------------------------------------------------------
# S2 -- Sweep executor throughput (engineering sanity, parallel-aware).
# ---------------------------------------------------------------------------

def experiment_s2(quick: bool = True) -> TableResult:
    """Sweep-driver throughput over a DAC grid, honoring ``--workers``.

    Runs the boundary DAC scenario over an ``n x window`` grid through
    :class:`repro.bench.sweep.Sweep` (the parallel-aware executor; the
    CLI's ``--workers`` flag sets the worker default it consults) and
    checks the paper-level sanity claim that rounds-to-output grow
    with the adversary window. Every run also exercises the engine's
    untraced fast path end to end.
    """
    from repro.bench.sweep import Sweep
    from repro.sim.parallel import get_default_workers
    from repro.workloads import run_dac_trial

    table = TableResult(
        "S2",
        f"Sweep executor (DAC grid, workers={get_default_workers()})",
        ["n", "window", "trials", "mean rounds"],
    )
    grid = {
        "n": [5, 9] if quick else [5, 9, 13, 17],
        "window": [1, 2] if quick else [1, 2, 3],
    }
    sweep = Sweep(grid=grid, repeats=3 if quick else 5)
    start = time.perf_counter()
    sweep.run(run_dac_trial)  # workers=None -> process-wide default
    elapsed = max(time.perf_counter() - start, 1e-9)
    stats = sweep.summarize_by(
        "n", "window", value=lambda r: float(r.result["rounds"])
    )
    for (n, window), summary in sorted(stats.items()):
        table.add_row(n, window, summary.count, summary.mean)
    if not all(record.result["correct"] for record in sweep.records):
        table.fail("some sweep trials violated the DAC correctness verdicts")
    for n in grid["n"]:
        if stats[(n, 2)].mean <= stats[(n, 1)].mean:
            table.fail(f"rounds did not grow with the window at n={n}")
    table.add_note(
        f"whole sweep: {len(sweep.records)} trials in {elapsed:.2f}s "
        f"({len(sweep.records) / elapsed:.1f} trials/s); records are "
        "identical for any worker count -- workers only change wall-clock."
    )
    return table


# ---------------------------------------------------------------------------
# S3 -- Batched executor throughput and identity (engineering sanity).
# ---------------------------------------------------------------------------

def experiment_s3(quick: bool = True) -> TableResult:
    """Batched lock-step executor vs per-trial execution, honoring ``--batch``.

    Runs one grid cell's repeats twice through
    :class:`repro.bench.sweep.Sweep` -- once trial by trial, once
    grouped into :mod:`repro.sim.batch` lock-step batches -- and
    asserts the subsystem's core claim: the records are *identical*,
    batch size is purely a speed knob. Throughput for both legs is
    reported; the speedup needs the vectorized numpy backend (the
    pure-Python fallback exists for portability, not speed).
    """
    from repro.bench.sweep import Sweep
    from repro.sim.batch import numpy_available
    from repro.sim.parallel import get_default_batch
    from repro.workloads import run_dac_trial

    batch = get_default_batch()
    if batch <= 1:
        batch = 8  # the experiment's subject is batching; default to 8 lanes
    backend = "numpy" if numpy_available() else "python fallback"
    table = TableResult(
        "S3",
        f"Batched executor (boundary DAC, batch={batch}, backend={backend})",
        ["n", "trials", "serial trials/s", "batched trials/s", "speedup", "identical"],
    )
    sizes = [9, 17] if quick else [9, 17, 33]
    repeats = 2 * batch if quick else 4 * batch
    for n in sizes:
        grid = {"n": [n], "window": [1]}
        serial = Sweep(grid=grid, repeats=repeats)
        start = time.perf_counter()
        serial.run(run_dac_trial, workers=1, batch=1)
        serial_rate = len(serial.records) / max(time.perf_counter() - start, 1e-9)
        batched = Sweep(grid=grid, repeats=repeats)
        start = time.perf_counter()
        batched.run(run_dac_trial, workers=1, batch=batch)
        batched_rate = len(batched.records) / max(time.perf_counter() - start, 1e-9)
        identical = serial.records == batched.records
        table.add_row(
            n,
            len(serial.records),
            serial_rate,
            batched_rate,
            batched_rate / serial_rate,
            identical,
        )
        if not identical:
            table.fail(f"n={n}: batched records differ from per-trial records")
        if not all(record.result["correct"] for record in batched.records):
            table.fail(f"n={n}: batched trials violated the DAC verdicts")
    table.add_note("Batching composes with --workers: batches fan out over the")
    table.add_note("process pool, so the speedups multiply (see docs/scaling.md).")
    return table


def experiment_s4(quick: bool = True) -> TableResult:
    """Batched DBAC/Byzantine lanes vs per-trial execution, honoring ``--batch``.

    The Byzantine counterpart of S3: runs boundary-DBAC grid cells
    (``nearest`` enforcing adversary, equivocating Byzantine nodes --
    the value-dependent selector and witness-counter state the
    vectorized kernel had to learn) twice through
    :class:`repro.bench.sweep.Sweep` -- per trial and grouped into
    :class:`repro.sim.batch.ByzBatchEngine` lock-step batches -- and
    asserts the records are identical: batch size is purely a speed
    knob for the Byzantine lane families too (see docs/batching.md).
    """
    from repro.bench.sweep import Sweep
    from repro.sim.batch import numpy_available
    from repro.sim.parallel import get_default_batch
    from repro.workloads import run_dbac_trial

    batch = get_default_batch()
    if batch <= 1:
        batch = 8  # the experiment's subject is batching; default to 8 lanes
    backend = "numpy" if numpy_available() else "python fallback"
    table = TableResult(
        "S4",
        f"Batched DBAC lanes (boundary adversary, batch={batch}, backend={backend})",
        ["n", "trials", "serial trials/s", "batched trials/s", "speedup", "identical"],
    )
    sizes = [11, 16] if quick else [11, 16, 33]
    repeats = 2 * batch if quick else 4 * batch
    for n in sizes:
        grid = {"n": [n], "window": [1]}
        serial = Sweep(grid=grid, repeats=repeats)
        start = time.perf_counter()
        serial.run(run_dbac_trial, workers=1, batch=1)
        serial_rate = len(serial.records) / max(time.perf_counter() - start, 1e-9)
        batched = Sweep(grid=grid, repeats=repeats)
        start = time.perf_counter()
        batched.run(run_dbac_trial, workers=1, batch=batch)
        batched_rate = len(batched.records) / max(time.perf_counter() - start, 1e-9)
        identical = serial.records == batched.records
        table.add_row(
            n,
            len(serial.records),
            serial_rate,
            batched_rate,
            batched_rate / serial_rate,
            identical,
        )
        if not identical:
            table.fail(f"n={n}: batched records differ from per-trial records")
        if not all(record.result["correct"] for record in batched.records):
            table.fail(f"n={n}: batched trials violated the DBAC verdicts")
    table.add_note("Oracle stopping: each trial measures rounds until the honest")
    table.add_note("spread dips to epsilon under the nearest-value adversary.")
    return table
