"""repro -- Fault-tolerant consensus in anonymous dynamic networks.

A complete, executable reproduction of *"Fault-tolerant Consensus in
Anonymous Dynamic Network"* (Zhang & Tseng, ICDCS 2024;
arXiv:2405.03017): the synchronous anonymous-network simulation
substrate, the DAC and DBAC algorithms, the ``(T, D)``-dynaDegree
stability property, the message adversaries from the impossibility
proofs, and the measurement harness for every claim in the paper.

Quickstart
----------
>>> from repro import build_dac_execution, run_consensus
>>> execution = build_dac_execution(n=9, f=4, epsilon=1e-3, seed=7)
>>> report = run_consensus(**execution)
>>> report.correct
True

See ``examples/`` for full scenarios and ``benchmarks/`` for the
experiment suite indexed in DESIGN.md.
"""

from repro.adversary import (
    AlternatingAdversary,
    RootedStarAdversary,
    StableSpanningTreeAdversary,
    EventuallyStableAdversary,
    IsolateThenConnectAdversary,
    LastMinuteQuorumAdversary,
    LookaheadQuorumAdversary,
    MessageAdversary,
    MobileOmissionAdversary,
    PhaseSkewAdversary,
    RandomLinkAdversary,
    ReceiveSetsAdversary,
    RotatingQuorumAdversary,
    ScheduleAdversary,
    SplitGroupsAdversary,
    StaticAdversary,
    figure1_adversary,
)
from repro.analysis import judge_outputs, summarize
from repro.core import (
    AsymptoticAveragingProcess,
    DACProcess,
    DBACProcess,
    FloodMinProcess,
    IteratedMidpointProcess,
    MajorityVoteProcess,
    PiggybackDACProcess,
    TrimmedMeanProcess,
    dac_convergence_rate,
    dac_end_phase,
    dbac_convergence_rate,
    dbac_end_phase,
    rounds_upper_bound,
)
from repro.faults import (
    ByzantineStrategy,
    CrashEvent,
    ExtremeByzantine,
    FaultPlan,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
    TwoFacedByzantine,
    staggered_crashes,
)
from repro.mc import BoundedExplorer, mobile_omission_choices
from repro.net import (
    Topology,
    DynaDegreeChecker,
    DynamicGraph,
    EdgeSchedule,
    PortNumbering,
    check_dynadegree,
    identity_ports,
    max_degree_for_window,
    random_ports,
)
from repro.sim import (
    BatchEngine,
    ConsensusProcess,
    LaneResult,
    load_trace,
    numpy_available,
    replay_adversary,
    run_dac_batch,
    save_trace,
    Delivery,
    Engine,
    ExecutionReport,
    StateMessage,
    run_consensus,
)
from repro.workloads import (
    build_dac_execution,
    build_dbac_execution,
    theorem9_part2_execution,
    theorem9_split_execution,
    theorem10_split_execution,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # ``DirectedGraph`` resolves lazily through repro.net.graph so its
    # one-time DeprecationWarning fires on first use, not on
    # ``import repro`` (see repro.net.graph's module docstring).
    if name == "DirectedGraph":
        from repro.net import graph

        return graph.DirectedGraph
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    # Algorithms
    "DACProcess",
    "DBACProcess",
    "AsymptoticAveragingProcess",
    "PiggybackDACProcess",
    "IteratedMidpointProcess",
    "TrimmedMeanProcess",
    "FloodMinProcess",
    "MajorityVoteProcess",
    # Phase math
    "dac_end_phase",
    "dbac_end_phase",
    "dac_convergence_rate",
    "dbac_convergence_rate",
    "rounds_upper_bound",
    # Network
    "Topology",
    "DirectedGraph",
    "DynamicGraph",
    "EdgeSchedule",
    "PortNumbering",
    "identity_ports",
    "random_ports",
    "check_dynadegree",
    "max_degree_for_window",
    "DynaDegreeChecker",
    # Adversaries
    "MessageAdversary",
    "StaticAdversary",
    "ScheduleAdversary",
    "AlternatingAdversary",
    "figure1_adversary",
    "RandomLinkAdversary",
    "EventuallyStableAdversary",
    "RotatingQuorumAdversary",
    "LastMinuteQuorumAdversary",
    "PhaseSkewAdversary",
    "LookaheadQuorumAdversary",
    "SplitGroupsAdversary",
    "ReceiveSetsAdversary",
    "IsolateThenConnectAdversary",
    "MobileOmissionAdversary",
    "RootedStarAdversary",
    "StableSpanningTreeAdversary",
    # Faults
    "FaultPlan",
    "CrashEvent",
    "staggered_crashes",
    "ByzantineStrategy",
    "FixedValueByzantine",
    "ExtremeByzantine",
    "RandomByzantine",
    "PhaseLiarByzantine",
    "TwoFacedByzantine",
    # Simulation
    "Engine",
    "BatchEngine",
    "LaneResult",
    "run_dac_batch",
    "numpy_available",
    "ConsensusProcess",
    "Delivery",
    "StateMessage",
    "run_consensus",
    "ExecutionReport",
    "save_trace",
    "load_trace",
    "replay_adversary",
    # Model checking
    "BoundedExplorer",
    "mobile_omission_choices",
    # Analysis
    "judge_outputs",
    "summarize",
    # Workload builders
    "build_dac_execution",
    "build_dbac_execution",
    "theorem9_split_execution",
    "theorem9_part2_execution",
    "theorem10_split_execution",
]
