"""The Charron-Bost averaging family, registered via the public API.

This module is the registry's pluggability proof and the recipe new
families copy (see ``docs/scenarios.md``): one module that

1. implements (or imports) its process --
   :class:`repro.core.averaging.AveragingProcess`;
2. defines a module-level picklable trial function with a
   ``batch_fn`` attachment (here through the generic python-backend
   lock-step engine, :class:`repro.sim.batch.GenericBatchEngine` --
   no dedicated kernel needed) and an ``arena_plan`` hook;
3. subclasses :class:`repro.scenario.registry.AlgorithmFamily` and
   registers it with :func:`repro.scenario.registry.register_algorithm`
   at import time, reusing the declared component vocabulary
   (``dynadegree`` / ``quorum``).

Nothing here is special-cased anywhere else: the conformance suite
(`tests/test_scenario_conformance.py`) discovers the family from the
registry and enrolls it in the differential harness -- serial,
traced, batch and pooled legs -- with zero new test code.
"""

from __future__ import annotations

import functools
from typing import Any

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    RotatingQuorumAdversary,
    rotate_topology,
)
from repro.core.averaging import AVERAGING_RULES, AveragingProcess
from repro.core.phases import dac_end_phase
from repro.faults.base import FaultPlan
from repro.net.ports import random_ports
from repro.scenario.registry import AlgorithmFamily, ParamSpec, register_algorithm
from repro.sim.rng import child_rng, spawn_inputs
from repro.workloads import dac_degree


def build_averaging_execution(
    n: int,
    rule: str = "mean",
    f: int = 0,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
) -> dict[str, Any]:
    """Per-round neighbor averaging under DAC's boundary adversary.

    The same enforcing ``(window, floor(n/2))`` adversary and
    input/port streams as :func:`repro.workloads.build_dac_execution`,
    with :class:`~repro.core.averaging.AveragingProcess` nodes
    (``rule`` in ``mean``/``midpoint``) running a fixed
    ``num_rounds`` budget (default: DAC's ``p_end``). Returns kwargs
    for :func:`repro.sim.runner.run_consensus`.
    """
    if num_rounds is None:
        num_rounds = dac_end_phase(epsilon)
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    processes = {
        node: AveragingProcess(
            n, f, inputs[node], ports.self_port(node), rule=rule, num_rounds=num_rounds
        )
        for node in range(n)
    }
    degree = dac_degree(n)
    if window == 1:
        adversary = RotatingQuorumAdversary(degree, selector=selector)
    else:
        adversary = LastMinuteQuorumAdversary(window, degree, selector=selector)
    return {
        "processes": processes,
        "adversary": adversary,
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        # One averaging round per delivery batch; a window of slack
        # covers the last batch, as for the reliable baselines.
        "max_rounds": num_rounds + 2 * window,
        "seed": seed,
    }


def _summary(lane, epsilon: float) -> dict[str, Any]:
    """The trial summary for one lane, with the runner's float slack."""
    from repro.sim.runner import _FLOAT_SLACK

    outputs = lane.outputs
    spread = max(outputs.values()) - min(outputs.values()) if outputs else 0.0
    eps_agreement = not outputs or spread <= epsilon + _FLOAT_SLACK
    hull_lo = min(lane.inputs.values())
    hull_hi = max(lane.inputs.values())
    validity = all(
        hull_lo - _FLOAT_SLACK <= value <= hull_hi + _FLOAT_SLACK
        for value in outputs.values()
    )
    return {
        "rounds": lane.rounds,
        "spread": spread,
        "terminated": lane.stopped,
        "correct": lane.stopped and validity and eps_agreement,
    }


def run_averaging_trial(
    n: int,
    rule: str = "mean",
    f: int = 0,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
    seed: int = 0,
) -> dict[str, Any]:
    """One averaging execution reduced to the standard trial summary.

    Module-level and picklable, so it fans out under ``workers=N``
    and batches under ``batch=B`` through the attached ``batch_fn``
    exactly like the :mod:`repro.workloads` trials. Averaging has no
    termination detection -- ``correct`` reports whether the fixed
    budget actually reached epsilon-agreement, which under the
    enforcing adversary it typically does not (the paper's point).

    >>> summary = run_averaging_trial(n=5, seed=0)
    >>> sorted(summary)
    ['correct', 'rounds', 'spread', 'terminated']
    >>> run_averaging_trial.batch_fn(n=5, seeds=[0]) == [summary]
    True
    """
    from repro.sim.runner import run_consensus

    report = run_consensus(
        **build_averaging_execution(
            n=n,
            rule=rule,
            f=f,
            epsilon=epsilon,
            seed=seed,
            window=window,
            selector=selector,
            num_rounds=num_rounds,
        )
    )
    return {
        "rounds": report.rounds,
        "spread": report.output_spread,
        "terminated": report.terminated,
        "correct": report.correct,
    }


def run_averaging_trial_batch(
    n: int,
    rule: str = "mean",
    f: int = 0,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
    seeds: Any = (),
) -> list[dict[str, Any]]:
    """Batched :func:`run_averaging_trial`: one summary per seed, in order.

    Runs through :func:`repro.sim.batch.run_generic_batch` -- the
    registry's no-kernel-required batched form: real serial engines
    advanced in lock-step, bit-identical to per-seed serial runs by
    construction.
    """
    from repro.sim.batch import run_generic_batch

    build = functools.partial(
        _averaging_build_for_seed,
        n=n,
        rule=rule,
        f=f,
        epsilon=epsilon,
        window=window,
        selector=selector,
        num_rounds=num_rounds,
    )
    lanes = run_generic_batch([int(seed) for seed in seeds], build)
    return [_summary(lane, epsilon) for lane in lanes]


def _averaging_build_for_seed(seed: int, **params: Any) -> dict[str, Any]:
    """Seed-first adapter for :class:`repro.sim.batch.GenericBatchEngine`."""
    return build_averaging_execution(seed=seed, **params)


def _averaging_arena_plan(params: dict[str, Any]) -> list[Any]:
    """Topologies the batched form will need (all-live rotate cycle).

    Averaging runs fault-free, so the enforcing rotate structure is
    one all-live salt cycle at the DAC degree -- the same best-effort
    contract as the :mod:`repro.workloads` plans.
    """
    if params.get("selector", "rotate") != "rotate":
        return []
    n = params["n"]
    live = tuple(range(n))
    return [rotate_topology(n, live, salt, dac_degree(n)) for salt in range(n)]


run_averaging_trial.batch_fn = run_averaging_trial_batch  # type: ignore[attr-defined]
run_averaging_trial_batch.arena_plan = _averaging_arena_plan  # type: ignore[attr-defined]


@register_algorithm("averaging", version=1)
class AveragingFamily(AlgorithmFamily):
    """Charron-Bost per-round neighbor averaging under the quorum adversary."""

    params = (
        ParamSpec("n", "int"),
        ParamSpec("rule", "str", default="mean", choices=AVERAGING_RULES),
        ParamSpec("f", "int", default=0),
        ParamSpec("epsilon", "float", default=1e-3),
        ParamSpec("num_rounds", "int", default=None, nullable=True),
    )
    components = {
        "network": ("dynadegree",),
        "adversary": ("quorum",),
    }
    conformance = {
        "quorum": ({"n": 5}, {"n": 6, "rule": "midpoint"}),
    }
    rounds_param = "num_rounds"
    trial = staticmethod(run_averaging_trial)

    def build(self, *, seed, **params):
        return build_averaging_execution(seed=seed, **params)

    def batch(self, seeds, *, backend="auto", **params):
        from repro.sim.batch import run_generic_batch

        build = functools.partial(_averaging_build_for_seed, **params)
        return run_generic_batch(seeds, build, backend=backend)

    def vectorizable(self, params):
        # Python backend only (the generic lock-step engine).
        return False
