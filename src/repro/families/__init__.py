"""Algorithm families registered through the public scenario API.

The built-in trial families live in :mod:`repro.workloads`; this
package holds families added *after* the registry existed, written
against the public :mod:`repro.scenario` surface only -- the living
proof that the registry is open. Importing the package (which
:func:`repro.scenario.resolve.ensure_builtin_families` does) performs
the registrations.
"""

import repro.families.averaging  # noqa: F401  (registers averaging@1)
