"""The Gafni-Losa mobile-omission adversary (Corollary 1's engine).

Theorem 8 (quoted from [18]) considers a synchronous complete network
where, in every round, each node may fail to receive *one* of the
messages sent to it -- and shows deterministic exact consensus is
impossible even fault-free. Dropping at most one incoming link per
node per round keeps every in-degree at ``n - 2`` or better, so the
trace satisfies ``(1, n-2)``-dynaDegree: this is how the paper derives
Corollary 1.

:class:`MobileOmissionAdversary` implements that power with pluggable
targeting:

- ``"block_min"`` -- each receiver loses the link from the sender
  currently holding the smallest state. Against FloodMin this
  suppresses the global minimum forever: its holder decides its own
  value, everyone else never hears it. Deterministic disagreement.
- ``"block_max"`` -- symmetric, for max-based candidates.
- ``"rotate"`` -- receiver ``v`` loses the link from sender
  ``(v + t) mod n``; an oblivious pattern for stress tests.
- ``"none"`` -- drops nothing (sanity baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

MOBILE_MODES = ("block_min", "block_max", "rotate", "none")
_MODES = MOBILE_MODES  # backward-compatible alias

# Victim-vector -> Topology memo, bounded like the Topology intern
# table. The value-targeted modes produce very few distinct victim
# vectors per execution (the global extremum holder changes rarely and
# "rotate" cycles with period n), so replaying a round's mask is a
# dict hit instead of an O(n^2) edge rebuild.
_MASK_MEMO_MAX = 4096
_mask_memo: dict[tuple[int, tuple[int | None, ...]], Topology] = {}


def mobile_topology(n: int, victims: "tuple[int | None, ...]") -> Topology:
    """The complete graph minus each receiver's victim in-link, memoized.

    ``victims`` is one round's mask as produced by
    :func:`mobile_victims` (entry ``v`` is the sender whose link into
    ``v`` is cut, ``None`` for no cut). The topology is built through
    :meth:`~repro.net.topology.Topology.from_receiver_lists` (trusted,
    O(m + n), seeds the adjacency rows directly), and interning makes
    repeated masks resolve to the identical instance -- which is what
    lets the engine's delivery sweep reuse its cached routing plan
    across mobile rounds with a stable extremum.
    """
    key = (n, victims)
    cached = _mask_memo.get(key)
    if cached is None:
        if len(_mask_memo) >= _MASK_MEMO_MAX:
            _mask_memo.clear()
        cached = Topology.from_receiver_lists(
            n,
            (
                [u for u in range(n) if u != v and u != victims[v]]
                for v in range(n)
            ),
        )
        _mask_memo[key] = cached
    return cached


def mobile_victims(
    mode: str, n: int, t: int, values: "list[float | None]"
) -> "list[int | None]":
    """The per-receiver victim sender of one mobile-omission round.

    ``values[u]`` is node ``u``'s scalar state at the start of the
    round (``None`` for nodes without an honest state). Entry ``v`` of
    the result is the sender whose link into ``v`` is cut this round
    (``None`` keeps all of ``v``'s in-links). For the value-targeted
    modes the victim is the extremum holder among ``u != v``, ties
    broken toward the lowest node ID -- which resolves to the global
    (first) extremum for every receiver except that extremum holder
    itself, who loses the second one.

    This is the targeting hook the vectorized batch kernel replicates
    with two ``argmin``/``argmax`` passes per lane; its equivalence
    tests pin the two against each other (see docs/batching.md).
    """
    if mode not in MOBILE_MODES:
        raise ValueError(f"mode must be one of {MOBILE_MODES}, got {mode!r}")
    if mode == "none":
        return [None] * n
    if mode == "rotate":
        return [None if (v + t) % n == v else (v + t) % n for v in range(n)]
    prefer_min = mode == "block_min"
    first: int | None = None  # global extremum (lowest ID on ties)
    second: int | None = None  # extremum of the rest, for the holder itself
    for u in range(n):
        value = values[u]
        if value is None:
            continue
        if first is None or (
            value < values[first] if prefer_min else value > values[first]
        ):
            first, second = u, first
        elif second is None or (
            value < values[second] if prefer_min else value > values[second]
        ):
            second = u
    return [second if v == first else first for v in range(n)]


class MobileOmissionAdversary(MessageAdversary):
    """Complete graph minus at most one incoming link per node per round."""

    def __init__(self, mode: str = "block_min") -> None:
        super().__init__()
        if mode not in MOBILE_MODES:
            raise ValueError(f"mode must be one of {MOBILE_MODES}, got {mode!r}")
        self.mode = mode

    def _victim_sender(self, receiver: int, t: int, view: "EngineView") -> int | None:
        """Which sender's link into ``receiver`` to cut this round.

        Kept as the per-receiver specification :func:`mobile_victims`
        is computed from (and regression-tested against)."""
        if self.mode == "none":
            return None
        if self.mode == "rotate":
            victim = (receiver + t) % self.n
            return None if victim == receiver else victim
        extremum_value: float | None = None
        extremum_node: int | None = None
        for u in range(self.n):
            if u == receiver:
                continue
            value = view.value(u)
            if value is None:
                continue
            better = (
                extremum_value is None
                or (self.mode == "block_min" and value < extremum_value)
                or (self.mode == "block_max" and value > extremum_value)
            )
            if better:
                extremum_value = value
                extremum_node = u
        return extremum_node

    def choose(self, t: int, view: "EngineView") -> Topology:
        values = [view.value(u) for u in range(self.n)]
        victims = mobile_victims(self.mode, self.n, t, values)
        return mobile_topology(self.n, tuple(victims))

    def promised_dynadegree(self) -> tuple[int, int] | None:
        # Every node keeps at least n-2 incoming links every round.
        return (1, self.n - 2) if self.n >= 3 else None
