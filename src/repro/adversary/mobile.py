"""The Gafni-Losa mobile-omission adversary (Corollary 1's engine).

Theorem 8 (quoted from [18]) considers a synchronous complete network
where, in every round, each node may fail to receive *one* of the
messages sent to it -- and shows deterministic exact consensus is
impossible even fault-free. Dropping at most one incoming link per
node per round keeps every in-degree at ``n - 2`` or better, so the
trace satisfies ``(1, n-2)``-dynaDegree: this is how the paper derives
Corollary 1.

:class:`MobileOmissionAdversary` implements that power with pluggable
targeting:

- ``"block_min"`` -- each receiver loses the link from the sender
  currently holding the smallest state. Against FloodMin this
  suppresses the global minimum forever: its holder decides its own
  value, everyone else never hears it. Deterministic disagreement.
- ``"block_max"`` -- symmetric, for max-based candidates.
- ``"rotate"`` -- receiver ``v`` loses the link from sender
  ``(v + t) mod n``; an oblivious pattern for stress tests.
- ``"none"`` -- drops nothing (sanity baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.topology import Edge, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_MODES = ("block_min", "block_max", "rotate", "none")


class MobileOmissionAdversary(MessageAdversary):
    """Complete graph minus at most one incoming link per node per round."""

    def __init__(self, mode: str = "block_min") -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.mode = mode

    def _victim_sender(self, receiver: int, t: int, view: "EngineView") -> int | None:
        """Which sender's link into ``receiver`` to cut this round."""
        if self.mode == "none":
            return None
        if self.mode == "rotate":
            victim = (receiver + t) % self.n
            return None if victim == receiver else victim
        extremum_value: float | None = None
        extremum_node: int | None = None
        for u in range(self.n):
            if u == receiver:
                continue
            value = view.value(u)
            if value is None:
                continue
            better = (
                extremum_value is None
                or (self.mode == "block_min" and value < extremum_value)
                or (self.mode == "block_max" and value > extremum_value)
            )
            if better:
                extremum_value = value
                extremum_node = u
        return extremum_node

    def choose(self, t: int, view: "EngineView") -> Topology:
        edges: list[Edge] = []
        for v in range(self.n):
            victim = self._victim_sender(v, t, view)
            for u in range(self.n):
                if u != v and u != victim:
                    edges.append((u, v))
        return Topology(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int] | None:
        # Every node keeps at least n-2 incoming links every round.
        return (1, self.n - 2) if self.n >= 3 else None
