"""Enforcing worst-case adversaries: hostile but ``(T, D)``-bound.

These adversaries are the sharp edge of the sufficiency experiments:
they give the algorithm the *least* the stability property allows.

- :class:`RotatingQuorumAdversary` -- ``T = 1``: every round, every
  node hears from exactly ``D`` senders, but the set rotates each
  round, so no stable neighborhood ever forms (the paper's point that
  ``(1, 1)``-dynaDegree still allows arbitrary churn).
- :class:`LastMinuteQuorumAdversary` -- general ``T``: silence for the
  first ``T - 1`` rounds of every aligned window, then exactly ``D``
  in-links on the window's last round. Every sliding ``T``-window
  contains exactly one delivery round, so ``(T, D)`` holds -- barely.
  This maximizes rounds-to-termination (the ``T * p_end`` bound of
  experiment E3 is approached) and starves any algorithm that hopes
  for steady progress.

Sender selection is pluggable; ``"nearest"`` is adversarially tuned
for averaging algorithms (it feeds every node the values closest to
its own, minimizing contraction, with Byzantine senders prioritized to
burn quota on garbage).

Both adversaries deliver links *to* every node (faulty included --
harmless) but count their ``D`` guarantee from senders that actually
transmit: live (non-crashed) nodes and Byzantine nodes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.graph import DirectedGraph, Edge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_SELECTORS = ("rotate", "nearest", "random")


class _QuorumSelector:
    """Shared sender-selection logic for the constrained adversaries."""

    def __init__(self, degree: int, selector: str) -> None:
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if selector not in _SELECTORS:
            raise ValueError(f"selector must be one of {_SELECTORS}, got {selector!r}")
        self.degree = degree
        self.selector = selector

    def pick(
        self,
        receiver: int,
        salt: int,
        view: "EngineView",
        adversary: MessageAdversary,
    ) -> list[int]:
        """Exactly ``D`` transmitting senders for ``receiver`` (fewer only
        when the execution does not have that many transmitters)."""
        live = [u for u in sorted(view.live_senders()) if u != receiver]
        if self.selector == "rotate":
            live.sort(key=lambda u: (u - receiver - 1 - salt) % view.n)
        elif self.selector == "random":
            adversary.rng.shuffle(live)
        else:  # nearest: Byzantine first, then closest values
            my_value = view.value(receiver)
            plan = view.fault_plan

            def hostility(u: int) -> tuple[int, float]:
                if plan.is_byzantine(u):
                    return (0, 0.0)
                value = view.value(u)
                if my_value is None or value is None:
                    return (1, 0.0)
                return (1, abs(value - my_value))

            live.sort(key=hostility)
        return live[: self.degree]


class RotatingQuorumAdversary(MessageAdversary):
    """``(1, D)``-dynaDegree, minimal and churning every round."""

    def __init__(self, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-round in-degree ``D``."""
        return self._quorum.degree

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        edges: list[Edge] = []
        for v in range(self.n):
            for u in self._quorum.pick(v, t, view, self):
                edges.append((u, v))
        return DirectedGraph(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (1, self._quorum.degree)


class PhaseSkewAdversary(MessageAdversary):
    """Creates maximal phase skew: a fast clique races ahead while slow
    nodes hear from it only once per ``window`` rounds.

    Fast nodes (everyone not in ``slow``) receive ``D`` in-links from
    other fast nodes *every* round, so they complete a phase per round;
    slow nodes receive their ``D`` links (also from fast senders) only
    on the last round of each window. The trace satisfies
    ``(window, D)``-dynaDegree.

    This is the scenario where DAC's jump rule earns its keep
    (experiment X3): by their delivery round, everything a slow node
    hears is from higher phases. With jumping it copies and catches up;
    without jumping it ignores those messages and waits forever for
    same-phase states nobody will send again.

    Requires at least ``D + 1`` fast nodes (the clique must feed
    itself).
    """

    def __init__(self, degree: int, slow: "frozenset[int] | set[int]", window: int = 2) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.degree = degree
        self.slow = frozenset(slow)
        self.window = window

    def _on_setup(self) -> None:
        fast = [v for v in range(self.n) if v not in self.slow]
        if len(fast) < self.degree + 1:
            raise ValueError(
                f"need at least D+1={self.degree + 1} fast nodes, got {len(fast)}"
            )
        self._fast = fast

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        edges: list[Edge] = []
        fast = self._fast
        for i, v in enumerate(fast):
            senders = [fast[(i + 1 + k) % len(fast)] for k in range(self.degree)]
            edges.extend((u, v) for u in senders if u != v)
        if (t + 1) % self.window == 0:
            for v in sorted(self.slow):
                senders = [fast[(v + k) % len(fast)] for k in range(self.degree)]
                edges.extend((u, v) for u in senders if u != v)
        return DirectedGraph(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self.degree)


class LastMinuteQuorumAdversary(MessageAdversary):
    """``(T, D)``-dynaDegree delivered entirely on each window's last round."""

    def __init__(self, window: int, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.window = window
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-window in-degree ``D``."""
        return self._quorum.degree

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        if (t + 1) % self.window != 0:
            return DirectedGraph.empty(self.n)
        edges: list[Edge] = []
        salt = t // self.window
        for v in range(self.n):
            for u in self._quorum.pick(v, salt, view, self):
                edges.append((u, v))
        return DirectedGraph(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self._quorum.degree)
