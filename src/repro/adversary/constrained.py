"""Enforcing worst-case adversaries: hostile but ``(T, D)``-bound.

These adversaries are the sharp edge of the sufficiency experiments:
they give the algorithm the *least* the stability property allows.

- :class:`RotatingQuorumAdversary` -- ``T = 1``: every round, every
  node hears from exactly ``D`` senders, but the set rotates each
  round, so no stable neighborhood ever forms (the paper's point that
  ``(1, 1)``-dynaDegree still allows arbitrary churn).
- :class:`LastMinuteQuorumAdversary` -- general ``T``: silence for the
  first ``T - 1`` rounds of every aligned window, then exactly ``D``
  in-links on the window's last round. Every sliding ``T``-window
  contains exactly one delivery round, so ``(T, D)`` holds -- barely.
  This maximizes rounds-to-termination (the ``T * p_end`` bound of
  experiment E3 is approached) and starves any algorithm that hopes
  for steady progress.

Sender selection is pluggable; ``"nearest"`` is adversarially tuned
for averaging algorithms (it feeds every node the values closest to
its own, minimizing contraction, with Byzantine senders prioritized to
burn quota on garbage).

Both adversaries deliver links *to* every node (faulty included --
harmless) but count their ``D`` guarantee from senders that actually
transmit: live (non-crashed) nodes and Byzantine nodes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.topology import Edge, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_SELECTORS = ("rotate", "nearest", "random")

# Rotate orderings depend only on (n, live set, salt mod n): bound the
# memo so pathological crash schedules cannot grow it without limit.
_ROTATE_CACHE_MAX = 4096


def rotate_picks(
    n: int, live: tuple[int, ...], salt: int, degree: int
) -> list[list[int]]:
    """The ``rotate`` selection for every receiver of one round.

    Receiver ``v`` takes the first ``degree`` live senders in cyclic
    node order starting at ``(v + 1 + salt) % n`` -- exactly the order
    ``sorted(live, key=lambda u: (u - v - 1 - salt) % n)`` the selector
    is specified by, computed as a cyclic walk instead of a
    per-receiver keyed sort. Shared with :mod:`repro.sim.batch`, whose
    vectorized engine must replicate serial adversary choices bit for
    bit.
    """
    live_sorted = sorted(set(live))
    doubled = live_sorted + live_sorted
    count = len(live_sorted)
    picks: list[list[int]] = []
    for v in range(n):
        start = bisect_left(live_sorted, (v + 1 + salt) % n)
        chosen: list[int] = []
        for u in doubled[start : start + count]:
            if u == v:
                continue
            chosen.append(u)
            if len(chosen) == degree:
                break
        picks.append(chosen)
    return picks


# The rotate *round structure* -- the Topology one rotate round plays
# -- is shared by every layer that replicates rotate choices: the
# serial enforcing adversaries replay it from here, and the batched
# executor derives its delivered-from matrices from its adjacency
# rows. Keyed on the hash-consed arguments; bounded like the pick memo.
_rotate_topologies: dict[tuple[int, tuple[int, ...], int, int], Topology] = {}


def rotate_topology(
    n: int, live: tuple[int, ...], salt: int, degree: int
) -> Topology:
    """The interned :class:`Topology` of one ``rotate`` round.

    Edges are ``(sender, receiver)`` for every receiver's
    :func:`rotate_picks` senders. The result depends only on
    ``(n, live set, salt mod n, degree)``, so after the crash schedule
    settles every enforced round resolves to an already-built graph
    whose adjacency rows the engine reads directly.
    """
    key = (n, live, salt % n, degree)
    cached = _rotate_topologies.get(key)
    if cached is None:
        if len(_rotate_topologies) >= _ROTATE_CACHE_MAX:
            _rotate_topologies.clear()
        edges = sorted(
            (u, receiver)
            for receiver, senders in enumerate(rotate_picks(n, live, salt, degree))
            for u in senders
        )
        cached = Topology.from_sorted_edges(n, edges)
        _rotate_topologies[key] = cached
    return cached


def nearest_picks(
    n: int,
    live: tuple[int, ...],
    values: "list[float | None]",
    byzantine: frozenset[int],
    degree: int,
) -> list[list[int]]:
    """The ``nearest`` selection for every receiver of one round.

    ``values[u]`` is node ``u``'s scalar state at the start of the round
    (``None`` for Byzantine nodes, which have no honest state). The
    selection is *specified* as a per-receiver stable sort by
    ``(byzantine-first, |value - mine|)`` over the ascending live list;
    it is *computed* as a two-pointer walk over one round-constant
    value-sorted array instead of ``n`` keyed sorts. Equal distances are
    emitted in ascending node order, exactly the stability the specified
    sort guarantees (pinned against the spec sort by the selector
    regression tests, ties and all).

    This is the selector hook the vectorized batch kernel replicates:
    :mod:`repro.sim.batch` computes the same picks with one stable
    argsort over the lane's value matrix, and its equivalence tests pin
    the two against each other (see docs/batching.md).
    """
    live_sorted = sorted(set(live))
    byz_sorted = [u for u in live_sorted if u in byzantine]
    pairs = sorted((values[u], u) for u in live_sorted if u not in byzantine)
    vals = [value for value, _ in pairs]
    ids = [u for _, u in pairs]
    count = len(vals)
    picks: list[list[int]] = []
    for receiver in range(n):
        my_value = values[receiver]
        chosen = [u for u in byz_sorted if u != receiver][:degree]
        remaining = degree - len(chosen)
        if remaining > 0 and my_value is None:
            # Byzantine receiver: every honest distance ties at the
            # spec's (1, 0.0) key -- stable order is ascending u.
            for u in live_sorted:
                if u == receiver or u in byzantine:
                    continue
                chosen.append(u)
                remaining -= 1
                if remaining == 0:
                    break
        elif remaining > 0:
            left = bisect_left(vals, my_value) - 1
            right = left + 1
            while remaining > 0 and (left >= 0 or right < count):
                # my_value - vals[left] and vals[right] - my_value
                # are the exact floats abs() would produce (left
                # values are strictly below, right values at or
                # above my_value).
                d_left = (my_value - vals[left]) if left >= 0 else None
                d_right = (vals[right] - my_value) if right < count else None
                take_left = d_right is None or (
                    d_left is not None and d_left <= d_right
                )
                take_right = d_left is None or (
                    d_right is not None and d_right <= d_left
                )
                distance = d_left if take_left else d_right
                group: list[int] = []
                if take_left:
                    while left >= 0 and my_value - vals[left] == distance:
                        group.append(ids[left])
                        left -= 1
                if take_right:
                    while right < count and vals[right] - my_value == distance:
                        group.append(ids[right])
                        right += 1
                # The spec's stable sort emits equal distances in
                # ascending node order. Equal rounded distances can
                # span *distinct* values (float rounding), so the
                # collected group is not otherwise ordered by u --
                # always sort it (groups are tiny off the converged
                # case, and nearly sorted there).
                group.sort()
                for u in group:
                    if u == receiver:
                        continue
                    chosen.append(u)
                    remaining -= 1
                    if remaining == 0:
                        break
        picks.append(chosen)
    return picks


class _QuorumSelector:
    """Shared sender-selection logic for the constrained adversaries.

    Selection happens once per round for all receivers at once
    (:meth:`picks_for_round`): the live-sender set, fault roles and
    node values are round constants, so resolving them per receiver --
    as the original per-receiver ``pick`` did -- made the adversary,
    not the routing loop, the post-fast-path bottleneck. The static
    ``rotate`` orderings are additionally memoized per
    ``(n, live set, salt mod n)``; only the round-dependent parts
    (values for ``nearest``, the RNG stream for ``random``) are
    recomputed each round.
    """

    def __init__(self, degree: int, selector: str) -> None:
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if selector not in _SELECTORS:
            raise ValueError(f"selector must be one of {_SELECTORS}, got {selector!r}")
        self.degree = degree
        self.selector = selector
        self._rotate_cache: dict[tuple, list[list[int]]] = {}

    def picks_for_round(
        self,
        salt: int,
        view: "EngineView",
        adversary: MessageAdversary,
    ) -> list[list[int]]:
        """Exactly ``D`` transmitting senders for every receiver (fewer
        only when the execution does not have that many transmitters).

        Returns a list indexed by receiver. Identical, receiver for
        receiver, to what the historical per-receiver ``pick`` chose
        (asserted by the adversary regression tests)."""
        live_tuple = view.live_senders_sorted()
        live_sorted = list(live_tuple)
        n = view.n
        if self.selector == "rotate":
            return self._rotate_for(n, live_tuple, salt)
        if self.selector == "random":
            picks = []
            for receiver in range(n):
                live = [u for u in live_sorted if u != receiver]
                adversary.rng.shuffle(live)
                picks.append(live[: self.degree])
            return picks
        # nearest: Byzantine first, then closest values -- the shared
        # module-level hook (one source of truth for the tie-breaking
        # the vectorized batch kernel must replicate bit for bit).
        plan = view.fault_plan
        byzantine = frozenset(u for u in live_sorted if plan.is_byzantine(u))
        values = [view.value(u) for u in range(n)]
        return nearest_picks(n, live_tuple, values, byzantine, self.degree)

    def _rotate_for(
        self, n: int, live: tuple[int, ...], salt: int
    ) -> list[list[int]]:
        key = (n, live, salt % n)
        cached = self._rotate_cache.get(key)
        if cached is None:
            if len(self._rotate_cache) >= _ROTATE_CACHE_MAX:
                self._rotate_cache.clear()
            cached = rotate_picks(n, live, salt, self.degree)
            self._rotate_cache[key] = cached
        return cached

class _CachedGraphMixin:
    """Round-graph resolution for the enforcing quorum adversaries.

    ``rotate`` choices depend only on ``(live set, salt mod n)``, so
    those rounds resolve through the module-level
    :func:`rotate_topology` memo -- the same interned
    :class:`Topology` the batched executor derives its matrices from.
    After the crash schedule settles every enforced round is a pure
    memo hit replaying one graph whose adjacency rows are already
    built. Value- or RNG-dependent selectors are never cached; their
    per-round edge lists are wrapped into (hash-consed) Topologies
    directly.
    """

    _quorum: _QuorumSelector

    def _on_setup(self) -> None:  # kept as a subclass hook point
        pass

    def _graph_for(self, salt: int, view: "EngineView") -> Topology:
        if self._quorum.selector == "rotate":
            return rotate_topology(
                self.n, view.live_senders_sorted(), salt, self._quorum.degree
            )
        return Topology.from_receiver_lists(
            self.n, self._quorum.picks_for_round(salt, view, self)
        )


class RotatingQuorumAdversary(_CachedGraphMixin, MessageAdversary):
    """``(1, D)``-dynaDegree, minimal and churning every round."""

    def __init__(self, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-round in-degree ``D``."""
        return self._quorum.degree

    def choose(self, t: int, view: "EngineView") -> Topology:
        return self._graph_for(t, view)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (1, self._quorum.degree)


class PhaseSkewAdversary(MessageAdversary):
    """Creates maximal phase skew: a fast clique races ahead while slow
    nodes hear from it only once per ``window`` rounds.

    Fast nodes (everyone not in ``slow``) receive ``D`` in-links from
    other fast nodes *every* round, so they complete a phase per round;
    slow nodes receive their ``D`` links (also from fast senders) only
    on the last round of each window. The trace satisfies
    ``(window, D)``-dynaDegree.

    This is the scenario where DAC's jump rule earns its keep
    (experiment X3): by their delivery round, everything a slow node
    hears is from higher phases. With jumping it copies and catches up;
    without jumping it ignores those messages and waits forever for
    same-phase states nobody will send again.

    Requires at least ``D + 1`` fast nodes (the clique must feed
    itself).
    """

    def __init__(self, degree: int, slow: "frozenset[int] | set[int]", window: int = 2) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.degree = degree
        self.slow = frozenset(slow)
        self.window = window

    def _on_setup(self) -> None:
        fast = [v for v in range(self.n) if v not in self.slow]
        if len(fast) < self.degree + 1:
            raise ValueError(
                f"need at least D+1={self.degree + 1} fast nodes, got {len(fast)}"
            )
        self._fast = fast

    def choose(self, t: int, view: "EngineView") -> Topology:
        edges: list[Edge] = []
        fast = self._fast
        for i, v in enumerate(fast):
            senders = [fast[(i + 1 + k) % len(fast)] for k in range(self.degree)]
            edges.extend((u, v) for u in senders if u != v)
        if (t + 1) % self.window == 0:
            for v in sorted(self.slow):
                senders = [fast[(v + k) % len(fast)] for k in range(self.degree)]
                edges.extend((u, v) for u in senders if u != v)
        return Topology(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self.degree)


class LastMinuteQuorumAdversary(_CachedGraphMixin, MessageAdversary):
    """``(T, D)``-dynaDegree delivered entirely on each window's last round."""

    def __init__(self, window: int, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.window = window
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-window in-degree ``D``."""
        return self._quorum.degree

    def _on_setup(self) -> None:
        super()._on_setup()
        self._empty = Topology.empty(self.n)

    def choose(self, t: int, view: "EngineView") -> Topology:
        if (t + 1) % self.window != 0:
            return self._empty
        return self._graph_for(t // self.window, view)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self._quorum.degree)
