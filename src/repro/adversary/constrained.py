"""Enforcing worst-case adversaries: hostile but ``(T, D)``-bound.

These adversaries are the sharp edge of the sufficiency experiments:
they give the algorithm the *least* the stability property allows.

- :class:`RotatingQuorumAdversary` -- ``T = 1``: every round, every
  node hears from exactly ``D`` senders, but the set rotates each
  round, so no stable neighborhood ever forms (the paper's point that
  ``(1, 1)``-dynaDegree still allows arbitrary churn).
- :class:`LastMinuteQuorumAdversary` -- general ``T``: silence for the
  first ``T - 1`` rounds of every aligned window, then exactly ``D``
  in-links on the window's last round. Every sliding ``T``-window
  contains exactly one delivery round, so ``(T, D)`` holds -- barely.
  This maximizes rounds-to-termination (the ``T * p_end`` bound of
  experiment E3 is approached) and starves any algorithm that hopes
  for steady progress.

Sender selection is pluggable; ``"nearest"`` is adversarially tuned
for averaging algorithms (it feeds every node the values closest to
its own, minimizing contraction, with Byzantine senders prioritized to
burn quota on garbage).

Both adversaries deliver links *to* every node (faulty included --
harmless) but count their ``D`` guarantee from senders that actually
transmit: live (non-crashed) nodes and Byzantine nodes.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.graph import DirectedGraph, Edge

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_SELECTORS = ("rotate", "nearest", "random")

# Rotate orderings depend only on (n, live set, salt mod n): bound the
# memo so pathological crash schedules cannot grow it without limit.
_ROTATE_CACHE_MAX = 4096


def rotate_picks(
    n: int, live: tuple[int, ...], salt: int, degree: int
) -> list[list[int]]:
    """The ``rotate`` selection for every receiver of one round.

    Receiver ``v`` takes the first ``degree`` live senders in cyclic
    node order starting at ``(v + 1 + salt) % n`` -- exactly the order
    ``sorted(live, key=lambda u: (u - v - 1 - salt) % n)`` the selector
    is specified by, computed as a cyclic walk instead of a
    per-receiver keyed sort. Shared with :mod:`repro.sim.batch`, whose
    vectorized engine must replicate serial adversary choices bit for
    bit.
    """
    live_sorted = sorted(set(live))
    doubled = live_sorted + live_sorted
    count = len(live_sorted)
    picks: list[list[int]] = []
    for v in range(n):
        start = bisect_left(live_sorted, (v + 1 + salt) % n)
        chosen: list[int] = []
        for u in doubled[start : start + count]:
            if u == v:
                continue
            chosen.append(u)
            if len(chosen) == degree:
                break
        picks.append(chosen)
    return picks


class _QuorumSelector:
    """Shared sender-selection logic for the constrained adversaries.

    Selection happens once per round for all receivers at once
    (:meth:`picks_for_round`): the live-sender set, fault roles and
    node values are round constants, so resolving them per receiver --
    as the original per-receiver ``pick`` did -- made the adversary,
    not the routing loop, the post-fast-path bottleneck. The static
    ``rotate`` orderings are additionally memoized per
    ``(n, live set, salt mod n)``; only the round-dependent parts
    (values for ``nearest``, the RNG stream for ``random``) are
    recomputed each round.
    """

    def __init__(self, degree: int, selector: str) -> None:
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if selector not in _SELECTORS:
            raise ValueError(f"selector must be one of {_SELECTORS}, got {selector!r}")
        self.degree = degree
        self.selector = selector
        self._rotate_cache: dict[tuple, list[list[int]]] = {}

    def picks_for_round(
        self,
        salt: int,
        view: "EngineView",
        adversary: MessageAdversary,
    ) -> list[list[int]]:
        """Exactly ``D`` transmitting senders for every receiver (fewer
        only when the execution does not have that many transmitters).

        Returns a list indexed by receiver. Identical, receiver for
        receiver, to what the historical per-receiver ``pick`` chose
        (asserted by the adversary regression tests)."""
        live_sorted = sorted(view.live_senders())
        n = view.n
        if self.selector == "rotate":
            return self._rotate_for(n, tuple(live_sorted), salt)
        if self.selector == "random":
            picks = []
            for receiver in range(n):
                live = [u for u in live_sorted if u != receiver]
                adversary.rng.shuffle(live)
                picks.append(live[: self.degree])
            return picks
        # nearest: Byzantine first, then closest values. Fault roles
        # and values are round constants -- resolve them once, not once
        # per (receiver, candidate) comparison.
        plan = view.fault_plan
        byzantine = frozenset(u for u in live_sorted if plan.is_byzantine(u))
        values = {u: view.value(u) for u in live_sorted if u not in byzantine}
        picks = []
        for receiver in range(n):
            my_value = view.value(receiver)

            def hostility(u: int) -> tuple[int, float]:
                if u in byzantine:
                    return (0, 0.0)
                value = values[u]
                if my_value is None or value is None:
                    return (1, 0.0)
                return (1, abs(value - my_value))

            live = [u for u in live_sorted if u != receiver]
            live.sort(key=hostility)
            picks.append(live[: self.degree])
        return picks

    def _rotate_for(
        self, n: int, live: tuple[int, ...], salt: int
    ) -> list[list[int]]:
        key = (n, live, salt % n)
        cached = self._rotate_cache.get(key)
        if cached is None:
            if len(self._rotate_cache) >= _ROTATE_CACHE_MAX:
                self._rotate_cache.clear()
            cached = rotate_picks(n, live, salt, self.degree)
            self._rotate_cache[key] = cached
        return cached

    def edges_for_round(
        self,
        salt: int,
        view: "EngineView",
        adversary: MessageAdversary,
    ) -> list[Edge]:
        """This round's chosen ``(sender, receiver)`` link list."""
        edges: list[Edge] = []
        for receiver, senders in enumerate(self.picks_for_round(salt, view, adversary)):
            for u in senders:
                edges.append((u, receiver))
        return edges


class _CachedGraphMixin:
    """Graph memo for selectors whose choices are round-structural.

    ``rotate`` choices depend only on ``(live set, salt mod n)``, so the
    chosen :class:`DirectedGraph` (immutable) can be replayed whenever
    that key recurs -- after the crash schedule settles, every ``n``
    rounds. Value- or RNG-dependent selectors are never cached.
    """

    _quorum: _QuorumSelector

    def _on_setup(self) -> None:
        self._graph_cache: dict[tuple, DirectedGraph] = {}

    def _graph_for(self, salt: int, view: "EngineView") -> DirectedGraph:
        if self._quorum.selector != "rotate":
            return DirectedGraph(self.n, self._quorum.edges_for_round(salt, view, self))
        key = (tuple(sorted(view.live_senders())), salt % self.n)
        graph = self._graph_cache.get(key)
        if graph is None:
            if len(self._graph_cache) >= _ROTATE_CACHE_MAX:
                self._graph_cache.clear()
            graph = DirectedGraph(self.n, self._quorum.edges_for_round(salt, view, self))
            self._graph_cache[key] = graph
        return graph


class RotatingQuorumAdversary(_CachedGraphMixin, MessageAdversary):
    """``(1, D)``-dynaDegree, minimal and churning every round."""

    def __init__(self, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-round in-degree ``D``."""
        return self._quorum.degree

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        return self._graph_for(t, view)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (1, self._quorum.degree)


class PhaseSkewAdversary(MessageAdversary):
    """Creates maximal phase skew: a fast clique races ahead while slow
    nodes hear from it only once per ``window`` rounds.

    Fast nodes (everyone not in ``slow``) receive ``D`` in-links from
    other fast nodes *every* round, so they complete a phase per round;
    slow nodes receive their ``D`` links (also from fast senders) only
    on the last round of each window. The trace satisfies
    ``(window, D)``-dynaDegree.

    This is the scenario where DAC's jump rule earns its keep
    (experiment X3): by their delivery round, everything a slow node
    hears is from higher phases. With jumping it copies and catches up;
    without jumping it ignores those messages and waits forever for
    same-phase states nobody will send again.

    Requires at least ``D + 1`` fast nodes (the clique must feed
    itself).
    """

    def __init__(self, degree: int, slow: "frozenset[int] | set[int]", window: int = 2) -> None:
        super().__init__()
        if degree < 1:
            raise ValueError(f"degree D must be >= 1, got {degree}")
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.degree = degree
        self.slow = frozenset(slow)
        self.window = window

    def _on_setup(self) -> None:
        fast = [v for v in range(self.n) if v not in self.slow]
        if len(fast) < self.degree + 1:
            raise ValueError(
                f"need at least D+1={self.degree + 1} fast nodes, got {len(fast)}"
            )
        self._fast = fast

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        edges: list[Edge] = []
        fast = self._fast
        for i, v in enumerate(fast):
            senders = [fast[(i + 1 + k) % len(fast)] for k in range(self.degree)]
            edges.extend((u, v) for u in senders if u != v)
        if (t + 1) % self.window == 0:
            for v in sorted(self.slow):
                senders = [fast[(v + k) % len(fast)] for k in range(self.degree)]
                edges.extend((u, v) for u in senders if u != v)
        return DirectedGraph(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self.degree)


class LastMinuteQuorumAdversary(_CachedGraphMixin, MessageAdversary):
    """``(T, D)``-dynaDegree delivered entirely on each window's last round."""

    def __init__(self, window: int, degree: int, selector: str = "rotate") -> None:
        super().__init__()
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        self.window = window
        self._quorum = _QuorumSelector(degree, selector)

    @property
    def degree(self) -> int:
        """The enforced per-window in-degree ``D``."""
        return self._quorum.degree

    def _on_setup(self) -> None:
        super()._on_setup()
        self._empty = DirectedGraph.empty(self.n)

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        if (t + 1) % self.window != 0:
            return self._empty
        return self._graph_for(t // self.window, view)

    def promised_dynadegree(self) -> tuple[int, int]:
        return (self.window, self._quorum.degree)
