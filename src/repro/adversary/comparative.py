"""Adversaries realizing the *prior-work* stability properties.

Used by experiment X5 to make Section II-B's comparison executable:
a network can be perfectly "stable" by an earlier definition while
starving dynaDegree, and vice versa.

- :class:`RootedStarAdversary` -- every round is a directed star from
  a (rotating or random) root: the rooted-spanning-tree property holds
  in every round, yet each non-root has in-degree exactly 1, so over a
  window of ``T`` rounds dynaDegree is at most ``min(T, n-1)`` --
  typically far below DAC's ``floor(n/2)``.
- :class:`StableSpanningTreeAdversary` -- keeps one fixed bidirectional
  spanning path alive every round (T-interval connectivity for every
  T), again with in-degrees stuck at 1 or 2.

Both model benign-looking networks in which the paper's algorithms are
*not* guaranteed to terminate, while asymptotic averaging (category
(ii) of Section II-D, :class:`~repro.core.asymptotic.AsymptoticAveragingProcess`)
still converges -- the incomparability the paper stresses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.topology import Edge, Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView


class RootedStarAdversary(MessageAdversary):
    """A directed star from a root node, every round.

    ``mode="rotate"`` advances the root each round (maximal churn while
    staying rooted); ``mode="fixed"`` keeps root 0; ``mode="random"``
    draws the root from the adversary's stream.
    """

    def __init__(self, mode: str = "rotate") -> None:
        super().__init__()
        if mode not in ("rotate", "fixed", "random"):
            raise ValueError(f"unknown mode {mode!r}")
        self.mode = mode

    def _root(self, t: int) -> int:
        if self.mode == "fixed":
            return 0
        if self.mode == "rotate":
            return t % self.n
        return self.rng.randrange(self.n)

    def choose(self, t: int, view: "EngineView") -> Topology:
        root = self._root(t)
        edges: list[Edge] = [(root, v) for v in range(self.n) if v != root]
        return Topology(self.n, edges)

    def promised_dynadegree(self) -> tuple[int, int] | None:
        # Non-root nodes hear exactly one sender per round; with a
        # rotating root a window of n-1 rounds accumulates degree n-2
        # at best. We promise only the trivially-safe (1, 1).
        return (1, 1)


class StableSpanningTreeAdversary(MessageAdversary):
    """A fixed bidirectional path ``0 - 1 - ... - n-1`` every round.

    The strongest form of T-interval connectivity (the same connected
    spanning subgraph is stable forever), yet interior nodes have
    in-degree 2 and the endpoints in-degree 1: dynaDegree is pinned at
    ``(T, 1)`` for every ``T`` no matter how long the window.
    """

    def _on_setup(self) -> None:
        edges: list[Edge] = []
        for v in range(self.n - 1):
            edges.append((v, v + 1))
            edges.append((v + 1, v))
        self._graph = Topology(self.n, edges)

    def choose(self, t: int, view: "EngineView") -> Topology:
        return self._graph

    def promised_dynadegree(self) -> tuple[int, int] | None:
        return (1, 1) if self.n >= 2 else None
