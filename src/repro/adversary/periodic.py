"""Periodic adversaries, including the paper's Figure 1 example.

Figure 1 shows a 3-node network where the adversary removes *all*
links in odd rounds and removes the two links between nodes 1 and 3 in
even rounds. The resulting dynamic graph satisfies
``(2, 1)``-dynaDegree but not ``(1, 1)``-dynaDegree -- the motivating
example for aggregating neighbors over a window.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.adversary.base import ScheduleAdversary
from repro.net.dynamic import EdgeSchedule
from repro.net.topology import Edge, Topology


class AlternatingAdversary(ScheduleAdversary):
    """Cycles through a fixed list of per-round edge sets.

    ``promise`` may declare the ``(T, D)``-dynaDegree the cycle
    achieves; the runner re-checks it on the recorded trace.
    """

    def __init__(
        self,
        n: int,
        cycle: Sequence[Sequence[Edge]],
        promise: tuple[int, int] | None = None,
    ) -> None:
        if not cycle:
            raise ValueError("cycle must contain at least one round")
        schedule = EdgeSchedule.from_table(n, [list(row) for row in cycle], repeat=True)
        super().__init__(schedule, promise=promise)
        self.cycle_length = len(cycle)


def figure1_adversary() -> AlternatingAdversary:
    """The exact adversary of Figure 1 (nodes relabeled 1,2,3 -> 0,1,2).

    Even rounds keep ``{(0,1), (1,0), (1,2), (2,1)}``; odd rounds keep
    nothing. Satisfies ``(2, 1)``- but not ``(1, 1)``-dynaDegree.
    """
    even_round: list[Edge] = [(0, 1), (1, 0), (1, 2), (2, 1)]
    odd_round: list[Edge] = []
    return AlternatingAdversary(3, [even_round, odd_round], promise=(2, 1))


def figure1_base_graph() -> Topology:
    """Figure 1's base graph ``G``: the complete graph on 3 nodes."""
    return Topology.complete(3)
