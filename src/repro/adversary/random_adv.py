"""Stochastic adversaries (Section VII's probabilistic message adversary).

These model benign-but-flaky environments -- wireless interference,
mobility -- rather than worst-case behavior: every directed link is
made reliable independently with probability ``p`` each round.
Experiment X1 measures expected rounds-to-agreement as a function of
``p``, the direction Section VII proposes for future work.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.generators import random_edges
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView


class RandomLinkAdversary(MessageAdversary):
    """Each directed link is reliable with probability ``p``, i.i.d.

    Makes no ``(T, D)`` promise -- for any fixed ``(T, D)`` there is a
    positive-probability window violating it -- but for moderate ``p``
    and ``n`` the realized traces typically satisfy strong stability,
    which the analysis layer can measure post-hoc with
    :func:`repro.net.dynadegree.max_degree_for_window`.
    """

    def __init__(self, p: float) -> None:
        super().__init__()
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"link probability must be in [0, 1], got {p}")
        self.p = p

    def choose(self, t: int, view: "EngineView") -> Topology:
        return Topology(self.n, random_edges(self.n, self.p, self.rng))


class EventuallyStableAdversary(MessageAdversary):
    """Chaotic (random with probability ``p``) until ``stable_round``,
    complete graph afterwards.

    Early dynamic-network work assumed eventual stabilization; this
    adversary reproduces that regime for comparison tests -- algorithms
    must make no progress guarantees before stabilization but must
    converge after it.
    """

    def __init__(self, stable_round: int, p: float = 0.2) -> None:
        super().__init__()
        if stable_round < 0:
            raise ValueError(f"stable_round must be non-negative, got {stable_round}")
        if not (0.0 <= p <= 1.0):
            raise ValueError(f"link probability must be in [0, 1], got {p}")
        self.stable_round = stable_round
        self.p = p

    def choose(self, t: int, view: "EngineView") -> Topology:
        if t >= self.stable_round:
            return Topology.complete(self.n)
        return Topology(self.n, random_edges(self.n, self.p, self.rng))
