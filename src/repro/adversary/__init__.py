"""Message adversaries: the per-round choice of reliable links.

The dynamic message adversary is the defining feature of the model: in
every round it observes node internal states (and knows the algorithm
specification) and picks the directed link set ``E(t)``; all other
messages are lost. Adversaries range from benign (complete graph every
round) through stochastic (Section VII's probabilistic adversary) to
the hostile constructions used in the impossibility proofs.

Adversaries that *promise* a ``(T, D)``-dynaDegree guarantee expose it
via :meth:`~repro.adversary.base.MessageAdversary.promised_dynadegree`
so the runner can independently verify the promise on the recorded
trace after the run.
"""

from repro.adversary.base import MessageAdversary, ScheduleAdversary, StaticAdversary
from repro.adversary.comparative import (
    RootedStarAdversary,
    StableSpanningTreeAdversary,
)
from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    PhaseSkewAdversary,
    RotatingQuorumAdversary,
)
from repro.adversary.greedy import LookaheadQuorumAdversary
from repro.adversary.mobile import MobileOmissionAdversary
from repro.adversary.periodic import AlternatingAdversary, figure1_adversary
from repro.adversary.random_adv import EventuallyStableAdversary, RandomLinkAdversary
from repro.adversary.split import (
    IsolateThenConnectAdversary,
    ReceiveSetsAdversary,
    SplitGroupsAdversary,
)

__all__ = [
    "MessageAdversary",
    "StaticAdversary",
    "ScheduleAdversary",
    "LastMinuteQuorumAdversary",
    "PhaseSkewAdversary",
    "LookaheadQuorumAdversary",
    "RotatingQuorumAdversary",
    "MobileOmissionAdversary",
    "RootedStarAdversary",
    "StableSpanningTreeAdversary",
    "AlternatingAdversary",
    "figure1_adversary",
    "RandomLinkAdversary",
    "EventuallyStableAdversary",
    "SplitGroupsAdversary",
    "ReceiveSetsAdversary",
    "IsolateThenConnectAdversary",
]
