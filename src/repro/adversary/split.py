"""Partitioning adversaries: the impossibility-proof constructions.

Theorem 9 (crash model): with ``(1, floor(n/2) - 1)``-dynaDegree the
adversary can keep two disjoint groups of size ``floor(n/2)`` (plus a
leftover node parked in one of them) internally complete and mutually
silent; with different inputs per group, epsilon-agreement fails. Its
second part isolates groups only for the first ``R`` rounds -- long
enough for an algorithm tuned to terminate fast to decide -- and
reconnects afterwards, defeating ``n <= 2f`` configurations.

Theorem 10 (Byzantine model): two groups of size ``floor((n+3f)/2)``
*overlapping* in ``3f`` middle nodes, the central ``f`` of which are
Byzantine and two-faced. Group A sees input-0 behavior, group B sees
input-1 behavior; validity forces A toward 0 and B toward 1.
"""

from __future__ import annotations

from collections.abc import Collection, Sequence
from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.net.generators import split_edges
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView


class SplitGroupsAdversary(MessageAdversary):
    """Complete communication within each group, silence across groups.

    Groups may overlap (Theorem 10); a node in several groups hears the
    union of its groups. The promise reported is ``(1, d)`` where ``d``
    is the smallest *within-groups* in-degree over all nodes -- e.g.
    two disjoint halves of an even ``n`` give ``(1, n/2 - 1)``.
    """

    def __init__(self, groups: Sequence[Collection[int]]) -> None:
        super().__init__()
        if not groups:
            raise ValueError("need at least one group")
        self.groups = [frozenset(g) for g in groups]
        self._graph: Topology | None = None

    def _on_setup(self) -> None:
        covered = set().union(*self.groups)
        if not covered <= set(range(self.n)):
            raise ValueError(f"groups mention nodes outside 0..{self.n - 1}")
        self._graph = Topology(self.n, split_edges(self.n, self.groups))

    def choose(self, t: int, view: "EngineView") -> Topology:
        assert self._graph is not None
        return self._graph

    def promised_dynadegree(self) -> tuple[int, int] | None:
        if self._graph is None:
            return None
        degree = min(self._graph.in_degree(v) for v in range(self.n))
        return (1, degree) if degree >= 1 else None


class ReceiveSetsAdversary(MessageAdversary):
    """Fixed per-node listening sets: node ``v`` hears exactly
    ``receive_sets[v]`` every round.

    This is the sharp form of the Theorem 10 construction: every
    *honest* node is assigned to exactly one group's communication
    closure (overlap nodes included -- an input-0 overlap node listens
    only to group A, an input-1 one only to group B), while Byzantine
    nodes may listen to everyone (their in-degree is unconstrained by
    Definition 1). The promise reported is ``(1, d)`` with ``d`` the
    minimum listening-set size over the *constrained* nodes.

    Nodes absent from ``receive_sets`` hear everyone (use for faulty
    nodes feeding two-faced strategies).
    """

    def __init__(self, receive_sets: dict[int, Collection[int]]) -> None:
        super().__init__()
        self.receive_sets = {v: frozenset(s) for v, s in receive_sets.items()}
        self._graph: Topology | None = None

    def _on_setup(self) -> None:
        edges = []
        for v in range(self.n):
            senders = self.receive_sets.get(v)
            if senders is None:
                senders = frozenset(range(self.n))
            for u in sorted(senders):
                if not (0 <= u < self.n):
                    raise ValueError(f"sender {u} out of range for n={self.n}")
                if u != v:
                    edges.append((u, v))
        self._graph = Topology(self.n, edges)

    def choose(self, t: int, view: "EngineView") -> Topology:
        assert self._graph is not None
        return self._graph

    def promised_dynadegree(self) -> tuple[int, int] | None:
        if not self.receive_sets:
            return None
        degree = min(
            len(self.receive_sets[v] - {v}) for v in self.receive_sets
        )
        return (1, degree) if degree >= 1 else None


class IsolateThenConnectAdversary(MessageAdversary):
    """Groups are isolated for ``isolation_rounds`` rounds, then the
    graph is complete forever.

    This realizes Theorem 9's second construction: any finite window
    ``T' > isolation_rounds`` sees every node obtain ``n - 1`` distinct
    in-neighbors, so the trace satisfies ``(T', n-1)``-dynaDegree --
    maximal stability -- yet an algorithm that decides within
    ``isolation_rounds`` rounds has already split.
    """

    def __init__(
        self,
        groups: Sequence[Collection[int]],
        isolation_rounds: int,
    ) -> None:
        super().__init__()
        if isolation_rounds < 0:
            raise ValueError(
                f"isolation_rounds must be non-negative, got {isolation_rounds}"
            )
        self.groups = [frozenset(g) for g in groups]
        self.isolation_rounds = isolation_rounds
        self._split: Topology | None = None
        self._full: Topology | None = None

    def _on_setup(self) -> None:
        self._split = Topology(self.n, split_edges(self.n, self.groups))
        self._full = Topology.complete(self.n)

    def choose(self, t: int, view: "EngineView") -> Topology:
        assert self._split is not None and self._full is not None
        return self._split if t < self.isolation_rounds else self._full

    def promised_dynadegree(self) -> tuple[int, int] | None:
        # Over any window of length isolation_rounds + 1 that reaches a
        # connected round, every node aggregates n-1 in-neighbors; but
        # windows fully inside the isolation prefix do not. The honest
        # promise on an *infinite* run is (isolation_rounds + 1, n - 1)
        # only for windows starting at round >= 0 once the run length
        # exceeds 2 * isolation_rounds; we report it and let the runner
        # verify on the actual finite trace.
        return (self.isolation_rounds + 1, self.n - 1)


def halves_partition(n: int) -> tuple[frozenset[int], frozenset[int]]:
    """Two disjoint groups: ``0..floor(n/2)-1`` and the rest.

    For even ``n`` these are the Theorem 9 halves of size ``n/2``
    (internal in-degree ``n/2 - 1``); for odd ``n`` the second group is
    one larger, and the promise degree is ``floor(n/2) - 1`` still.
    """
    half = n // 2
    return frozenset(range(half)), frozenset(range(half, n))


def theorem10_groups(n: int, f: int) -> tuple[frozenset[int], frozenset[int], frozenset[int]]:
    """The Theorem 10 node partition ``(group_a, group_b, byzantine)``.

    Using the paper's 1-based construction mapped to 0-based IDs:
    group A is nodes ``0 .. floor((n+3f)/2) - 1``, group B is nodes
    ``floor((n-3f)/2) .. n - 1`` (they overlap in ``3f`` middle nodes),
    and the Byzantine core is the middle ``f`` nodes
    ``floor((n-f)/2) .. floor((n+f)/2) - 1``.
    """
    if n < 3 * f + 1:
        raise ValueError(f"Theorem 10 construction needs n >= 3f+1, got n={n}, f={f}")
    size = (n + 3 * f) // 2
    group_a = frozenset(range(0, size))
    group_b = frozenset(range((n - 3 * f) // 2, n))
    byz = frozenset(range((n - f) // 2, (n + f) // 2))
    return group_a, group_b, byz
