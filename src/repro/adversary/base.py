"""The message adversary interface and trivial instances.

Per Section II-A, the adversary picks ``E(t)`` each round and "may use
nodes' internal states at the beginning of the round and the algorithm
specification to make the choice". The engine therefore passes an
omniscient :class:`~repro.sim.engine.EngineView` to :meth:`choose`.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.net.dynamic import EdgeSchedule
from repro.net.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.faults.base import FaultPlan
    from repro.sim.engine import EngineView


class MessageAdversary(ABC):
    """Chooses the reliable link set for every round."""

    def __init__(self) -> None:
        self.n: int = 0
        self.fault_plan: "FaultPlan | None" = None
        self.rng: random.Random = random.Random(0)

    def setup(self, n: int, fault_plan: "FaultPlan", rng: random.Random) -> None:
        """Bind the adversary to one execution; called once by the engine."""
        self.n = n
        self.fault_plan = fault_plan
        self.rng = rng
        self._on_setup()

    def _on_setup(self) -> None:
        """Hook for subclasses needing post-setup initialization."""

    @abstractmethod
    def choose(self, t: int, view: "EngineView") -> Topology:
        """The link set ``E(t)`` for round ``t``."""

    def promised_dynadegree(self) -> tuple[int, int] | None:
        """The ``(T, D)`` guarantee this adversary maintains, if any.

        Enforcing adversaries return their promise so the runner can
        re-check it on the recorded trace with the independent checker;
        unconstrained adversaries return ``None``.
        """
        return None


class StaticAdversary(MessageAdversary):
    """The same graph every round (e.g. a reliable complete network).

    ``(1, min-in-degree)``-dynaDegree holds trivially; a complete graph
    gives the strongest possible stability ``(1, n-1)``.
    """

    def __init__(self, graph: Topology | None = None) -> None:
        super().__init__()
        self._graph = graph

    def _on_setup(self) -> None:
        if self._graph is None:
            self._graph = Topology.complete(self.n)
        elif self._graph.n != self.n:
            raise ValueError(f"static graph has n={self._graph.n}, engine has n={self.n}")

    def choose(self, t: int, view: "EngineView") -> Topology:
        assert self._graph is not None
        return self._graph

    def promised_dynadegree(self) -> tuple[int, int] | None:
        if self._graph is None:
            return None
        degree = min(self._graph.in_degree(v) for v in range(self._graph.n))
        return (1, degree) if degree >= 1 else None


class ScheduleAdversary(MessageAdversary):
    """Plays back a predefined :class:`~repro.net.dynamic.EdgeSchedule`.

    Oblivious (state-independent) by construction -- useful for
    declarative scenarios such as the paper's Figure 1, and for
    replaying recorded traces.
    """

    def __init__(
        self,
        schedule: EdgeSchedule,
        promise: tuple[int, int] | None = None,
    ) -> None:
        super().__init__()
        self._schedule = schedule
        self._promise = promise

    def _on_setup(self) -> None:
        if self._schedule.n != self.n:
            raise ValueError(
                f"schedule has n={self._schedule.n}, engine has n={self.n}"
            )

    def choose(self, t: int, view: "EngineView") -> Topology:
        return self._schedule.graph_at(t)

    def promised_dynadegree(self) -> tuple[int, int] | None:
        return self._promise
