"""One-step lookahead adversary: simulate, then pick the cruelest links.

The enforcing adversaries in :mod:`repro.adversary.constrained` choose
senders by fixed heuristics (rotation, nearest value). This module
searches instead: each round it *simulates* the algorithm's response
to every candidate link policy and plays the one that leaves the
fault-free states most spread out -- the strongest within-(1, D)
attack on convergence the framework can express without whole-game
search.

The adversary is entitled to all of this: Section II-A lets it read
internal states and the (deterministic) algorithm specification, which
is exactly what "simulate the round" means.

Candidate evaluation runs against a **copy-on-write state overlay**
(:class:`_StateOverlay`) instead of the per-candidate
``copy.deepcopy`` of every process the original implementation paid:
each round the overlay captures one cheap snapshot of every fault-free
process's (flat) state, each candidate is delivered to the *live*
process objects, the outcome is measured, and the snapshot is written
back before the next candidate. Delivery is deterministic in the
pre-round state and the (fixed) broadcast map, so the measured
``(spread, advances)`` -- and therefore every chosen policy -- is
bit-identical to the deep-copy implementation, at a fraction of the
per-candidate cost (see ``bench_engine_scaling`` /
``repro.bench.topology_smoke``).

Used by the worst-case-rate tests: even this adversary cannot push
DAC's per-phase contraction above 1/2, nor break its safety --
empirical teeth for the paper's tightness claims.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.adversary.base import MessageAdversary
from repro.adversary.constrained import _QuorumSelector
from repro.net.topology import Topology
from repro.sim.node import ConsensusProcess, Delivery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_DEFAULT_PORTFOLIO = ("nearest", "rotate", "random")


def _copy_state_value(value: Any) -> Any:
    """A fresh deep-ish copy of one attribute value (builtin containers).

    Consensus-process state is flat by the paper's storage discipline
    (scalars, phase counters, port bit vectors, small value lists);
    copying list/dict/set contents one level at a time reproduces
    ``deepcopy`` exactly for that shape without its dispatch and memo
    machinery. Immutable values (numbers, strings, tuples of numbers,
    frozensets, None, messages) are shared, which is safe because
    ``deliver`` can only rebind them, never mutate in place.
    """
    if isinstance(value, list):
        return [_copy_state_value(item) for item in value]
    if isinstance(value, dict):
        return {key: _copy_state_value(item) for key, item in value.items()}
    if isinstance(value, set):
        return set(value)
    return value


_MUTABLE = (list, dict, set)


def _is_flat(container: Any) -> bool:
    """Whether a container holds no nested mutable values (the common
    case: port bit vectors, float lists), so a C-level shallow copy is
    an exact snapshot."""
    values = container.values() if isinstance(container, dict) else container
    return not any(isinstance(item, _MUTABLE) for item in values)


class _StateOverlay:
    """Copy-on-write snapshot/restore of a set of processes.

    Capturing builds, per process, a *copy plan*: immutable attribute
    values are saved by reference (rebinding is the only way ``deliver``
    can change them), containers are saved once -- by C-level shallow
    copy when flat, by the recursive copier otherwise -- and attributes
    aliasing the *same* container object share one saved copy, so
    ``restore`` re-establishes that aliasing (like ``deepcopy``'s memo
    would). ``restore`` writes the plan back, deleting any attribute a
    candidate ``deliver`` created, leaving both the process and the
    pristine snapshot ready for the next candidate -- this is what
    replaced the per-candidate ``copy.deepcopy`` of every process.

    Exactness contract (documented on :class:`ConsensusProcess`):
    process state must be attributes of immutable values and builtin
    containers without *nested* aliasing; every shipped algorithm
    satisfies this by construction.
    """

    __slots__ = ("_plans",)

    def __init__(self, processes: dict[int, ConsensusProcess]) -> None:
        plans = []
        for proc in processes.values():
            flat: dict[str, Any] = {}
            # Attribute names grouped by the identity of the container
            # they referenced at capture: one saved copy per group, one
            # fresh copy per restore, shared by every alias.
            groups: dict[int, tuple[list[str], Any, bool]] = {}
            for name, value in proc.__dict__.items():
                if isinstance(value, _MUTABLE):
                    group = groups.get(id(value))
                    if group is None:
                        shallow = _is_flat(value)
                        saved = value.copy() if shallow else _copy_state_value(value)
                        groups[id(value)] = ([name], saved, shallow)
                    else:
                        group[0].append(name)
                else:
                    flat[name] = value
            plans.append(
                (proc, frozenset(proc.__dict__), flat, tuple(groups.values()))
            )
        self._plans = plans

    def restore(self) -> None:
        """Reset every captured process to its captured state."""
        for proc, captured, flat, groups in self._plans:
            state = proc.__dict__
            if state.keys() != captured:
                # A deliver() lazily created state mid-candidate: drop
                # it, or it would leak into the next candidate and the
                # real round (deepcopy semantics never expose it).
                for name in [key for key in state if key not in captured]:
                    del state[name]
            state.update(flat)
            for names, saved, shallow in groups:
                fresh = saved.copy() if shallow else _copy_state_value(saved)
                for name in names:
                    state[name] = fresh


class LookaheadQuorumAdversary(MessageAdversary):
    """``(1, D)``-dynaDegree with per-round simulated-outcome selection.

    Parameters
    ----------
    degree:
        The in-degree delivered to every node each round (the promise).
    portfolio:
        Candidate selector policies evaluated each round.
    objective:
        ``"max_range"`` keeps the fault-free spread as wide as possible
        (slows convergence); ``"min_progress"`` minimizes the number of
        fault-free phase advances (slows termination).
    """

    def __init__(
        self,
        degree: int,
        portfolio: tuple[str, ...] = _DEFAULT_PORTFOLIO,
        objective: str = "max_range",
    ) -> None:
        super().__init__()
        if objective not in ("max_range", "min_progress"):
            raise ValueError(f"unknown objective {objective!r}")
        if not portfolio:
            raise ValueError("portfolio must not be empty")
        self.objective = objective
        self._selectors = [_QuorumSelector(degree, name) for name in portfolio]
        self.degree = degree
        self.chosen_policies: list[str] = []
        self._port_rows: list[list[int]] | None = None

    def _on_setup(self) -> None:
        # Port numberings are fixed per execution; the receiver-major
        # rows are rebuilt lazily on the first choose() of each run.
        self._port_rows = None

    def _candidate(
        self, selector: _QuorumSelector, t: int, view: "EngineView"
    ) -> Topology:
        return Topology.from_receiver_lists(
            self.n, selector.picks_for_round(t, view, self)
        )

    def _sender_info(
        self, t: int, view: "EngineView"
    ) -> dict[int, tuple[Any, frozenset[int] | None]]:
        """Per-round ``sender -> (message, receiver whitelist)`` map.

        Graph-independent, so it is resolved once per round and shared
        by every candidate's delivery construction (the engine's
        ``_collect_broadcasts`` plays the same trick). Byzantine
        senders are skipped in the simulation (their round-``t`` lies
        are not exposed through the view); the heuristic therefore
        under-approximates their effect, which only makes the chosen
        policy *less* cruel -- safe for an upper-bound search.
        """
        plan = view.fault_plan
        info: dict[int, tuple[Any, frozenset[int] | None]] = {}
        for u in range(self.n):
            if plan.is_byzantine(u):
                continue
            message = view.broadcast_of(u)
            if message is None:
                continue
            info[u] = (message, plan.send_targets(u, t))
        return info

    def _deliveries_for(
        self,
        node: int,
        graph: Topology,
        sender_info: dict[int, tuple[Any, frozenset[int] | None]],
    ) -> list[Delivery]:
        """The delivery batch ``node`` would consume under ``graph``."""
        row = self._port_rows[node]
        # Ports are a bijection per receiver, so sorting (port, message)
        # tuples never compares messages; Delivery instances are built
        # via tuple.__new__ like the engine's delivery loop.
        new_delivery = tuple.__new__
        batch = []
        for u in graph.in_row(node):
            info = sender_info.get(u)
            if info is None:
                continue
            message, targets = info
            if targets is not None and node not in targets:
                continue
            batch.append(new_delivery(Delivery, (row[u], message)))
        own = sender_info.get(node)
        if own is not None:
            batch.append(new_delivery(Delivery, (row[node], own[0])))
        batch.sort()
        return batch

    def _simulate(
        self,
        graph: Topology,
        sender_info: dict[int, tuple[Any, frozenset[int] | None]],
        processes: dict[int, ConsensusProcess],
        before_phases: dict[int, int],
        overlay: _StateOverlay,
    ) -> tuple[float, int]:
        """Post-round (fault-free range, phase advances) under ``graph``.

        Delivers to the live processes and restores the overlay before
        returning -- the caller observes no state change, even when a
        deliver raises mid-candidate.
        """
        try:
            for node, proc in processes.items():
                proc.deliver(self._deliveries_for(node, graph, sender_info))
            values = [proc.value for proc in processes.values()]
            spread = (max(values) - min(values)) if values else 0.0
            advances = sum(
                1
                for node, proc in processes.items()
                if proc.phase > before_phases[node]
            )
        finally:
            overlay.restore()
        return spread, advances

    def choose(self, t: int, view: "EngineView") -> Topology:
        if self._port_rows is None:
            port_of = view.ports.port_of
            self._port_rows = [
                [port_of(receiver, sender) for sender in range(self.n)]
                for receiver in range(self.n)
            ]
        plan = view.fault_plan
        processes: dict[int, ConsensusProcess] = {}
        before_phases: dict[int, int] = {}
        for v in plan.fault_free:
            proc = view.process(v)
            assert proc is not None
            processes[v] = proc
            before_phases[v] = proc.phase
        overlay = _StateOverlay(processes)
        sender_info = self._sender_info(t, view)

        best_graph: Topology | None = None
        best_key: tuple[float, float] | None = None
        best_name = ""
        for selector in self._selectors:
            graph = self._candidate(selector, t, view)
            spread, advances = self._simulate(
                graph, sender_info, processes, before_phases, overlay
            )
            if self.objective == "max_range":
                key = (spread, -advances)
            else:
                key = (-advances, spread)
            if best_key is None or key > best_key:
                best_key = key
                best_graph = graph
                best_name = selector.selector
        assert best_graph is not None
        self.chosen_policies.append(best_name)
        return best_graph

    def promised_dynadegree(self) -> tuple[int, int]:
        return (1, self.degree)
