"""One-step lookahead adversary: simulate, then pick the cruelest links.

The enforcing adversaries in :mod:`repro.adversary.constrained` choose
senders by fixed heuristics (rotation, nearest value). This module
searches instead: each round it *simulates* the algorithm's response
to every candidate link policy on cloned processes and plays the one
that leaves the fault-free states most spread out -- the strongest
within-(1, D) attack on convergence the framework can express without
whole-game search.

The adversary is entitled to all of this: Section II-A lets it read
internal states and the (deterministic) algorithm specification, which
is exactly what "simulate the round" means.

Used by the worst-case-rate tests: even this adversary cannot push
DAC's per-phase contraction above 1/2, nor break its safety --
empirical teeth for the paper's tightness claims.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

from repro.adversary.base import MessageAdversary
from repro.adversary.constrained import _QuorumSelector
from repro.net.graph import DirectedGraph
from repro.sim.node import Delivery

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import EngineView

_DEFAULT_PORTFOLIO = ("nearest", "rotate", "random")


class LookaheadQuorumAdversary(MessageAdversary):
    """``(1, D)``-dynaDegree with per-round simulated-outcome selection.

    Parameters
    ----------
    degree:
        The in-degree delivered to every node each round (the promise).
    portfolio:
        Candidate selector policies evaluated each round.
    objective:
        ``"max_range"`` keeps the fault-free spread as wide as possible
        (slows convergence); ``"min_progress"`` minimizes the number of
        fault-free phase advances (slows termination).
    """

    def __init__(
        self,
        degree: int,
        portfolio: tuple[str, ...] = _DEFAULT_PORTFOLIO,
        objective: str = "max_range",
    ) -> None:
        super().__init__()
        if objective not in ("max_range", "min_progress"):
            raise ValueError(f"unknown objective {objective!r}")
        if not portfolio:
            raise ValueError("portfolio must not be empty")
        self.objective = objective
        self._selectors = [_QuorumSelector(degree, name) for name in portfolio]
        self.degree = degree
        self.chosen_policies: list[str] = []

    def _candidate(self, selector: _QuorumSelector, t: int, view: "EngineView") -> DirectedGraph:
        return DirectedGraph(self.n, selector.edges_for_round(t, view, self))

    def _simulate(self, graph: DirectedGraph, t: int, view: "EngineView") -> tuple[float, int]:
        """Post-round (fault-free range, phase advances) under ``graph``.

        Byzantine senders are skipped in the simulation (their
        round-``t`` lies are not exposed through the view); the
        heuristic therefore under-approximates their effect, which only
        makes the chosen policy *less* cruel -- safe for an upper-bound
        search.
        """
        plan = view.fault_plan
        clones = {}
        before_phases = {}
        for v in plan.fault_free:
            proc = view.process(v)
            assert proc is not None
            clones[v] = copy.deepcopy(proc)
            before_phases[v] = proc.phase
        for v, clone in clones.items():
            pairs = []
            for u in graph.in_neighbors(v):
                if plan.is_byzantine(u):
                    continue
                message = view.broadcast_of(u)
                if message is None:
                    continue
                targets = plan.send_targets(u, t)
                if targets is not None and v not in targets:
                    continue
                pairs.append((u, message))
            own = view.broadcast_of(v)
            if own is not None:
                pairs.append((v, own))
            batch = [
                Delivery(view.ports.port_of(v, u), message) for u, message in pairs
            ]
            batch.sort(key=lambda d: d.port)
            clone.deliver(batch)
        values = [clone.value for clone in clones.values()]
        spread = (max(values) - min(values)) if values else 0.0
        advances = sum(
            1 for v, clone in clones.items() if clone.phase > before_phases[v]
        )
        return spread, advances

    def choose(self, t: int, view: "EngineView") -> DirectedGraph:
        best_graph: DirectedGraph | None = None
        best_key: tuple[float, float] | None = None
        best_name = ""
        for selector in self._selectors:
            graph = self._candidate(selector, t, view)
            spread, advances = self._simulate(graph, t, view)
            if self.objective == "max_range":
                key = (spread, -advances)
            else:
                key = (-advances, spread)
            if best_key is None or key > best_key:
                best_key = key
                best_graph = graph
                best_name = selector.selector
        assert best_graph is not None
        self.chosen_policies.append(best_name)
        return best_graph

    def promised_dynadegree(self) -> tuple[int, int]:
        return (1, self.degree)
