"""Bounded model checking of consensus executions.

A proof of impossibility cannot be "run"; what *can* be run is the
adversary it constructs. :mod:`repro.mc.explorer` exhaustively explores
every choice the bounded message adversary could make against a
concrete deterministic algorithm and reports a violating execution --
the executable content of Corollary 1 (exact consensus is impossible
with ``(1, n-2)``-dynaDegree) for each candidate algorithm we field.
"""

from repro.mc.explorer import (
    BoundedExplorer,
    Violation,
    full_graph_choice,
    mobile_omission_choices,
)

__all__ = [
    "BoundedExplorer",
    "Violation",
    "mobile_omission_choices",
    "full_graph_choice",
]
