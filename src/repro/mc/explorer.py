"""Exhaustive bounded exploration of message-adversary choices.

The explorer plays every sequence of admissible round graphs (up to a
horizon) against a deterministic, fault-free algorithm and searches for
an execution violating agreement, validity, or termination. States are
memoized on the vector of per-node algorithm states, so confluent
branches are explored once.

The admissible-choice generator is pluggable. The one Corollary 1
needs is :func:`mobile_omission_choices`: each node may fail to receive
at most one incoming message per round (Gafni-Losa), which keeps every
per-round in-degree at ``n - 2`` or better -- i.e. the trace satisfies
``(1, n-2)``-dynaDegree.

Complexity is (choices/round)^horizon before memoization; with mobile
omission there are ``n^n`` choices per round, so this is a tool for
``n = 3..4`` and horizons of a handful of rounds -- which is exactly
the regime where candidate algorithms like FloodMin decide.
"""

from __future__ import annotations

import copy
import itertools
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass

from repro.net.topology import Edge, Topology
from repro.sim.node import ConsensusProcess, Delivery

# A factory building the process for (node, input); self_port is the
# node ID itself (the explorer uses identity ports: any fixed port
# numbering is a legal one, and a violation under it is a violation).
ProcessFactory = Callable[[int, float], ConsensusProcess]

# The admissible-choice generator: round index -> the round's candidate
# graphs, re-invoked at every DFS node by default. When the admissible
# set is a deterministic function of the round (the exhaustive-search
# norm), pass ``cache_choices=True`` to BoundedExplorer to generate
# each depth's set once and replay it across branches.
ChoiceGenerator = Callable[[int], Iterable[Topology]]


@dataclass(frozen=True)
class Violation:
    """A concrete violating execution found by the explorer."""

    kind: str  # "disagreement" | "validity" | "non-termination"
    outputs: tuple[float | None, ...]
    schedule: tuple[Topology, ...]

    def __str__(self) -> str:
        return (
            f"{self.kind} after {len(self.schedule)} round(s); "
            f"outputs={list(self.outputs)}"
        )


def mobile_omission_choices(n: int) -> ChoiceGenerator:
    """All graphs where each node misses at most one incoming link.

    Per receiver the adversary picks a victim sender (or none):
    ``n`` options each, ``n^n`` graphs per round. Every graph keeps
    in-degree >= n-2, so any schedule drawn from this set satisfies
    ``(1, n-2)``-dynaDegree.
    """
    complete = [(u, v) for u in range(n) for v in range(n) if u != v]
    per_node_options: list[list[int | None]] = [
        [None] + [u for u in range(n) if u != v] for v in range(n)
    ]

    def generate(t: int) -> Iterable[Topology]:
        for victims in itertools.product(*per_node_options):
            dropped = {
                (victims[v], v) for v in range(n) if victims[v] is not None
            }
            edges: list[Edge] = [e for e in complete if e not in dropped]
            yield Topology(n, edges)

    return generate


def full_graph_choice(n: int) -> ChoiceGenerator:
    """Degenerate generator: only the complete graph (sanity baseline)."""
    graph = Topology.complete(n)

    def generate(t: int) -> Iterable[Topology]:
        yield graph

    return generate


class BoundedExplorer:
    """Search for a violating execution of a deterministic algorithm.

    Parameters
    ----------
    n:
        Network size (fault-free exploration: the impossibility holds
        even with f = 0).
    factory:
        Builds the process for each node given ``(node, input)``.
        Processes must implement ``state_key()`` for memoization.
    inputs:
        The input assignment (for binary exact consensus: 0.0 / 1.0).
    choices:
        Generator of admissible round graphs.
    horizon:
        Maximum rounds to explore; executions still undecided at the
        horizon count as non-termination witnesses only when
        ``nontermination_is_violation`` is set.
    epsilon:
        Agreement tolerance: 0.0 for exact consensus.
    cache_choices:
        Opt-in: when true, each depth's candidate set is generated
        once, deduplicated on the stable content hash, and replayed at
        every DFS branch -- a large win for deterministic generators
        (the admissible set is regenerated at every DFS node
        otherwise), at the cost of holding one round's candidates in
        memory (fine in the explorer's documented ``n = 3..4``
        regime). Leave false (the default, and the pre-Topology
        behavior) for stochastic or streaming generators whose
        per-call output must not be frozen.
    """

    def __init__(
        self,
        n: int,
        factory: ProcessFactory,
        inputs: Sequence[float],
        choices: ChoiceGenerator,
        horizon: int,
        epsilon: float = 0.0,
        nontermination_is_violation: bool = True,
        cache_choices: bool = False,
    ) -> None:
        if len(inputs) != n:
            raise ValueError(f"need {n} inputs, got {len(inputs)}")
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon}")
        self.n = n
        self.factory = factory
        self.inputs = list(inputs)
        self.choices = choices
        self.horizon = horizon
        self.epsilon = epsilon
        self.nontermination_is_violation = nontermination_is_violation
        self.cache_choices = cache_choices
        self.states_explored = 0
        # Per-round candidate cache (see the cache_choices parameter):
        # materialized once per depth, deduplicated on the stable
        # content hash, with hash-consing collapsing repeats across
        # rounds to one interned instance each.
        self._choice_cache: dict[int, tuple[Topology, ...]] = {}

    def _choices_at(self, t: int) -> Iterable[Topology]:
        if not self.cache_choices:
            return self.choices(t)
        cached = self._choice_cache.get(t)
        if cached is None:
            seen: set[int] = set()
            unique: list[Topology] = []
            for graph in self.choices(t):
                marker = graph.content_hash
                if marker not in seen:
                    seen.add(marker)
                    unique.append(graph)
            cached = tuple(unique)
            self._choice_cache[t] = cached
        return cached

    # -- Single-round semantics (fault-free, identity ports) -------------

    def _step(
        self, processes: list[ConsensusProcess], graph: Topology
    ) -> list[ConsensusProcess]:
        successors = copy.deepcopy(processes)
        broadcasts = [proc.broadcast() for proc in successors]
        in_rows = graph.in_rows()
        for v, proc in enumerate(successors):
            pairs = [(u, broadcasts[u]) for u in in_rows[v]]
            pairs.append((v, broadcasts[v]))  # reliable self-delivery
            batch = [Delivery(u, msg) for u, msg in sorted(pairs)]
            proc.deliver(batch)
        return successors

    def _verdict(self, processes: list[ConsensusProcess]) -> Violation | None:
        """Check a state where every node has output."""
        outputs = [proc.output() for proc in processes]
        spread = max(outputs) - min(outputs)
        if spread > self.epsilon:
            return Violation("disagreement", tuple(outputs), ())
        legal = set(self.inputs)
        if any(out not in legal for out in outputs) and self.epsilon == 0.0:
            return Violation("validity", tuple(outputs), ())
        return None

    def search(self) -> Violation | None:
        """Depth-first search; returns the first violation found."""
        initial = [self.factory(v, self.inputs[v]) for v in range(self.n)]
        visited: set[tuple] = set()
        return self._dfs(initial, 0, (), visited)

    def _dfs(
        self,
        processes: list[ConsensusProcess],
        t: int,
        schedule: tuple[Topology, ...],
        visited: set[tuple],
    ) -> Violation | None:
        key = (t, tuple(proc.state_key() for proc in processes))
        if key in visited:
            return None
        visited.add(key)
        self.states_explored += 1

        if all(proc.has_output() for proc in processes):
            verdict = self._verdict(processes)
            if verdict is not None:
                return Violation(verdict.kind, verdict.outputs, schedule)
            return None
        if t >= self.horizon:
            if self.nontermination_is_violation:
                outputs = tuple(
                    proc.output() if proc.has_output() else None for proc in processes
                )
                return Violation("non-termination", outputs, schedule)
            return None

        for graph in self._choices_at(t):
            successors = self._step(processes, graph)
            found = self._dfs(successors, t + 1, schedule + (graph,), visited)
            if found is not None:
                return found
        return None

    def count_outcomes(self) -> dict[tuple[float, ...], int]:
        """Exhaustively enumerate terminal output vectors (diagnostics).

        Returns a histogram over output vectors of all decided
        executions within the horizon. Useful for reporting *how many*
        adversary strategies force each disagreement pattern.
        """
        initial = [self.factory(v, self.inputs[v]) for v in range(self.n)]
        histogram: dict[tuple[float, ...], int] = {}
        seen: set[tuple] = set()

        def recurse(processes: list[ConsensusProcess], t: int) -> None:
            key = (t, tuple(proc.state_key() for proc in processes))
            if key in seen:
                return
            seen.add(key)
            if all(proc.has_output() for proc in processes):
                outputs = tuple(proc.output() for proc in processes)
                histogram[outputs] = histogram.get(outputs, 0) + 1
                return
            if t >= self.horizon:
                return
            for graph in self._choices_at(t):
                recurse(self._step(processes, graph), t + 1)

        recurse(initial, 0)
        return histogram
