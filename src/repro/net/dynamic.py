"""Dynamic graphs: round-indexed edge schedules and recorded traces.

The paper models the network as a dynamic graph ``G = (V, E)`` where
``E : N -> 2^(V x V)`` maps a round number ``t`` to the set of directed
links the message adversary made reliable in round ``t``.

Two flavors live here:

- :class:`EdgeSchedule` -- a *predefined* schedule (a function or a
  table), useful for declarative adversaries such as the paper's
  Figure 1 example.
- :class:`DynamicGraph` -- a *recorded* execution trace, appended to by
  the simulation engine round by round, and consumed by the dynaDegree
  checker and the analysis layer.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence

from repro.net.topology import Edge, Topology


class EdgeSchedule:
    """A predefined mapping from round number to edge set.

    Parameters
    ----------
    n:
        Number of nodes.
    fn:
        Function taking a round index ``t >= 0`` and returning the edge
        set for that round (any iterable of ``(u, v)`` pairs).

    Examples
    --------
    The paper's Figure 1 adversary (empty on odd rounds) can be written:

    >>> evens = [(0, 1), (1, 0), (1, 2), (2, 1)]
    >>> sched = EdgeSchedule(3, lambda t: evens if t % 2 == 0 else [])
    >>> sorted(sched.graph_at(0).edges)
    [(0, 1), (1, 0), (1, 2), (2, 1)]
    >>> len(sched.graph_at(1))
    0
    """

    # Distinct edge patterns cached per schedule; periodic schedules
    # cycle through a handful, so the bound is generous. Cleared
    # wholesale on overflow (function schedules can be aperiodic).
    _PATTERN_CACHE_MAX = 256

    def __init__(self, n: int, fn: Callable[[int], Iterable[Edge]]) -> None:
        self._n = n
        self._fn = fn
        # Pattern -> Topology memo: schedules overwhelmingly replay a
        # small cycle of patterns (periodic tables, silent stretches,
        # alternating rounds), so a recurring round returns the cached
        # Topology *object* without re-normalizing its edges.
        # Hash-consing additionally collapses misses after a clear back
        # to one interned instance.
        self._patterns: dict[tuple[Edge, ...], Topology] = {}

    @classmethod
    def from_table(cls, n: int, table: Sequence[Iterable[Edge]], repeat: bool = True) -> "EdgeSchedule":
        """Build a schedule from a finite table of per-round edge sets.

        With ``repeat=True`` (default) the table is cycled periodically;
        otherwise rounds beyond the table are empty.
        """
        frozen = [list(row) for row in table]
        if not frozen:
            raise ValueError("schedule table must contain at least one round")

        def lookup(t: int) -> Iterable[Edge]:
            if repeat:
                return frozen[t % len(frozen)]
            if t < len(frozen):
                return frozen[t]
            return ()

        return cls(n, lookup)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def edges_at(self, t: int) -> list[Edge]:
        """Edge list for round ``t``."""
        if t < 0:
            raise ValueError(f"round index must be non-negative, got {t}")
        return list(self._fn(t))

    def graph_at(self, t: int) -> Topology:
        """The static graph ``(V, E(t))`` for round ``t``.

        Rounds replaying an already-seen edge pattern return the
        identical cached :class:`Topology` (no per-round re-wrapping);
        hash-consing keeps even post-clear rebuilds resolving to one
        instance.
        """
        key = tuple(self.edges_at(t))
        graph = self._patterns.get(key)
        if graph is None:
            if len(self._patterns) >= self._PATTERN_CACHE_MAX:
                self._patterns.clear()
            graph = Topology(self._n, key)
            self._patterns[key] = graph
        return graph


class DynamicGraph:
    """A recorded dynamic graph: one :class:`Topology` per round.

    The engine appends the adversary's choice each round via
    :meth:`record`; analysis code reads rounds back with :meth:`at` or
    slices windows with :meth:`window`.
    """

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"dynamic graph needs at least one node, got n={n}")
        self._n = n
        self._rounds: list[Topology] = []

    @classmethod
    def from_schedule(cls, schedule: EdgeSchedule, num_rounds: int) -> "DynamicGraph":
        """Materialize the first ``num_rounds`` rounds of a schedule."""
        dyn = cls(schedule.n)
        for t in range(num_rounds):
            dyn.record(schedule.graph_at(t))
        return dyn

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    def __len__(self) -> int:
        """Number of recorded rounds."""
        return len(self._rounds)

    def record(self, graph: Topology) -> None:
        """Append the edge set the adversary chose for the next round."""
        if graph.n != self._n:
            raise ValueError(f"recorded graph has n={graph.n}, expected {self._n}")
        self._rounds.append(graph)

    def at(self, t: int) -> Topology:
        """The recorded graph of round ``t`` (0-based)."""
        return self._rounds[t]

    def window(self, start: int, length: int) -> list[Topology]:
        """The recorded graphs of rounds ``start .. start+length-1``."""
        if start < 0 or length < 1:
            raise ValueError(f"invalid window start={start}, length={length}")
        return self._rounds[start : start + length]

    def window_union(self, start: int, length: int) -> Topology:
        """The paper's ``G_t``: union of ``E(start) .. E(start+length-1)``.

        Definition 1 aggregates incoming neighbors over a ``T``-round
        interval by taking the union of the per-round edge sets.
        """
        return window_union(self.window(start, length), self._n)

    def edges_per_round(self) -> list[int]:
        """Edge count of every recorded round, in order."""
        return [len(g) for g in self._rounds]


def window_union(graphs: Sequence[Topology], n: int | None = None) -> Topology:
    """Union a sequence of per-round graphs into one static graph."""
    if not graphs:
        if n is None:
            raise ValueError("cannot union an empty window without knowing n")
        return Topology.empty(n)
    size = graphs[0].n if n is None else n
    edges: set[Edge] = set()
    for g in graphs:
        if g.n != size:
            raise ValueError(f"window mixes graphs with n={g.n} and n={size}")
        edges |= g.edges
    return Topology(size, edges)
