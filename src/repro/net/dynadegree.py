"""The ``(T, D)``-dynaDegree stability property (Definition 1), executable.

A dynamic graph satisfies ``(T, D)``-dynaDegree when for every round
``t``, the *window union* ``G_t = (V, E(t) u ... u E(t+T-1))`` gives
every fault-free node at least ``D`` distinct incoming neighbors. The
incoming links may arrive in different rounds of the window, and the
neighbors need not be fault-free.

Two subtleties the paper leaves implicit are made explicit here:

- **Crashed senders.** A Byzantine in-neighbor still transmits (bogus)
  messages, so it legitimately counts toward ``D``; a *crashed* sender
  transmits nothing, so a link from it delivers no message and cannot
  help termination. The checker takes an optional ``senders_at``
  callback restricting which tails count in each round (the enforcing
  adversaries use "alive senders" in the crash model).
- **Finite traces.** Definition 1 quantifies over all ``t in N``; on a
  finite recorded trace of ``L`` rounds we check every *complete*
  window, i.e. ``t = 0 .. L - T``. Traces shorter than ``T`` have no
  complete window and are vacuously accepted (flagged in the verdict).
"""

from __future__ import annotations

from collections.abc import Callable, Collection, Sequence
from dataclasses import dataclass, field

from repro.net.dynamic import DynamicGraph
from repro.net.topology import Topology

SendersAt = Callable[[int], Collection[int]]


@dataclass(frozen=True)
class DynaDegreeViolation:
    """A single witness that a window fails the property."""

    window_start: int
    node: int
    degree: int
    required: int

    def __str__(self) -> str:
        return (
            f"window starting at round {self.window_start}: node {self.node} "
            f"has {self.degree} distinct in-neighbors, needs {self.required}"
        )


@dataclass(frozen=True)
class DynaDegreeVerdict:
    """Outcome of checking one ``(T, D)`` pair against a trace."""

    holds: bool
    window: int
    degree: int
    complete_windows: int
    violations: tuple[DynaDegreeViolation, ...] = ()

    @property
    def vacuous(self) -> bool:
        """True when the trace was too short to contain a full window."""
        return self.complete_windows == 0


def _window_in_neighbors(
    trace: DynamicGraph,
    start: int,
    window: int,
    senders_at: SendersAt | None,
) -> dict[int, set[int]]:
    """Distinct (counting) in-neighbors per node over one window."""
    neighbors: dict[int, set[int]] = {v: set() for v in range(trace.n)}
    for offset in range(window):
        t = start + offset
        graph = trace.at(t)
        allowed = None if senders_at is None else set(senders_at(t))
        for u, v in graph.edge_list:
            if allowed is None or u in allowed:
                neighbors[v].add(u)
    return neighbors


def check_dynadegree(
    trace: DynamicGraph,
    window: int,
    degree: int,
    fault_free: Collection[int] | None = None,
    senders_at: SendersAt | None = None,
    max_violations: int = 16,
) -> DynaDegreeVerdict:
    """Check ``(window, degree)``-dynaDegree on a recorded trace.

    Parameters
    ----------
    trace:
        The recorded dynamic graph.
    window:
        The paper's ``T`` (>= 1).
    degree:
        The paper's ``D`` (1 <= D <= n-1).
    fault_free:
        Nodes whose in-degree must meet ``degree``; defaults to all
        nodes. Faulty nodes never constrain the adversary.
    senders_at:
        Optional per-round filter on which tails count (e.g. alive
        senders under crash faults). ``None`` counts every chosen link.
    max_violations:
        Cap on collected violation witnesses (checking continues only
        until the cap to keep worst-case analysis cheap).
    """
    if window < 1:
        raise ValueError(f"window T must be >= 1, got {window}")
    if not (1 <= degree <= trace.n - 1):
        raise ValueError(f"degree D must be in [1, n-1]=[1, {trace.n - 1}], got {degree}")
    targets = set(range(trace.n)) if fault_free is None else set(fault_free)

    complete = max(0, len(trace) - window + 1)
    violations: list[DynaDegreeViolation] = []
    for start in range(complete):
        neighbors = _window_in_neighbors(trace, start, window, senders_at)
        for node in sorted(targets):
            got = len(neighbors[node])
            if got < degree:
                violations.append(DynaDegreeViolation(start, node, got, degree))
                if len(violations) >= max_violations:
                    return DynaDegreeVerdict(False, window, degree, complete, tuple(violations))
    return DynaDegreeVerdict(not violations, window, degree, complete, tuple(violations))


def max_degree_for_window(
    trace: DynamicGraph,
    window: int,
    fault_free: Collection[int] | None = None,
    senders_at: SendersAt | None = None,
) -> int:
    """Largest ``D`` such that ``(window, D)``-dynaDegree holds.

    Returns 0 when even ``D = 1`` fails (some node hears nobody in some
    window), and ``n - 1`` at most. A trace with no complete window
    returns ``n - 1`` (vacuous truth), mirroring :func:`check_dynadegree`.
    """
    targets = set(range(trace.n)) if fault_free is None else set(fault_free)
    complete = max(0, len(trace) - window + 1)
    best = trace.n - 1
    for start in range(complete):
        neighbors = _window_in_neighbors(trace, start, window, senders_at)
        for node in targets:
            best = min(best, len(neighbors[node]))
            if best == 0:
                return 0
    return best


def min_window_for_degree(
    trace: DynamicGraph,
    degree: int,
    fault_free: Collection[int] | None = None,
    senders_at: SendersAt | None = None,
    max_window: int | None = None,
) -> int | None:
    """Smallest ``T`` such that ``(T, degree)``-dynaDegree holds.

    Searches ``T = 1 .. max_window`` (default: trace length) and returns
    the first window size that passes, or ``None`` when none does. Note
    that dynaDegree is monotone in ``T``: enlarging the window can only
    add neighbors, so the first passing ``T`` is the minimum.
    """
    limit = len(trace) if max_window is None else min(max_window, len(trace))
    for window in range(1, limit + 1):
        verdict = check_dynadegree(trace, window, degree, fault_free, senders_at)
        if verdict.holds and not verdict.vacuous:
            return window
    return None


@dataclass
class DynaDegreeProfile:
    """Summary of a trace's stability: max ``D`` for a range of ``T``.

    Produced by :meth:`from_trace`; rendered by the benchmark harness
    when reproducing Figure 1.
    """

    n: int
    rounds: int
    max_degree_by_window: dict[int, int] = field(default_factory=dict)

    @classmethod
    def from_trace(
        cls,
        trace: DynamicGraph,
        windows: Sequence[int],
        fault_free: Collection[int] | None = None,
        senders_at: SendersAt | None = None,
    ) -> "DynaDegreeProfile":
        profile = cls(n=trace.n, rounds=len(trace))
        for window in windows:
            profile.max_degree_by_window[window] = max_degree_for_window(
                trace, window, fault_free, senders_at
            )
        return profile

    def satisfies(self, window: int, degree: int) -> bool:
        """Whether the profiled trace satisfied ``(window, degree)``."""
        if window not in self.max_degree_by_window:
            raise KeyError(f"window T={window} was not profiled")
        return self.max_degree_by_window[window] >= degree


class DynaDegreeChecker:
    """Incremental per-round checker used by enforcing adversaries.

    Enforcing adversaries promise a ``(T, D)``-dynaDegree trace; this
    class lets them (and the engine) verify the promise as rounds are
    produced, without re-scanning the whole trace. Feed each round's
    graph via :meth:`observe`; :attr:`violations` collects any window
    that closed short of ``D``.
    """

    def __init__(
        self,
        n: int,
        window: int,
        degree: int,
        fault_free: Collection[int] | None = None,
    ) -> None:
        if window < 1:
            raise ValueError(f"window T must be >= 1, got {window}")
        if not (1 <= degree <= n - 1):
            raise ValueError(f"degree D must be in [1, n-1]=[1, {n - 1}], got {degree}")
        self._n = n
        self._window = window
        self._degree = degree
        self._targets = set(range(n)) if fault_free is None else set(fault_free)
        self._history: list[dict[int, set[int]]] = []
        self._round = 0
        self.violations: list[DynaDegreeViolation] = []

    @property
    def rounds_observed(self) -> int:
        """How many rounds have been fed in so far."""
        return self._round

    def retire(self, node: int) -> None:
        """Stop constraining ``node`` (it crashed / became Byzantine)."""
        self._targets.discard(node)

    def observe(self, graph: Topology, senders: Collection[int] | None = None) -> None:
        """Record one round's chosen edges (optionally filtered to live senders)."""
        if graph.n != self._n:
            raise ValueError(f"graph has n={graph.n}, checker expects {self._n}")
        allowed = None if senders is None else set(senders)
        per_node: dict[int, set[int]] = {v: set() for v in range(self._n)}
        for u, v in graph.edge_list:
            if allowed is None or u in allowed:
                per_node[v].add(u)
        self._history.append(per_node)
        self._round += 1
        if len(self._history) >= self._window:
            start = self._round - self._window
            self._check_window(start)
            if len(self._history) > self._window:
                self._history.pop(0)

    def _check_window(self, start: int) -> None:
        tail = self._history[-self._window :]
        for node in self._targets:
            distinct: set[int] = set()
            for per_node in tail:
                distinct |= per_node[node]
            if len(distinct) < self._degree:
                self.violations.append(
                    DynaDegreeViolation(start, node, len(distinct), self._degree)
                )

    @property
    def clean(self) -> bool:
        """True while no completed window has violated the property."""
        return not self.violations
