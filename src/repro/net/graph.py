"""Deprecated shim: ``DirectedGraph`` is now :class:`repro.net.topology.Topology`.

The mutable-construction ``DirectedGraph`` (dict-of-frozensets
adjacency, rebuilt per round) was replaced by the frozen, hash-consed
:class:`~repro.net.topology.Topology` value type, which every layer --
net sources, adversaries, engine, batch executor, model checker,
persistence -- now shares. The public API is a strict superset of the
old class (``edges``, ``in_neighbors``/``out_neighbors`` as frozensets,
degrees, union/restrict/reachability, value equality and hashing), so
existing call sites and external examples keep running unchanged;
``DirectedGraph(n, edges)`` simply returns the interned Topology.

New code should import :class:`Topology` from
:mod:`repro.net.topology` directly and prefer the array views
(:meth:`~repro.net.topology.Topology.out_rows`,
:meth:`~repro.net.topology.Topology.in_rows`,
:attr:`~repro.net.topology.Topology.edge_list`,
:attr:`~repro.net.topology.Topology.content_hash`) on hot paths.
"""

from __future__ import annotations

from repro.net.topology import Edge, Topology

# Deprecated alias, kept for backward compatibility (see module docstring).
DirectedGraph = Topology

__all__ = ["DirectedGraph", "Edge", "Topology"]
