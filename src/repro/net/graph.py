"""Minimal static directed graphs over node set ``{0, ..., n-1}``.

The paper denotes the node set by ``[n]`` and works exclusively with
directed links ``(u, v)`` meaning "``u``'s message reaches ``v``".
Self-loops are excluded by the model (Section II-A): a node always
receives its own message regardless of the adversary's choice, so
self-delivery is handled by the simulation engine, never by edges.

This module deliberately avoids any dependency on networkx: the graphs
used by the adversary framework are tiny, rebuilt every round, and must
be cheap to construct and hash.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

Edge = tuple[int, int]


class DirectedGraph:
    """An immutable directed graph on nodes ``0..n-1`` without self-loops.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0..n-1``.
    edges:
        Iterable of directed edges ``(u, v)`` with ``u != v``.

    Raises
    ------
    ValueError
        If an edge endpoint is out of range or a self-loop is supplied.
    """

    __slots__ = ("_n", "_edges", "_in", "_out")

    def __init__(self, n: int, edges: Iterable[Edge] = ()) -> None:
        if n < 1:
            raise ValueError(f"graph needs at least one node, got n={n}")
        self._n = n
        in_neighbors: dict[int, set[int]] = {v: set() for v in range(n)}
        out_neighbors: dict[int, set[int]] = {v: set() for v in range(n)}
        edge_set: set[Edge] = set()
        for u, v in edges:
            self._validate_edge(n, u, v)
            edge_set.add((u, v))
            in_neighbors[v].add(u)
            out_neighbors[u].add(v)
        self._edges = frozenset(edge_set)
        self._in = {v: frozenset(s) for v, s in in_neighbors.items()}
        self._out = {v: frozenset(s) for v, s in out_neighbors.items()}

    @staticmethod
    def _validate_edge(n: int, u: int, v: int) -> None:
        if not (0 <= u < n and 0 <= v < n):
            raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
        if u == v:
            raise ValueError(f"self-loop ({u}, {v}) is not allowed by the model")

    @classmethod
    def complete(cls, n: int) -> "DirectedGraph":
        """The complete directed graph (every ordered pair, no self-loops)."""
        return cls(n, ((u, v) for u in range(n) for v in range(n) if u != v))

    @classmethod
    def empty(cls, n: int) -> "DirectedGraph":
        """The graph with no edges at all."""
        return cls(n, ())

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edges(self) -> frozenset[Edge]:
        """The edge set as a frozen set of ``(u, v)`` pairs."""
        return self._edges

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self._edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DirectedGraph):
            return NotImplemented
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((self._n, self._edges))

    def __repr__(self) -> str:
        return f"DirectedGraph(n={self._n}, m={len(self._edges)})"

    def in_neighbors(self, v: int) -> frozenset[int]:
        """Nodes ``u`` with a link ``(u, v)``: the senders ``v`` hears from."""
        return self._in[v]

    def out_neighbors(self, u: int) -> frozenset[int]:
        """Nodes ``v`` with a link ``(u, v)``: the receivers of ``u``."""
        return self._out[u]

    def in_degree(self, v: int) -> int:
        """Number of distinct incoming neighbors of ``v``."""
        return len(self._in[v])

    def out_degree(self, u: int) -> int:
        """Number of distinct outgoing neighbors of ``u``."""
        return len(self._out[u])

    def union(self, other: "DirectedGraph") -> "DirectedGraph":
        """Edge-union of two graphs over the same node set."""
        if self._n != other._n:
            raise ValueError(f"cannot union graphs with n={self._n} and n={other._n}")
        return DirectedGraph(self._n, self._edges | other._edges)

    def restrict_targets(self, targets: Iterable[int]) -> "DirectedGraph":
        """Keep only edges whose head is in ``targets`` (same node set)."""
        keep = set(targets)
        return DirectedGraph(self._n, (e for e in self._edges if e[1] in keep))

    def without_sources(self, sources: Iterable[int]) -> "DirectedGraph":
        """Drop all edges whose tail is in ``sources`` (e.g. crashed senders)."""
        drop = set(sources)
        return DirectedGraph(self._n, (e for e in self._edges if e[0] not in drop))

    def is_subgraph_of(self, other: "DirectedGraph") -> bool:
        """True when every edge of this graph is also an edge of ``other``."""
        return self._n == other._n and self._edges <= other._edges

    def reachable_from(self, source: int) -> frozenset[int]:
        """All nodes reachable from ``source`` along directed edges
        (including ``source`` itself)."""
        if not (0 <= source < self._n):
            raise ValueError(f"source {source} out of range for n={self._n}")
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for nxt in self._out[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def roots(self) -> frozenset[int]:
        """Nodes that reach every other node (the paper's "coordinators").

        A graph "contains a directed rooted spanning tree" (the prior
        stability property of [10], [17], [38]) iff this is non-empty.
        """
        return frozenset(
            v for v in range(self._n) if len(self.reachable_from(v)) == self._n
        )

    def has_root(self) -> bool:
        """Whether some node reaches all others this round."""
        return bool(self.roots())

    def is_strongly_connected(self) -> bool:
        """Every node reaches every other node."""
        if self._n == 1:
            return True
        if len(self.reachable_from(0)) != self._n:
            return False
        # Reverse reachability from 0: everyone reaches 0.
        reverse = DirectedGraph(self._n, ((v, u) for u, v in self._edges))
        return len(reverse.reachable_from(0)) == self._n
