"""Deprecated shim: ``DirectedGraph`` is now :class:`repro.net.topology.Topology`.

The mutable-construction ``DirectedGraph`` (dict-of-frozensets
adjacency, rebuilt per round) was replaced by the frozen, hash-consed
:class:`~repro.net.topology.Topology` value type, which every layer --
net sources, adversaries, engine, batch executor, model checker,
persistence -- now shares. The public API is a strict superset of the
old class (``edges``, ``in_neighbors``/``out_neighbors`` as frozensets,
degrees, union/restrict/reachability, value equality and hashing), so
existing call sites and external examples keep running unchanged;
``DirectedGraph(n, edges)`` simply returns the interned Topology.

New code should import :class:`Topology` from
:mod:`repro.net.topology` directly and prefer the array views
(:meth:`~repro.net.topology.Topology.out_rows`,
:meth:`~repro.net.topology.Topology.in_rows`,
:attr:`~repro.net.topology.Topology.edge_list`,
:attr:`~repro.net.topology.Topology.content_hash`) on hot paths.

The alias is served lazily (PEP 562) so its :class:`DeprecationWarning`
fires on first *use*, exactly once per process -- importing
:mod:`repro` or :mod:`repro.net` alone stays warning-clean, and legacy
call sites keep running under ``-W error::DeprecationWarning`` once
the single pinned warning has been seen.
"""

from __future__ import annotations

import warnings

from repro.net.topology import Edge, Topology

__all__ = ["DirectedGraph", "Edge", "Topology"]

_warned = False


def __getattr__(name: str):
    if name == "DirectedGraph":
        global _warned
        if not _warned:
            # The flag flips *before* warning so an "error"-filtered
            # first access raises once and later accesses still work.
            _warned = True
            warnings.warn(
                "DirectedGraph is a deprecated alias of "
                "repro.net.topology.Topology; import Topology directly "
                "(DirectedGraph(n, edges) returns the interned Topology)",
                DeprecationWarning,
                stacklevel=2,
            )
        # Cache the resolved alias: subsequent accesses are plain
        # attribute hits, guaranteeing the once-per-process contract.
        globals()["DirectedGraph"] = Topology
        return Topology
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
