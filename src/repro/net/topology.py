"""Immutable, hash-consed topologies: the one graph value type.

Every layer of the reproduction -- generators and dynamic-graph
sources in :mod:`repro.net`, the eight adversary modules, the round
engine, the batched executor, the bounded model checker and the trace
persistence layer -- trades in the same frozen graph representation
defined here. Related work on rooted dynamic networks (Winkler et al.,
arXiv:1602.05852) and anonymous fault-tolerant consensus
(Delporte-Gallet et al., arXiv:0903.3461) frames an execution as a
sequence of immutable per-round digraphs; :class:`Topology` makes that
representation first-class so the hot paths can exploit it:

- **canonical storage** -- the edge set is a sorted, deduplicated
  tuple of ``(u, v)`` pairs. Normalizing once at construction means
  equality, hashing, pickling and the content hash all read one flat
  tuple instead of rebuilding set views;
- **hash-consing** -- construction interns instances in a bounded
  table keyed by ``(n, edges)``, so the graph an enforcing adversary
  replays every ``n`` rounds, the graph a periodic schedule cycles
  through, and the graph two explorer branches both propose are *the
  same object*. Identity makes downstream memo hits O(1) and removes
  the per-round re-wrapping the pre-Topology code paid;
- **lazily cached adjacency arrays** -- :meth:`out_rows` /
  :meth:`in_rows` are tuples of sorted neighbor tuples, built at most
  once per unique graph. The engine's routing loop and the batched
  port-derivation path index these directly instead of iterating
  per-node frozensets;
- **a stable content hash** -- :attr:`content_hash` is a 128-bit
  BLAKE2b digest of ``(n, edges)``, identical across processes and
  interpreter runs (unlike ``hash()``), usable in memo keys, trace
  dedup tables and cross-run comparisons.

Topologies are strictly immutable (``__slots__``, no mutators); all
"mutation" APIs (:meth:`union`, :meth:`without_sources`, ...) return
new interned instances. Self-loops are excluded by the model (Section
II-A): self-delivery is the engine's job, never an edge.

:class:`repro.net.graph.DirectedGraph` is kept as a deprecated alias
of this class so existing call sites and external examples keep
running unchanged.
"""

from __future__ import annotations

import hashlib
from collections.abc import Iterable, Iterator
from typing import Any

Edge = tuple[int, int]

# Bounded intern table: cleared wholesale when full (like the adversary
# rotate memo) so adversaries drawing unbounded streams of fresh random
# graphs cannot grow it without limit. Clearing only costs future
# lookups their identity fast path -- equality stays structural.
_INTERN_MAX = 8192


def _restore(n: int, edges: tuple[Edge, ...]) -> "Topology":
    """Pickle/copy entry point: re-intern on load (module-level helper)."""
    return Topology.from_sorted_edges(n, edges)


class Topology:
    """An immutable, interned directed graph on nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes; nodes are the integers ``0..n-1``.
    edges:
        Iterable of directed edges ``(u, v)`` with ``u != v``.
        Duplicates collapse; order is irrelevant (edges are stored
        sorted).

    Raises
    ------
    ValueError
        If an edge endpoint is out of range or a self-loop is supplied.
    """

    __slots__ = (
        "_n",
        "_edges",
        "_edge_set",
        "_out_rows",
        "_in_rows",
        "_hash",
        "_content_hash",
        "_route_cache",
    )

    _intern: dict[tuple[int, tuple[Edge, ...]], "Topology"] = {}
    _complete_cache: dict[int, "Topology"] = {}
    _empty_cache: dict[int, "Topology"] = {}

    def __new__(cls, n: int, edges: Iterable[Edge] = ()) -> "Topology":
        if n < 1:
            raise ValueError(f"graph needs at least one node, got n={n}")
        unique: set[Edge] = set()
        for u, v in edges:
            if not (0 <= u < n and 0 <= v < n):
                raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
            if u == v:
                raise ValueError(f"self-loop ({u}, {v}) is not allowed by the model")
            unique.add((u, v))
        return cls._lookup(n, tuple(sorted(unique)))

    @classmethod
    def from_sorted_edges(cls, n: int, edges: Iterable[Edge]) -> "Topology":
        """Trusted fast path: ``edges`` already valid, sorted and deduped.

        Used by the layers that *derive* edge sets from structures that
        are correct by construction (rotate quorum picks, schedule
        tables, filtered copies of existing topologies), skipping the
        per-edge validation of the public constructor.
        """
        if n < 1:
            raise ValueError(f"graph needs at least one node, got n={n}")
        return cls._lookup(n, tuple(edges))

    @classmethod
    def _lookup(cls, n: int, edge_tuple: tuple[Edge, ...]) -> "Topology":
        key = (n, edge_tuple)
        table = Topology._intern
        cached = table.get(key)
        if cached is not None:
            return cached
        self = object.__new__(Topology)
        self._n = n
        self._edges = edge_tuple
        self._edge_set = None
        self._out_rows = None
        self._in_rows = None
        self._hash = None
        self._content_hash = None
        self._route_cache = None
        if len(table) >= _INTERN_MAX:
            table.clear()
        table[key] = self
        return self

    @classmethod
    def from_receiver_lists(
        cls, n: int, senders_per_receiver: Iterable[Iterable[int]]
    ) -> "Topology":
        """Build from per-receiver sender lists (trusted, e.g. quorum picks).

        ``senders_per_receiver[v]`` are the distinct senders delivering
        to ``v`` (no self-links). Edges are canonicalized by bucketing
        senders -- O(m + n), no comparison sort over the edge list --
        and on an intern miss the adjacency rows are seeded directly
        from the buckets, so the common adversary path (picks in, rows
        out) never materializes intermediate sets.
        """
        if n < 1:
            raise ValueError(f"graph needs at least one node, got n={n}")
        buckets: list[list[int]] = [[] for _ in range(n)]
        rows_in: list[tuple[int, ...]] = []
        for receiver, senders in enumerate(senders_per_receiver):
            ordered = sorted(senders)
            rows_in.append(tuple(ordered))
            for u in ordered:
                buckets[u].append(receiver)
        if len(rows_in) != n:
            raise ValueError(f"need {n} receiver lists, got {len(rows_in)}")
        # Receivers were visited in ascending order, so each bucket is
        # already sorted: concatenating buckets yields the canonical
        # (u, v)-lexicographic edge tuple.
        edge_tuple = tuple(
            (u, v) for u, receivers in enumerate(buckets) for v in receivers
        )
        self = cls._lookup(n, edge_tuple)
        if self._out_rows is None:
            self._out_rows = tuple(tuple(receivers) for receivers in buckets)
            self._in_rows = tuple(rows_in)
        return self

    @classmethod
    def complete(cls, n: int) -> "Topology":
        """The complete directed graph (every ordered pair, no self-loops)."""
        cached = cls._complete_cache.get(n)
        if cached is None:
            cached = cls.from_sorted_edges(
                n, ((u, v) for u in range(n) for v in range(n) if u != v)
            )
            cls._complete_cache[n] = cached
        return cached

    @classmethod
    def empty(cls, n: int) -> "Topology":
        """The graph with no edges at all."""
        cached = cls._empty_cache.get(n)
        if cached is None:
            cached = cls.from_sorted_edges(n, ())
            cls._empty_cache[n] = cached
        return cached

    # -- Core views --------------------------------------------------------

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def edge_list(self) -> tuple[Edge, ...]:
        """The canonical edge representation: sorted ``(u, v)`` tuples."""
        return self._edges

    @property
    def edges(self) -> frozenset[Edge]:
        """The edge set as a frozen set (compatibility / set-algebra view)."""
        cached = self._edge_set
        if cached is None:
            cached = frozenset(self._edges)
            # lint: ignore[topology-mutation] — single-fill lazy cache of a pure derived view
            self._edge_set = cached
        return cached

    @property
    def content_hash(self) -> int:
        """A stable 128-bit hash of ``(n, edges)``.

        Unlike ``hash()`` this is identical across interpreter runs and
        worker processes, so it is safe in memo keys that outlive the
        process, in persisted trace dedup tables, and in cross-run
        comparisons. Equal topologies have equal content hashes; the
        128-bit width makes collisions between distinct topologies
        negligible for memoization purposes.
        """
        cached = self._content_hash
        if cached is None:
            digest = hashlib.blake2b(digest_size=16)
            digest.update(str(self._n).encode())
            for u, v in self._edges:
                digest.update(b"%d,%d;" % (u, v))
            cached = int.from_bytes(digest.digest(), "big")
            # lint: ignore[topology-mutation] — single-fill lazy cache of the stable digest
            self._content_hash = cached
        return cached

    def _build_rows(self) -> None:
        out: list[list[int]] = [[] for _ in range(self._n)]
        incoming: list[list[int]] = [[] for _ in range(self._n)]
        for u, v in self._edges:  # sorted by (u, v): rows come out sorted
            out[u].append(v)
            incoming[v].append(u)
        self._out_rows = tuple(tuple(row) for row in out)
        self._in_rows = tuple(tuple(row) for row in incoming)

    def out_rows(self) -> tuple[tuple[int, ...], ...]:
        """Per-node outgoing adjacency arrays (sorted), built lazily once.

        ``out_rows()[u]`` are the receivers of ``u``. This is the view
        the engine's routing loop and the batched port-derivation path
        read directly.
        """
        if self._out_rows is None:
            self._build_rows()
        return self._out_rows

    def in_rows(self) -> tuple[tuple[int, ...], ...]:
        """Per-node incoming adjacency arrays (sorted), built lazily once."""
        if self._in_rows is None:
            self._build_rows()
        return self._in_rows

    def routing_plan(self, token: object) -> Any | None:
        """The routing plan cached on this instance for ``token``, if any.

        Single-slot per-topology cache backing the engine's port-major
        delivery sweep: a plan derives from ``(graph, ports)``, so the
        engine stores its per-receiver plan here under a private token
        object (compared by identity) and gets an O(1) hit every round
        that replays this graph -- including alternating or cyclic
        schedules, where each interned topology in the cycle holds its
        own plan. A different token (another execution's engine)
        simply overwrites the slot, bounding the cache at one plan per
        interned topology.
        """
        cached = self._route_cache
        if cached is not None and cached[0] is token:
            return cached[1]
        return None

    def set_routing_plan(self, token: object, plan: Any) -> None:
        """Store ``plan`` for ``token``, replacing any previous entry.

        Tokens should be small dedicated objects (never the engine
        itself): interned topologies outlive executions, and the slot
        keeps its token and plan alive until overwritten.
        """
        self._route_cache = (token, plan)

    def delivered_bytes(self) -> bytes:
        """The receiver-major delivered-from table as packed bytes.

        ``n*n`` bytes where byte ``v * n + u`` is 1 iff the edge
        ``(u, v)`` exists -- i.e. row ``v`` lists the senders receiver
        ``v`` hears from, matching :meth:`in_rows`. No diagonal: the
        model excludes self-loops, and reliable self-delivery is the
        engine's concern, applied per live set downstream.

        This is the arena export hook (:mod:`repro.sim.arena`): the
        bytes are position-independent and identical across processes,
        so one copy per :attr:`content_hash` can be published to a
        shared-memory segment and viewed zero-copy by every worker.
        The result is rebuilt per call -- callers are expected to memo
        it by content hash, not per instance.
        """
        n = self._n
        packed = bytearray(n * n)
        for u, v in self._edges:
            packed[v * n + u] = 1
        return bytes(packed)

    def out_row(self, u: int) -> tuple[int, ...]:
        """Receivers of ``u`` as a sorted tuple."""
        return self.out_rows()[u]

    def in_row(self, v: int) -> tuple[int, ...]:
        """Senders heard by ``v`` as a sorted tuple."""
        return self.in_rows()[v]

    def in_neighbors(self, v: int) -> frozenset[int]:
        """Nodes ``u`` with a link ``(u, v)``: the senders ``v`` hears from."""
        return frozenset(self.in_rows()[v])

    def out_neighbors(self, u: int) -> frozenset[int]:
        """Nodes ``v`` with a link ``(u, v)``: the receivers of ``u``."""
        return frozenset(self.out_rows()[u])

    def in_degree(self, v: int) -> int:
        """Number of distinct incoming neighbors of ``v``."""
        return len(self.in_rows()[v])

    def out_degree(self, u: int) -> int:
        """Number of distinct outgoing neighbors of ``u``."""
        return len(self.out_rows()[u])

    def in_degrees(self) -> tuple[int, ...]:
        """All in-degrees, indexed by node (a degree view for analysis)."""
        return tuple(len(row) for row in self.in_rows())

    def out_degrees(self) -> tuple[int, ...]:
        """All out-degrees, indexed by node."""
        return tuple(len(row) for row in self.out_rows())

    # -- Container protocol ------------------------------------------------

    def __len__(self) -> int:
        return len(self._edges)

    def __contains__(self, edge: Edge) -> bool:
        return edge in self.edges

    def __iter__(self) -> Iterator[Edge]:
        return iter(self._edges)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Topology):
            return NotImplemented
        # Structural fallback: two equal graphs are usually the same
        # interned object, but the bounded table may have been cleared
        # (or an instance unpickled) in between.
        return self._n == other._n and self._edges == other._edges

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self._n, self._edges))
            # lint: ignore[topology-mutation] — single-fill lazy cache of a pure derived value
            self._hash = cached
        return cached

    def __repr__(self) -> str:
        return f"Topology(n={self._n}, m={len(self._edges)})"

    def __reduce__(self):
        # Re-intern on unpickle/copy so identity-based fast paths keep
        # holding after a graph crosses a process boundary.
        return (_restore, (self._n, self._edges))

    # -- Derived topologies ------------------------------------------------

    def union(self, other: "Topology") -> "Topology":
        """Edge-union of two graphs over the same node set."""
        if self._n != other._n:
            raise ValueError(f"cannot union graphs with n={self._n} and n={other._n}")
        if other is self:
            return self
        return Topology.from_sorted_edges(
            self._n, sorted(self.edges | other.edges)
        )

    def restrict_targets(self, targets: Iterable[int]) -> "Topology":
        """Keep only edges whose head is in ``targets`` (same node set)."""
        keep = set(targets)
        return Topology.from_sorted_edges(
            self._n, (e for e in self._edges if e[1] in keep)
        )

    def without_sources(self, sources: Iterable[int]) -> "Topology":
        """Drop all edges whose tail is in ``sources`` (e.g. crashed senders)."""
        drop = set(sources)
        return Topology.from_sorted_edges(
            self._n, (e for e in self._edges if e[0] not in drop)
        )

    def is_subgraph_of(self, other: "Topology") -> bool:
        """True when every edge of this graph is also an edge of ``other``."""
        if self._n != other._n:
            return False
        return self is other or self.edges <= other.edges

    # -- Reachability ------------------------------------------------------

    def reachable_from(self, source: int) -> frozenset[int]:
        """All nodes reachable from ``source`` along directed edges
        (including ``source`` itself)."""
        if not (0 <= source < self._n):
            raise ValueError(f"source {source} out of range for n={self._n}")
        out = self.out_rows()
        seen = {source}
        frontier = [source]
        while frontier:
            node = frontier.pop()
            for nxt in out[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(seen)

    def roots(self) -> frozenset[int]:
        """Nodes that reach every other node (the paper's "coordinators").

        A graph "contains a directed rooted spanning tree" (the prior
        stability property of [10], [17], [38]) iff this is non-empty.
        """
        return frozenset(
            v for v in range(self._n) if len(self.reachable_from(v)) == self._n
        )

    def has_root(self) -> bool:
        """Whether some node reaches all others this round."""
        return bool(self.roots())

    def is_strongly_connected(self) -> bool:
        """Every node reaches every other node."""
        if self._n == 1:
            return True
        if len(self.reachable_from(0)) != self._n:
            return False
        # Reverse reachability from 0: everyone reaches 0.
        reverse = Topology.from_sorted_edges(
            self._n, sorted((v, u) for u, v in self._edges)
        )
        return len(reverse.reachable_from(0)) == self._n


def intern_table_size() -> int:
    """Current number of interned topologies (diagnostics / tests)."""
    return len(Topology._intern)
