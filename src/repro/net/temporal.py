"""Temporal (multi-hop) reachability -- the paper's future-work probe.

Section I restricts the paper to single-hop communication and leaves
multi-hop "as an interesting future work". The natural multi-hop
analogue of ``(T, D)``-dynaDegree counts *journeys* instead of direct
links: how many distinct origins' round-``t`` information could reach a
node by the end of a ``T``-round window, if every node relayed
everything it knew (the information-flow upper bound).

Formally, for a window ``E(t), ..., E(t+T-1)``, define
``reach_0(v) = {v}`` and
``reach_{i+1}(v) = reach_i(v) u U { reach_i(u) : (u, v) in E(t+i) }``;
the window's reach set of ``v`` is ``reach_T(v)``. A trace satisfies
``(T, D)``-**dynaReach** when ``|reach_T(v) - {v}| >= D`` for every
fault-free ``v`` and every window.

Direct links are one-hop journeys, so dynaReach dominates dynaDegree
(property-tested). The gap between the two is exactly the room
multi-hop relaying *could* exploit -- and experiment X8 shows that
under anonymity DAC/DBAC cannot: quorum counting needs distinct
*direct* ports, because relayed values carry no attributable origin.
"""

from __future__ import annotations

from collections.abc import Collection

from repro.net.dynadegree import DynaDegreeVerdict, DynaDegreeViolation
from repro.net.dynamic import DynamicGraph
from repro.net.topology import Topology


def window_reach_sets(window: list[Topology]) -> dict[int, frozenset[int]]:
    """Origins whose start-of-window state can reach each node.

    ``window`` is the per-round graph sequence; the result maps node ->
    the set of origins (including itself) with a time-respecting path
    to it within the window.
    """
    if not window:
        raise ValueError("window must contain at least one round")
    n = window[0].n
    reach: list[set[int]] = [{v} for v in range(n)]
    for graph in window:
        if graph.n != n:
            raise ValueError(f"window mixes graphs with n={graph.n} and n={n}")
        step = [set(r) for r in reach]
        for u, v in graph.edge_list:
            step[v] |= reach[u]
        reach = step
    return {v: frozenset(reach[v]) for v in range(n)}


def check_dynareach(
    trace: DynamicGraph,
    window: int,
    degree: int,
    fault_free: Collection[int] | None = None,
    max_violations: int = 16,
) -> DynaDegreeVerdict:
    """Check ``(window, degree)``-dynaReach on a recorded trace.

    Mirrors :func:`repro.net.dynadegree.check_dynadegree` (same verdict
    type, same finite-trace conventions) with journeys in place of
    direct links.
    """
    if window < 1:
        raise ValueError(f"window T must be >= 1, got {window}")
    if not (1 <= degree <= trace.n - 1):
        raise ValueError(f"degree D must be in [1, n-1]=[1, {trace.n - 1}], got {degree}")
    targets = set(range(trace.n)) if fault_free is None else set(fault_free)
    complete = max(0, len(trace) - window + 1)
    violations: list[DynaDegreeViolation] = []
    for start in range(complete):
        reach = window_reach_sets(trace.window(start, window))
        for node in sorted(targets):
            got = len(reach[node] - {node})
            if got < degree:
                violations.append(DynaDegreeViolation(start, node, got, degree))
                if len(violations) >= max_violations:
                    return DynaDegreeVerdict(
                        False, window, degree, complete, tuple(violations)
                    )
    return DynaDegreeVerdict(not violations, window, degree, complete, tuple(violations))


def max_reach_for_window(
    trace: DynamicGraph,
    window: int,
    fault_free: Collection[int] | None = None,
) -> int:
    """Largest ``D`` such that ``(window, D)``-dynaReach holds."""
    targets = set(range(trace.n)) if fault_free is None else set(fault_free)
    complete = max(0, len(trace) - window + 1)
    best = trace.n - 1
    for start in range(complete):
        reach = window_reach_sets(trace.window(start, window))
        for node in targets:
            best = min(best, len(reach[node] - {node}))
            if best == 0:
                return 0
    return best
