"""Edge-set generators for the topologies used throughout the paper.

These are plain functions returning edge lists (not graph objects) so
adversaries can compose them cheaply: drop some, union others, then
build the round's :class:`~repro.net.topology.Topology` once
(hash-consing then collapses recurring patterns to one instance).
"""

from __future__ import annotations

import random
from collections.abc import Collection, Sequence

Edge = tuple[int, int]


def empty_edges(n: int) -> list[Edge]:
    """No links at all (the adversary silences the whole round)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return []


def complete_edges(n: int) -> list[Edge]:
    """Every ordered pair ``(u, v)``, ``u != v``."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return [(u, v) for u in range(n) for v in range(n) if u != v]


def cycle_edges(n: int, bidirectional: bool = True) -> list[Edge]:
    """A ring ``0 -> 1 -> ... -> n-1 -> 0`` (both directions by default)."""
    if n < 2:
        raise ValueError(f"cycle needs n >= 2, got {n}")
    edges = [(u, (u + 1) % n) for u in range(n)]
    if bidirectional:
        edges += [((u + 1) % n, u) for u in range(n)]
    return edges


def star_edges(n: int, center: int = 0, bidirectional: bool = True) -> list[Edge]:
    """A star around ``center`` (center -> leaf, and back by default)."""
    if n < 2:
        raise ValueError(f"star needs n >= 2, got {n}")
    if not (0 <= center < n):
        raise ValueError(f"center {center} out of range for n={n}")
    edges = [(center, v) for v in range(n) if v != center]
    if bidirectional:
        edges += [(v, center) for v in range(n) if v != center]
    return edges


def random_edges(n: int, p: float, rng: random.Random) -> list[Edge]:
    """Each directed link is made reliable independently with probability ``p``.

    This is the Section VII "probabilistic message adversary": a
    directed Erdos-Renyi graph drawn fresh every round.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"probability must be in [0, 1], got {p}")
    return [
        (u, v)
        for u in range(n)
        for v in range(n)
        if u != v and rng.random() < p
    ]


def split_edges(n: int, groups: Sequence[Collection[int]]) -> list[Edge]:
    """Complete communication *within* each group, none across groups.

    The impossibility constructions (Theorems 9 and 10) partition nodes
    into groups that only hear themselves; groups may overlap (Theorem
    10 overlaps them in ``3f`` nodes), in which case a node belonging to
    several groups hears from the union of its groups.
    """
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    edges: set[Edge] = set()
    for group in groups:
        members = sorted(set(group))
        for u in members:
            if not (0 <= u < n):
                raise ValueError(f"group member {u} out of range for n={n}")
        for u in members:
            for v in members:
                if u != v:
                    edges.add((u, v))
    return sorted(edges)


def in_links_from(sources: Collection[int], target: int) -> list[Edge]:
    """Directed links delivering from each of ``sources`` into ``target``."""
    return [(u, target) for u in sorted(set(sources)) if u != target]


def drop_incoming(edges: Collection[Edge], target: int, sources: Collection[int]) -> list[Edge]:
    """Remove the links from ``sources`` into ``target`` (omission faults)."""
    banned = {(u, target) for u in sources}
    return [e for e in edges if e not in banned]
