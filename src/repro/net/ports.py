"""Local port numberings: the paper's anonymity mechanism.

Each node ``i`` owns a private bijection ``P_i : V -> {0..n-1}`` (the
paper writes ``{1..n}``; we use 0-based ports). When a message from
``u`` is delivered to ``v``, the engine tags it with ``P_v(u)`` and the
algorithm sees *only* the port. Ports are static for the whole
execution, so a receiver can (a) tell two senders apart and (b)
recognize repeat messages from the same sender -- exactly the two
powers the algorithms in the paper rely on (the ``R_i`` bit vectors).

Two different nodes may map the same sender to different ports, so
ports cannot be used to reconstruct global identities; and because the
communication layer is authenticated, a Byzantine sender cannot forge
the port its messages arrive on.
"""

from __future__ import annotations

import random
from collections.abc import Sequence


class PortNumbering:
    """All nodes' port bijections for one execution.

    Parameters
    ----------
    tables:
        ``tables[i][j]`` is ``P_i(j)``: the port on which node ``i``
        sees messages from node ``j``. Each row must be a permutation
        of ``0..n-1``.
    """

    def __init__(self, tables: Sequence[Sequence[int]]) -> None:
        n = len(tables)
        if n < 1:
            raise ValueError("port numbering needs at least one node")
        expected = set(range(n))
        self._port_of: list[tuple[int, ...]] = []
        self._sender_of: list[tuple[int, ...]] = []
        for i, row in enumerate(tables):
            row = tuple(row)
            if set(row) != expected:
                raise ValueError(
                    f"row {i} is not a permutation of 0..{n - 1}: {row}"
                )
            inverse = [0] * n
            for sender, port in enumerate(row):
                inverse[port] = sender
            self._port_of.append(row)
            self._sender_of.append(tuple(inverse))
        self._n = n

    @property
    def n(self) -> int:
        """Number of nodes (and of ports at each node)."""
        return self._n

    def port_of(self, receiver: int, sender: int) -> int:
        """``P_receiver(sender)``: the engine uses this to tag deliveries."""
        return self._port_of[receiver][sender]

    def sender_of(self, receiver: int, port: int) -> int:
        """Inverse lookup, for the engine/analysis layers only.

        Algorithms must never call this -- it would break anonymity.
        The analysis layer uses it to translate port-level transcripts
        back into global IDs when checking executions.
        """
        return self._sender_of[receiver][port]

    def self_port(self, node: int) -> int:
        """The port on which ``node`` receives its own (reliable) messages."""
        return self._port_of[node][node]

    def port_rows(self) -> tuple[tuple[int, ...], ...]:
        """All bijections at once: ``port_rows()[i][j] == port_of(i, j)``.

        Bulk accessor for engine-side consumers (the round engine's
        delivery loop, the batched kernels) that would otherwise make
        O(n^2) per-element calls per execution. Rows are immutable
        tuples; algorithms must never see them (anonymity).
        """
        return tuple(self._port_of)

    def sender_rows(self) -> tuple[tuple[int, ...], ...]:
        """All inverse bijections: ``sender_rows()[i][k] == sender_of(i, k)``.

        Bulk counterpart of :meth:`sender_of`, for the same engine-side
        consumers and with the same caveat: using it from algorithm
        code would break anonymity.
        """
        return tuple(self._sender_of)

    def port_pairs(
        self, receiver: int, senders: Sequence[int]
    ) -> tuple[tuple[int, int], ...]:
        """``(port, sender)`` pairs for the given senders, in port order.

        In-row-aligned accessor for the engine's port-major delivery
        sweep: handing it a topology's ``in_rows()[receiver]`` yields
        each delivery's arrival port without per-element
        :meth:`port_of` calls, and -- because ports are a bijection --
        iterating the pairs builds ``receiver``'s delivery batch
        already sorted by port, so the engine skips the per-round
        batch sort entirely. Engine-side only (anonymity).
        """
        row = self._port_of[receiver]
        return tuple(sorted((row[s], s) for s in senders))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PortNumbering):
            return NotImplemented
        return self._port_of == other._port_of

    def __repr__(self) -> str:
        return f"PortNumbering(n={self._n})"


def identity_ports(n: int) -> PortNumbering:
    """Every node numbers sender ``j`` as port ``j``.

    Convenient for tests and debugging; note it makes ports *globally
    consistent*, which real executions need not be -- use
    :func:`random_ports` when exercising anonymity-sensitive behavior
    (e.g. Byzantine equivocation going undetected).
    """
    return PortNumbering([list(range(n)) for _ in range(n)])


def random_ports(n: int, rng: random.Random) -> PortNumbering:
    """Independent uniformly-random bijection at every node."""
    tables = []
    for _ in range(n):
        row = list(range(n))
        rng.shuffle(row)
        tables.append(row)
    return PortNumbering(tables)
