"""Network substrate: graphs, dynamic graphs, dynaDegree, ports.

This package models the communication layer of the paper's anonymous
dynamic network:

- :mod:`repro.net.topology` -- the immutable, hash-consed graph value
  type every layer shares (:mod:`repro.net.graph` keeps the deprecated
  ``DirectedGraph`` alias).
- :mod:`repro.net.dynamic` -- round-indexed edge schedules ``E(t)`` and
  recorded communication traces.
- :mod:`repro.net.dynadegree` -- the ``(T, D)``-dynaDegree stability
  property (Definition 1) as an executable checker plus profile analysis.
- :mod:`repro.net.generators` -- topology generators used by adversaries
  and workloads.
- :mod:`repro.net.ports` -- per-node local port numberings (the paper's
  anonymity mechanism).
"""

from repro.net.dynadegree import (
    DynaDegreeChecker,
    DynaDegreeProfile,
    check_dynadegree,
    max_degree_for_window,
    min_window_for_degree,
)
from repro.net.dynamic import DynamicGraph, EdgeSchedule, window_union
from repro.net.generators import (
    complete_edges,
    cycle_edges,
    empty_edges,
    random_edges,
    split_edges,
    star_edges,
)
from repro.net.ports import PortNumbering, identity_ports, random_ports
from repro.net.properties import (
    is_rooted_every_round,
    is_t_interval_connected,
    property_profile,
)
from repro.net.temporal import check_dynareach, max_reach_for_window, window_reach_sets
from repro.net.topology import Topology


def __getattr__(name: str):
    # ``DirectedGraph`` resolves lazily through repro.net.graph so its
    # one-time DeprecationWarning fires on first use, not on package
    # import (see repro.net.graph's module docstring).
    if name == "DirectedGraph":
        from repro.net import graph

        return graph.DirectedGraph
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Topology",
    "DirectedGraph",
    "DynamicGraph",
    "EdgeSchedule",
    "window_union",
    "DynaDegreeChecker",
    "DynaDegreeProfile",
    "check_dynadegree",
    "max_degree_for_window",
    "min_window_for_degree",
    "complete_edges",
    "cycle_edges",
    "empty_edges",
    "random_edges",
    "split_edges",
    "star_edges",
    "PortNumbering",
    "identity_ports",
    "random_ports",
    "is_t_interval_connected",
    "is_rooted_every_round",
    "property_profile",
    "check_dynareach",
    "max_reach_for_window",
    "window_reach_sets",
]
