"""Prior-work stability properties, for comparison with dynaDegree.

Section II-B positions ``(T, D)``-dynaDegree against two earlier
stability notions for dynamic graphs:

- **T-interval connectivity** (Kuhn-Lynch-Oshman STOC'10): for every
  ``T`` consecutive rounds there exists a *stable* connected spanning
  subgraph -- i.e. the intersection of the round edge sets, viewed as
  an undirected graph, is connected. (Their links are bidirectional;
  we symmetrize by keeping the edges present in both directions.)
- **Rooted spanning tree** (Charron-Bost et al. / Winkler et al.): in
  every single round, the directed graph has at least one node that
  reaches every other node.

The paper's point is that these properties and dynaDegree are
*incomparable*: the Figure 1 adversary satisfies (2,1)-dynaDegree but
has rounds with no root at all; conversely a rotating directed star is
rooted every round yet gives only (T, min(T, n-1))-dynaDegree.
Experiment X5 runs algorithms across adversaries satisfying each
property to make the incomparability executable.
"""

from __future__ import annotations

from repro.net.dynamic import DynamicGraph
from repro.net.topology import Edge, Topology


def _stable_undirected_component_count(graphs: list[Topology]) -> int:
    """Connected components of the symmetrized intersection of a window."""
    if not graphs:
        raise ValueError("window must contain at least one round")
    n = graphs[0].n
    stable: set[Edge] = set(graphs[0].edges)
    for graph in graphs[1:]:
        stable &= graph.edges
    # Symmetrize: T-interval connectivity assumes bidirectional links,
    # so only edges stable in both directions connect.
    undirected = [(u, v) for (u, v) in sorted(stable) if (v, u) in stable]
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in undirected:
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
    return len({find(v) for v in range(n)})


def is_t_interval_connected(trace: DynamicGraph, window: int) -> bool:
    """T-interval connectivity over every complete window of a trace.

    Vacuously true for traces shorter than the window (mirroring the
    dynaDegree checker's convention).
    """
    if window < 1:
        raise ValueError(f"window T must be >= 1, got {window}")
    complete = max(0, len(trace) - window + 1)
    for start in range(complete):
        if _stable_undirected_component_count(trace.window(start, window)) != 1:
            return False
    return True


def is_rooted_every_round(trace: DynamicGraph) -> bool:
    """The rooted-spanning-tree property: every round has a root."""
    return all(trace.at(t).has_root() for t in range(len(trace)))


def rooted_rounds(trace: DynamicGraph) -> list[bool]:
    """Per-round root existence (diagnostic for property comparisons)."""
    return [trace.at(t).has_root() for t in range(len(trace))]


def property_profile(trace: DynamicGraph, windows: list[int]) -> dict[str, object]:
    """Summary of all three stability notions on one trace.

    Returns a dict with ``rooted_every_round``, ``rooted_fraction`` and
    ``t_interval_connected`` (per requested window), used by the
    stability-comparison experiment.
    """
    flags = rooted_rounds(trace)
    return {
        "rounds": len(trace),
        "rooted_every_round": all(flags) if flags else True,
        "rooted_fraction": (sum(flags) / len(flags)) if flags else 1.0,
        "t_interval_connected": {
            window: is_t_interval_connected(trace, window) for window in windows
        },
    }
