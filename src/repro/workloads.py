"""Ready-made executions: the scenarios the paper reasons about.

Each builder assembles a full execution -- processes, adversary, port
numberings, fault plan -- and returns keyword arguments for
:func:`repro.sim.runner.run_consensus`, so examples, tests and
benchmarks share one vocabulary of scenarios:

- :func:`build_dac_execution` -- DAC at its feasibility boundary:
  ``n >= 2f + 1`` crash-faulty nodes under an enforcing
  ``(T, floor(n/2))`` worst-case adversary;
- :func:`build_dbac_execution` -- DBAC at its boundary:
  ``n >= 5f + 1`` with equivocating Byzantine nodes under an enforcing
  ``(T, floor((n+3f)/2))`` adversary;
- :func:`theorem9_split_execution` -- the Theorem 9 necessity
  construction (two silent halves);
- :func:`theorem10_split_execution` -- the Theorem 10 necessity
  construction (overlapping groups, two-faced Byzantine core).
"""

from __future__ import annotations

from typing import Any

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    RotatingQuorumAdversary,
    rotate_topology,
)
from repro.adversary.split import (
    IsolateThenConnectAdversary,
    ReceiveSetsAdversary,
    SplitGroupsAdversary,
    halves_partition,
    theorem10_groups,
)
from repro.core.baselines import IteratedMidpointProcess, TrimmedMeanProcess
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.core.phases import dac_end_phase, rounds_upper_bound
from repro.faults.base import FaultPlan
from repro.faults.byzantine import (
    ByzantineStrategy,
    ExtremeByzantine,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
    TwoFacedByzantine,
)
from repro.faults.crash import staggered_crashes
from repro.net.ports import random_ports
from repro.scenario.registry import (
    AlgorithmFamily,
    ParamSpec,
    declare_adversary,
    declare_faults,
    declare_network,
    register_algorithm,
)
from repro.sim.rng import child_rng, spawn_inputs


def dac_degree(n: int) -> int:
    """The DAC sufficiency threshold ``D = floor(n/2)``."""
    return n // 2


def dbac_degree(n: int, f: int) -> int:
    """The DBAC sufficiency threshold ``D = floor((n+3f)/2)``."""
    return (n + 3 * f) // 2


def _quorum_adversary(window: int, degree: int, selector: str):
    if window == 1:
        return RotatingQuorumAdversary(degree, selector=selector)
    return LastMinuteQuorumAdversary(window, degree, selector=selector)


def build_dac_execution(
    n: int,
    f: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    enable_jump: bool = True,
    stop_mode: str = "output",
    max_rounds: int | None = None,
) -> dict[str, Any]:
    """DAC under the enforcing ``(window, floor(n/2))`` adversary.

    ``crash_nodes`` (default: ``f``) of the highest-numbered nodes
    crash cleanly, staggered one per window starting at
    ``crash_start``. Inputs are uniform on [0, 1] from ``seed``.
    Returns kwargs for :func:`repro.sim.runner.run_consensus`.
    """
    if n < 2 * f + 1:
        raise ValueError(f"DAC needs n >= 2f+1, got n={n}, f={f}")
    num_crashes = f if crash_nodes is None else crash_nodes
    if num_crashes > f:
        raise ValueError(f"cannot crash {num_crashes} nodes with fault bound f={f}")
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    crashes = staggered_crashes(
        range(n - num_crashes, n), first_round=crash_start, spacing=window
    )
    plan = FaultPlan(n, crashes=crashes)
    processes = {
        node: DACProcess(
            n,
            f,
            inputs[node],
            ports.self_port(node),
            epsilon=epsilon,
            enable_jump=enable_jump,
        )
        for node in plan.non_byzantine
    }
    bound = rounds_upper_bound(window, dac_end_phase(epsilon))
    return {
        "processes": processes,
        "adversary": _quorum_adversary(window, dac_degree(n), selector),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": stop_mode,
        "max_rounds": max_rounds if max_rounds is not None else max(64, 4 * bound + 8 * window),
        "seed": seed,
    }


def build_dbac_execution(
    n: int,
    f: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "nearest",
    byzantine_factory=None,
    end_phase: int | None = None,
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
) -> dict[str, Any]:
    """DBAC under the enforcing ``(window, floor((n+3f)/2))`` adversary.

    The ``f`` highest-numbered nodes are Byzantine
    (:class:`~repro.faults.byzantine.ExtremeByzantine` equivocators by
    default; pass ``byzantine_factory=lambda node: strategy`` to vary).
    Default stopping is oracle mode -- Equation 6's ``p_end`` is
    astronomically conservative (see DESIGN.md) -- pass ``end_phase``
    plus ``stop_mode="output"`` for algorithm-local termination.
    """
    if n < 5 * f + 1:
        raise ValueError(f"DBAC needs n >= 5f+1, got n={n}, f={f}")
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    byz: dict[int, ByzantineStrategy] = {}
    for node in range(n - f, n):
        byz[node] = byzantine_factory(node) if byzantine_factory else ExtremeByzantine()
    plan = FaultPlan(n, byzantine=byz)
    processes = {
        node: DBACProcess(
            n,
            f,
            inputs[node],
            ports.self_port(node),
            epsilon=epsilon,
            end_phase=end_phase,
        )
        for node in plan.non_byzantine
    }
    return {
        "processes": processes,
        "adversary": _quorum_adversary(window, dbac_degree(n, f), selector),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": stop_mode,
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem9_split_execution(
    n: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    eager_quorum: bool = True,
    max_rounds: int = 400,
) -> dict[str, Any]:
    """The Theorem 9 construction: two silent halves, inputs 0 vs 1.

    The adversary keeps the two halves internally complete and mutually
    silent -- a ``(1, floor(n/2) - 1)``-dynaDegree trace, one short of
    DAC's requirement. With ``eager_quorum=True`` the processes run the
    proof's hypothetical algorithm (quorum lowered to ``floor(n/2)``,
    which *does* terminate at this degree): both halves decide, 0 vs 1,
    violating epsilon-agreement. With ``eager_quorum=False`` plain DAC
    runs and simply never terminates (the other horn of the dilemma).
    """
    if n < 4:
        raise ValueError(f"need n >= 4 for a meaningful split, got {n}")
    group_a, group_b = halves_partition(n)
    ports = random_ports(n, child_rng(seed, "ports"))
    quorum = (n // 2) if eager_quorum else None
    processes = {
        node: DACProcess(
            n,
            0,
            0.0 if node in group_a else 1.0,
            ports.self_port(node),
            epsilon=epsilon,
            quorum_override=quorum,
        )
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": SplitGroupsAdversary([group_a, group_b]),
        "ports": ports,
        "epsilon": epsilon,
        "f": 0,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem10_split_execution(
    f: int,
    n: int | None = None,
    epsilon: float = 1e-3,
    seed: int = 0,
    end_phase: int = 12,
    eager_quorum: bool = True,
    max_rounds: int = 2_000,
) -> dict[str, Any]:
    """The Theorem 10 construction: overlapping groups, two-faced core.

    Group A (size ``D = floor((n+3f)/2)``) and group B overlap in
    ``3f`` middle nodes; the central ``f`` are Byzantine and run the
    honest algorithm twice -- facing A as an honest node with input 0,
    facing B as one with input 1. The adversary pins every honest
    node's *listening set* inside one group (input-0 overlap nodes
    listen to A, input-1 ones to B), producing a
    ``(1, D - 1)``-dynaDegree trace -- one short of DBAC's requirement.

    With ``eager_quorum=True`` the processes run the proof's
    hypothetical algorithm (quorum lowered to ``D``, the most any
    algorithm can wait for at this degree): both sides terminate,
    A-listeners deciding near 0 and B-listeners near 1 --
    epsilon-agreement violated. With ``eager_quorum=False`` plain DBAC
    runs and its A-side never reaches quorum -- termination violated.
    """
    if f < 1:
        raise ValueError(f"Theorem 10 scenario needs f >= 1, got {f}")
    size = (5 * f + 1) if n is None else n
    group_a, group_b, byz_nodes = theorem10_groups(size, f)
    ports = random_ports(size, child_rng(seed, "ports"))

    # Inputs per the proof: 0 below the Byzantine band, 1 above it.
    low_end = (size - f) // 2  # nodes 0 .. low_end-1 have input 0
    high_start = (size + f) // 2  # nodes high_start .. size-1 have input 1
    degree = (size + 3 * f) // 2
    quorum = degree if eager_quorum else None

    # Honest listening assignment: input-0 nodes hear group A, input-1
    # nodes hear group B; the Byzantine band (omitted) hears everyone.
    receive_sets: dict[int, frozenset[int]] = {}
    for node in range(size):
        if node in byz_nodes:
            continue
        receive_sets[node] = group_a if node < low_end else group_b

    def dbac_factory(n_: int, f_: int, input_value: float, self_port: int) -> DBACProcess:
        return DBACProcess(
            n_,
            f_,
            input_value,
            self_port,
            epsilon=epsilon,
            end_phase=end_phase,
            quorum_override=quorum,
        )

    listeners_a = frozenset(v for v in receive_sets if receive_sets[v] is group_a)
    listeners_b = frozenset(v for v in receive_sets if receive_sets[v] is group_b)
    byz = {
        node: TwoFacedByzantine(
            dbac_factory,
            group_a,
            group_b,
            input_a=0.0,
            input_b=1.0,
            listeners_a=listeners_a,
            listeners_b=listeners_b,
        )
        for node in byz_nodes
    }
    plan = FaultPlan(size, byzantine=byz)
    processes = {
        node: dbac_factory(
            size,
            f,
            0.0 if node < high_start else 1.0,
            ports.self_port(node),
        )
        for node in plan.non_byzantine
    }
    return {
        "processes": processes,
        "adversary": ReceiveSetsAdversary(receive_sets),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem9_part2_execution(
    n: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    isolation_rounds: int = 32,
    max_rounds: int = 200,
) -> dict[str, Any]:
    """Theorem 9, second construction: ``n <= 2f`` beats any finite ``T``.

    With ``n = 2f`` an algorithm must be able to decide after
    communicating with only ``f`` nodes (all others may have crashed),
    i.e. quorum ``n/2``. The adversary isolates the two halves just
    long enough for that decision (``isolation_rounds`` rounds covers
    the eager algorithm's ``p_end`` phases) and then restores the
    complete graph forever. The resulting trace satisfies
    ``(isolation_rounds + 1, n - 1)``-dynaDegree -- maximal stability
    for a window the algorithm cannot know -- yet outputs are 0 vs 1.
    """
    if n < 4 or n % 2 != 0:
        raise ValueError(f"need even n >= 4 (n = 2f construction), got {n}")
    f = n // 2
    group_a, group_b = halves_partition(n)
    ports = random_ports(n, child_rng(seed, "ports"))
    processes = {
        node: DACProcess(
            n,
            f,
            0.0 if node in group_a else 1.0,
            ports.self_port(node),
            epsilon=epsilon,
            quorum_override=n // 2,
        )
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": IsolateThenConnectAdversary([group_a, group_b], isolation_rounds),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def _observer_hooks(observe: bool) -> tuple[dict[str, Any], Any]:
    """(run_consensus kwargs, summary-finisher) for an observed trial.

    ``observe=True`` attaches a fresh :class:`repro.obs` bus with a
    :class:`~repro.obs.observers.MetricsAggregator` to the run; the
    finisher stamps the aggregator's summary into the trial's result
    dict (key ``"metrics"``), so it ships back inside the
    ``SweepRecord`` from any worker process. The bus's ``RunFinished``
    event is additionally handed to
    :func:`repro.sim.parallel.record_event`, so sweeps requesting
    ``on_event`` forwarding see one completion event per trial, in
    spec order. The summary is a deterministic function of the seed --
    workers=N returns the identical dict.
    """
    if not observe:
        return {}, lambda summary: summary
    from repro.obs import MetricsAggregator, ObserverBus, consensus_hooks
    from repro.obs.events import RunFinished
    from repro.sim.parallel import record_event

    bus = ObserverBus()
    aggregator = bus.attach(MetricsAggregator())
    bus.subscribe(RunFinished, record_event)
    hooks = consensus_hooks(bus)

    def finish(summary: dict[str, Any]) -> dict[str, Any]:
        summary["metrics"] = aggregator.summary()
        return summary

    return hooks, finish


def run_dac_trial(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    max_rounds: int | None = None,
    seed: int = 0,
    fast: bool = True,
    observe: bool = False,
) -> dict[str, Any]:
    """One boundary DAC execution reduced to a small, picklable summary.

    The module-level trial function for parallel sweeps
    (:mod:`repro.sim.parallel` requires picklable callables): builds
    the standard ``n >= 2f + 1`` execution, runs it -- untraced and
    without phase bookkeeping by default, so the engine takes its fast
    path -- and returns plain scalars that ship cheaply between
    processes. ``f`` defaults to the boundary ``(n - 1) // 2``;
    ``crash_nodes``/``crash_start``/``max_rounds`` pass through to
    :func:`build_dac_execution` (defaults: crash ``f`` nodes from
    round 1, bound-derived cap). ``observe=True`` adds a
    ``"metrics"`` key: the per-round delivery/liveness aggregate from
    an attached observer bus (see :func:`_observer_hooks`).

    Deterministic in ``seed``: the same call always returns the same
    summary, on any worker schedule and at any batch size (the
    ``batch_fn`` attribute carries the
    :mod:`repro.sim.batch`-backed lock-step form the parallel layer
    dispatches under ``batch=B``).

    >>> summary = run_dac_trial(n=5, seed=0)
    >>> sorted(summary)
    ['correct', 'rounds', 'spread', 'terminated']
    >>> summary["correct"] and summary["terminated"]
    True
    >>> run_dac_trial.batch_fn(n=5, seeds=[0]) == [summary]
    True
    """
    from repro.sim.runner import run_consensus  # local import: runner is heavy

    if f is None:
        f = (n - 1) // 2
    hooks, finish = _observer_hooks(observe)
    report = run_consensus(
        **build_dac_execution(
            n=n,
            f=f,
            epsilon=epsilon,
            seed=seed,
            window=window,
            selector=selector,
            crash_nodes=crash_nodes,
            crash_start=crash_start,
            max_rounds=max_rounds,
        ),
        record_trace=not fast,
        verify_promise=not fast,
        track_phases=not fast,
        **hooks,
    )
    return finish(
        {
            "rounds": report.rounds,
            "spread": report.output_spread,
            "terminated": report.terminated,
            "correct": report.correct,
        }
    )


def _lane_summary(lane, epsilon: float) -> dict[str, Any]:
    """The ``run_*_trial`` summary dict for one batch lane.

    Re-derives the runner's verdicts (spread, epsilon-agreement,
    validity) from the lane's outputs and inputs with the runner's own
    arithmetic and float slack, so batched and serial summaries are
    equal value for value. Works for every lane family because
    :class:`repro.sim.batch.LaneResult.outputs` already carries the
    stop-mode-appropriate outputs (decided values for ``"output"``
    stopping, fault-free states for ``"oracle"``), exactly as
    :func:`repro.sim.runner.run_consensus` reports them.
    """
    from repro.sim.runner import _FLOAT_SLACK

    outputs = lane.outputs
    spread = 0.0
    if outputs:
        spread = max(outputs.values()) - min(outputs.values())
    eps_agreement = not outputs or spread <= epsilon + _FLOAT_SLACK
    hull_lo = min(lane.inputs.values())
    hull_hi = max(lane.inputs.values())
    validity = all(
        hull_lo - _FLOAT_SLACK <= value <= hull_hi + _FLOAT_SLACK
        for value in outputs.values()
    )
    return {
        "rounds": lane.rounds,
        "spread": spread,
        "terminated": lane.stopped,
        "correct": lane.stopped and validity and eps_agreement,
    }


def run_dac_trial_batch(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    max_rounds: int | None = None,
    fast: bool = True,
    observe: bool = False,
    seeds: Any = (),
) -> list[dict[str, Any]]:
    """Batched :func:`run_dac_trial`: one summary per seed, in order.

    The batched-trial form the parallel layer dispatches (attached
    below as ``run_dac_trial.batch_fn``): returns exactly
    ``[run_dac_trial(..., seed=s) for s in seeds]``, computed by one
    lock-step :class:`repro.sim.batch.BatchEngine` pass -- vectorized
    when numpy is installed, serial-engine lock-step otherwise. The
    non-fast and observed paths record per-trial engine snapshots,
    which batching cannot amortize, so they simply delegate to the
    serial trial.
    """
    from repro.sim.batch import run_dac_batch

    seeds = [int(seed) for seed in seeds]
    if f is None:
        f = (n - 1) // 2
    if not fast or observe:
        return [
            run_dac_trial(
                n=n,
                f=f,
                epsilon=epsilon,
                window=window,
                selector=selector,
                crash_nodes=crash_nodes,
                crash_start=crash_start,
                max_rounds=max_rounds,
                seed=seed,
                fast=fast,
                observe=observe,
            )
            for seed in seeds
        ]
    lanes = run_dac_batch(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        crash_nodes=crash_nodes,
        crash_start=crash_start,
        max_rounds=max_rounds,
    )
    return [_lane_summary(lane, epsilon) for lane in lanes]


run_dac_trial.batch_fn = run_dac_trial_batch  # type: ignore[attr-defined]


# Mobile-omission targeting modes accepted by run_byz_trial's
# ``adversary`` parameter as "mobile-<mode>" -- the adversary module's
# canonical tuple, so a new mode needs exactly one edit.
from repro.adversary.mobile import MOBILE_MODES as _MOBILE_MODES  # noqa: E402


# Byzantine strategy menu shared by the DBAC trial and the CLIs. Plain
# factories keyed by name keep the trial function picklable (the name,
# not the strategy object, travels to worker processes).
TRIAL_BYZANTINE_STRATEGIES: dict[str, Any] = {
    "extreme": ExtremeByzantine,
    "random": RandomByzantine,
    "phase-liar": lambda: PhaseLiarByzantine(value=1.0, phase_lead=500),
    "pin-high": lambda: FixedValueByzantine(1.0),
    "pin-low": lambda: FixedValueByzantine(0.0),
}


def run_dbac_trial(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    seed: int = 0,
    fast: bool = True,
    observe: bool = False,
) -> dict[str, Any]:
    """One boundary DBAC execution reduced to a picklable summary.

    The DBAC counterpart of :func:`run_dac_trial` for parallel
    comparative grids: ``f`` defaults to the boundary ``(n - 1) // 5``,
    the ``f`` highest nodes run the named Byzantine ``strategy`` (see
    ``TRIAL_BYZANTINE_STRATEGIES``), and stopping defaults to oracle
    mode like :func:`build_dbac_execution` (Equation 6's ``p_end`` is
    astronomically conservative) -- ``rounds`` then measures how long
    the adversary can hold the honest spread above ``epsilon``.

    Deterministic in ``seed`` with the same batch_fn contract as
    :func:`run_dac_trial`; under ``batch=B`` the lanes advance through
    the vectorized :class:`repro.sim.batch.ByzBatchEngine` kernel.

    >>> summary = run_dbac_trial(n=6, seed=1)
    >>> summary["terminated"]
    True
    >>> run_dbac_trial.batch_fn(n=6, seeds=[1]) == [summary]
    True
    """
    from repro.sim.runner import run_consensus  # local import: runner is heavy

    if f is None:
        f = (n - 1) // 5
    if strategy not in TRIAL_BYZANTINE_STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; "
            f"known: {sorted(TRIAL_BYZANTINE_STRATEGIES)}"
        )
    factory = TRIAL_BYZANTINE_STRATEGIES[strategy]
    hooks, finish = _observer_hooks(observe)
    report = run_consensus(
        **build_dbac_execution(
            n=n,
            f=f,
            epsilon=epsilon,
            seed=seed,
            window=window,
            selector=selector,
            byzantine_factory=lambda node: factory(),
            stop_mode=stop_mode,
            max_rounds=max_rounds,
        ),
        record_trace=not fast,
        verify_promise=not fast,
        track_phases=not fast,
        **hooks,
    )
    return finish(
        {
            "rounds": report.rounds,
            "spread": report.output_spread,
            "terminated": report.terminated,
            "correct": report.correct,
        }
    )


def run_dbac_trial_batch(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    fast: bool = True,
    observe: bool = False,
    seeds: Any = (),
) -> list[dict[str, Any]]:
    """Batched :func:`run_dbac_trial`: one summary per seed, in order.

    The batched-trial form the parallel layer dispatches (attached
    below as ``run_dbac_trial.batch_fn``): returns exactly
    ``[run_dbac_trial(..., seed=s) for s in seeds]``, computed by one
    lock-step :class:`repro.sim.batch.ByzBatchEngine` pass --
    vectorized (witness counters, trimmed updates, stable-argsort
    ``nearest`` selection) when numpy is installed and the
    selector/strategy pair is vectorizable, serial-engine lock-step
    otherwise. The non-fast path records traces per trial, which
    batching cannot amortize, so it delegates to the serial trial.
    """
    from repro.sim.batch import run_dbac_batch

    seeds = [int(seed) for seed in seeds]
    if not fast or observe:
        return [
            run_dbac_trial(
                n=n,
                f=f,
                epsilon=epsilon,
                window=window,
                selector=selector,
                strategy=strategy,
                stop_mode=stop_mode,
                max_rounds=max_rounds,
                seed=seed,
                fast=fast,
                observe=observe,
            )
            for seed in seeds
        ]
    lanes = run_dbac_batch(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        strategy=strategy,
        stop_mode=stop_mode,
        max_rounds=max_rounds,
    )
    return [_lane_summary(lane, epsilon) for lane in lanes]


run_dbac_trial.batch_fn = run_dbac_trial_batch  # type: ignore[attr-defined]


def build_mobile_execution(
    n: int,
    mode: str = "block_min",
    epsilon: float = 1e-3,
    seed: int = 0,
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
) -> dict[str, Any]:
    """Fault-free DAC under the Gafni-Losa mobile-omission power.

    The Corollary 1 scenario: every node runs DAC with ``f = 0`` on
    the complete graph, but each receiver loses at most one incoming
    link per round, targeted by ``mode`` (one of
    :data:`repro.adversary.mobile.MOBILE_MODES`). Default stopping is
    oracle mode -- ``rounds`` then measures how long the adversary
    holds the spread above ``epsilon``. Returns kwargs for
    :func:`repro.sim.runner.run_consensus`.
    """
    from repro.adversary.mobile import MobileOmissionAdversary

    if mode not in _MOBILE_MODES:
        raise ValueError(f"unknown mobile mode {mode!r}; known: {_MOBILE_MODES}")
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    processes = {
        node: DACProcess(n, 0, inputs[node], ports.self_port(node), epsilon=epsilon)
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": MobileOmissionAdversary(mode),
        "ports": ports,
        "epsilon": epsilon,
        "f": 0,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": stop_mode,
        "max_rounds": max_rounds,
        "seed": seed,
    }


def run_byz_trial(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    adversary: str = "quorum",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    seed: int = 0,
    fast: bool = True,
    observe: bool = False,
) -> dict[str, Any]:
    """One Byzantine-or-mobile fault-model execution, as a picklable summary.

    The comparative fault-model trial for parallel grids: sweeping
    ``adversary`` (and ``strategy``) through
    :class:`~repro.bench.sweep.Sweep` compares the paper's fault models
    on equal seed/input/port footing, with every cell a module-level
    picklable call that fans out under ``workers=N`` and groups under
    ``--batch``.

    - ``adversary="quorum"`` -- boundary DBAC under the enforcing
      ``(window, floor((n+3f)/2))`` adversary with the ``f``
      highest-numbered nodes running the named Byzantine ``strategy``
      (see ``TRIAL_BYZANTINE_STRATEGIES``); exactly
      :func:`run_dbac_trial`.
    - ``adversary="mobile-<mode>"`` -- the Gafni-Losa mobile-omission
      power (Corollary 1): fault-free DAC on the complete graph where
      each node loses at most one incoming link per round, targeted by
      ``<mode>`` (one of ``block_min``, ``block_max``, ``rotate``,
      ``none``). ``strategy``/``window``/``selector`` are ignored;
      ``f`` must be 0 (default).

    Deterministic in ``seed``; both families batch through
    :class:`repro.sim.batch.ByzBatchEngine` via the attached
    ``batch_fn`` (one summary per seed, in seed order, equal to the
    per-trial calls).

    >>> summary = run_byz_trial(n=6, adversary="mobile-none", seed=0)
    >>> summary["correct"]
    True
    >>> run_byz_trial.batch_fn(n=6, adversary="mobile-none", seeds=[0]) == [summary]
    True
    """
    from repro.sim.runner import run_consensus  # local import: runner is heavy

    if adversary == "quorum":
        return run_dbac_trial(
            n=n,
            f=f,
            epsilon=epsilon,
            window=window,
            selector=selector,
            strategy=strategy,
            stop_mode=stop_mode,
            max_rounds=max_rounds,
            seed=seed,
            fast=fast,
            observe=observe,
        )
    if not adversary.startswith("mobile-"):
        raise ValueError(
            f"unknown adversary {adversary!r}; use 'quorum' or "
            f"'mobile-<mode>' with mode in {_MOBILE_MODES}"
        )
    mode = adversary[len("mobile-") :]
    if f not in (None, 0):
        raise ValueError(f"mobile-omission trials are fault-free, got f={f}")
    hooks, finish = _observer_hooks(observe)
    report = run_consensus(
        **build_mobile_execution(
            n=n,
            mode=mode,
            epsilon=epsilon,
            seed=seed,
            stop_mode=stop_mode,
            max_rounds=max_rounds,
        ),
        record_trace=not fast,
        verify_promise=not fast,
        track_phases=not fast,
        **hooks,
    )
    return finish(
        {
            "rounds": report.rounds,
            "spread": report.output_spread,
            "terminated": report.terminated,
            "correct": report.correct,
        }
    )


def run_byz_trial_batch(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "nearest",
    strategy: str = "extreme",
    adversary: str = "quorum",
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
    fast: bool = True,
    observe: bool = False,
    seeds: Any = (),
) -> list[dict[str, Any]]:
    """Batched :func:`run_byz_trial`: one summary per seed, in order.

    Attached as ``run_byz_trial.batch_fn`` and dispatched by the
    parallel layer, so fault-model comparison grids batch too: both the
    ``"quorum"`` (DBAC) and ``"mobile-<mode>"`` lane families run
    through one lock-step :class:`repro.sim.batch.ByzBatchEngine` pass,
    vectorized when numpy is installed (the ``random``
    selector/strategy falls back to serial-engine lock-step). The
    non-fast path delegates to the serial trial like
    :func:`run_dbac_trial_batch` does.
    """
    from repro.sim.batch import run_byz_batch

    seeds = [int(seed) for seed in seeds]
    if not fast or observe:
        return [
            run_byz_trial(
                n=n,
                f=f,
                epsilon=epsilon,
                window=window,
                selector=selector,
                strategy=strategy,
                adversary=adversary,
                stop_mode=stop_mode,
                max_rounds=max_rounds,
                seed=seed,
                fast=fast,
                observe=observe,
            )
            for seed in seeds
        ]
    lanes = run_byz_batch(
        n,
        f,
        seeds,
        epsilon=epsilon,
        window=window,
        selector=selector,
        strategy=strategy,
        adversary=adversary,
        stop_mode=stop_mode,
        max_rounds=max_rounds,
    )
    return [_lane_summary(lane, epsilon) for lane in lanes]


run_byz_trial.batch_fn = run_byz_trial_batch  # type: ignore[attr-defined]


_BASELINE_PROCESSES = {
    "midpoint": IteratedMidpointProcess,
    "trimmed": TrimmedMeanProcess,
}


def build_baseline_execution(
    n: int,
    algorithm: str = "midpoint",
    f: int = 0,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
) -> dict[str, Any]:
    """An averaging baseline under DAC's boundary adversary.

    The reliable-channel iterated-averaging baselines (``"midpoint"``
    or trim-``f`` ``"trimmed"``) against the enforcing
    ``(window, floor(n/2))`` adversary and the same input/port streams
    as :func:`build_dac_execution`. ``num_rounds`` defaults to DAC's
    ``p_end``; the cap adds a window of slack because the baselines
    advance one round per delivery batch. Returns kwargs for
    :func:`repro.sim.runner.run_consensus`.
    """
    if algorithm not in _BASELINE_PROCESSES:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; known: {sorted(_BASELINE_PROCESSES)}"
        )
    if num_rounds is None:
        num_rounds = dac_end_phase(epsilon)
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    process_type = _BASELINE_PROCESSES[algorithm]
    processes = {
        node: process_type(
            n, f, inputs[node], ports.self_port(node), num_rounds=num_rounds
        )
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": _quorum_adversary(window, dac_degree(n), selector),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        "max_rounds": num_rounds + 2 * window,
        "seed": seed,
    }


def run_baseline_trial(
    n: int,
    algorithm: str = "midpoint",
    f: int = 0,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
    seed: int = 0,
    fast: bool = True,
    observe: bool = False,
) -> dict[str, Any]:
    """One averaging-baseline execution under DAC's boundary adversary.

    Runs a Charron-Bost-style reliable-channel iterated-averaging
    baseline (``"midpoint"`` -- Dolev et al. iterated midpoint -- or
    ``"trimmed"`` -- trim-``f`` mean) against the same enforcing
    ``(window, floor(n/2))`` adversary and input/port streams as
    :func:`run_dac_trial`, so comparative DAC-vs-baseline grids sweep
    both through :class:`repro.bench.sweep.Sweep` on equal footing.
    ``num_rounds`` defaults to DAC's ``p_end`` (the baselines complete
    one phase per round on reliable graphs, making the round budgets
    comparable).

    Deterministic in ``seed`` with the same batch_fn contract as
    :func:`run_dac_trial`; under ``batch=B`` the lanes advance through
    the vectorized :class:`repro.sim.batch.BaselineBatchEngine` kernel
    (two floats of per-node state, fixed round budget).

    >>> summary = run_baseline_trial(n=6, algorithm="midpoint", seed=0)
    >>> summary["terminated"]
    True
    >>> run_baseline_trial.batch_fn(n=6, algorithm="midpoint", seeds=[0]) == [summary]
    True
    """
    from repro.sim.runner import run_consensus  # local import: runner is heavy

    hooks, finish = _observer_hooks(observe)
    report = run_consensus(
        **build_baseline_execution(
            n=n,
            algorithm=algorithm,
            f=f,
            epsilon=epsilon,
            seed=seed,
            window=window,
            selector=selector,
            num_rounds=num_rounds,
        ),
        record_trace=not fast,
        verify_promise=not fast,
        track_phases=not fast,
        **hooks,
    )
    return finish(
        {
            "rounds": report.rounds,
            "spread": report.output_spread,
            "terminated": report.terminated,
            "correct": report.correct,
        }
    )


def run_baseline_trial_batch(
    n: int,
    algorithm: str = "midpoint",
    f: int = 0,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    num_rounds: int | None = None,
    fast: bool = True,
    observe: bool = False,
    seeds: Any = (),
) -> list[dict[str, Any]]:
    """Batched :func:`run_baseline_trial`: one summary per seed, in order.

    The batched-trial form the parallel layer dispatches (attached
    below as ``run_baseline_trial.batch_fn``): returns exactly
    ``[run_baseline_trial(..., seed=s) for s in seeds]``, computed by
    one lock-step :class:`repro.sim.batch.BaselineBatchEngine` pass --
    a fixed-budget vectorized value iteration when numpy is installed
    and the selector is vectorizable (``rotate``/``nearest``),
    serial-engine lock-step otherwise. The non-fast and observed paths
    record per-trial engine snapshots, which batching cannot amortize,
    so they delegate to the serial trial.
    """
    from repro.sim.batch import run_baseline_batch

    seeds = [int(seed) for seed in seeds]
    if not fast or observe:
        return [
            run_baseline_trial(
                n=n,
                algorithm=algorithm,
                f=f,
                epsilon=epsilon,
                window=window,
                selector=selector,
                num_rounds=num_rounds,
                seed=seed,
                fast=fast,
                observe=observe,
            )
            for seed in seeds
        ]
    lanes = run_baseline_batch(
        n,
        seeds,
        algorithm=algorithm,
        f=f,
        epsilon=epsilon,
        window=window,
        selector=selector,
        num_rounds=num_rounds,
    )
    return [_lane_summary(lane, epsilon) for lane in lanes]


run_baseline_trial.batch_fn = run_baseline_trial_batch  # type: ignore[attr-defined]


def _rotate_cycle(n: int, live: tuple[int, ...], degree: int) -> list[Any]:
    """One full salt cycle of interned rotate topologies (period ``n``)."""
    return [rotate_topology(n, live, salt, degree) for salt in range(n)]


def _fast_rotate_params(params: dict[str, Any], default_selector: str) -> bool:
    """Whether a batched group will run a rotate-structured numpy kernel.

    Arena plans only publish for parameter groups whose batched form
    actually reaches a kernel with static (value-independent) round
    structure: the ``rotate`` selector on the fast, unobserved path.
    Everything else ships no tables -- never wrong, just not
    prepublished.
    """
    return (
        params.get("selector", default_selector) == "rotate"
        and params.get("fast", True)
        and not params.get("observe", False)
    )


def _dac_arena_plan(params: dict[str, Any]) -> list[Any]:
    """Topologies :func:`run_dac_trial_batch` will need, for prepublication.

    The enforcing rotate structure cycles over ``salt mod n`` for each
    live set the staggered crash schedule produces (all nodes, then one
    fewer for each of the ``f`` default crashes, highest-numbered nodes
    first-to-crash). Publishing is best-effort: a live set the run
    never reaches is merely unused, a missed one is built locally.
    """
    if not _fast_rotate_params(params, "rotate"):
        return []
    n = params["n"]
    f = params.get("f")
    if f is None:
        f = (n - 1) // 2
    topologies: list[Any] = []
    for crashed in range(f + 1):
        live = tuple(range(n - f)) + tuple(range(n - f + crashed, n))
        topologies.extend(_rotate_cycle(n, live, dac_degree(n)))
    return topologies


def _dbac_arena_plan(params: dict[str, Any]) -> list[Any]:
    """Topologies :func:`run_dbac_trial_batch` will need (all-live cycle).

    DBAC executions have no crashes (Byzantine nodes keep
    transmitting), so the rotate structure is one all-live salt cycle
    at the DBAC degree. The default ``nearest`` selector is
    value-dependent -- no static tables to publish.
    """
    if not _fast_rotate_params(params, "nearest"):
        return []
    n = params["n"]
    f = params.get("f")
    if f is None:
        f = (n - 1) // 5
    return _rotate_cycle(n, tuple(range(n)), dbac_degree(n, f))


def _byz_arena_plan(params: dict[str, Any]) -> list[Any]:
    """Topologies :func:`run_byz_trial_batch` will need.

    Quorum lanes are exactly the DBAC plan; mobile lanes build their
    per-round omission masks in-kernel and ship nothing.
    """
    if params.get("adversary", "quorum") != "quorum":
        return []
    return _dbac_arena_plan({k: v for k, v in params.items() if k != "adversary"})


def _baseline_arena_plan(params: dict[str, Any]) -> list[Any]:
    """Topologies :func:`run_baseline_trial_batch` will need.

    The baselines run fault-free, so the rotate structure is one
    all-live salt cycle at the DAC degree.
    """
    if not _fast_rotate_params(params, "rotate"):
        return []
    n = params["n"]
    return _rotate_cycle(n, tuple(range(n)), dac_degree(n))


run_dac_trial_batch.arena_plan = _dac_arena_plan  # type: ignore[attr-defined]
run_dbac_trial_batch.arena_plan = _dbac_arena_plan  # type: ignore[attr-defined]
run_byz_trial_batch.arena_plan = _byz_arena_plan  # type: ignore[attr-defined]
run_baseline_trial_batch.arena_plan = _baseline_arena_plan  # type: ignore[attr-defined]


# -- Scenario registry: the built-in component vocabulary ------------------
#
# Declared once, at import time, in this module (the owner of the
# trial vocabulary) -- the registry-registration lint rule pins that
# discipline. Components are parameter namespaces the families'
# ``build`` methods interpret; nothing foreign is constructed here.

declare_network(
    "dynadegree",
    params=(
        ParamSpec("window", "int", default=1),
        ParamSpec(
            "selector", "str", default="rotate",
            choices=("rotate", "nearest", "random"),
        ),
    ),
    description="enforcing (window, D)-dynaDegree quorum graph source",
)
declare_adversary(
    "quorum",
    description="worst-case degree-capped quorum adversary (rotating or "
    "last-minute, per the network window)",
)
declare_adversary(
    "mobile",
    params=(
        ParamSpec("mode", "str", default="block_min", choices=tuple(_MOBILE_MODES)),
    ),
    description="Gafni-Losa mobile omission: one lost in-link per "
    "receiver per round",
)
declare_faults(
    "crash",
    params=(
        ParamSpec("crash_nodes", "int", default=None, nullable=True),
        ParamSpec("crash_start", "int", default=1),
    ),
    description="staggered clean crashes of the highest-numbered nodes",
)
declare_faults(
    "byzantine",
    params=(
        ParamSpec(
            "strategy", "str", default="extreme",
            choices=("extreme", "phase-liar", "pin-high", "pin-low", "random"),
        ),
    ),
    description="the f highest-numbered nodes run a named Byzantine "
    "strategy (TRIAL_BYZANTINE_STRATEGIES)",
)


@register_algorithm("dac", version=1)
class DacFamily(AlgorithmFamily):
    """Boundary DAC: crash faults under the enforcing quorum adversary."""

    params = (
        ParamSpec("n", "int"),
        ParamSpec("f", "int", default=None, nullable=True),
        ParamSpec("epsilon", "float", default=1e-3),
        ParamSpec("max_rounds", "int", default=None, nullable=True),
    )
    components = {
        "network": ("dynadegree",),
        "adversary": ("quorum",),
        "faults": ("crash",),
    }
    conformance = {
        "quorum": ({"n": 5}, {"n": 7, "window": 2}),
    }
    rounds_param = "max_rounds"
    trial = staticmethod(run_dac_trial)

    def normalize(self, params):
        if params.get("f") is None:
            params["f"] = (params["n"] - 1) // 2
        return params

    def build(self, *, seed, **params):
        return build_dac_execution(seed=seed, **params)

    def batch(self, seeds, *, backend="auto", **params):
        from repro.sim.batch import run_dac_batch

        return run_dac_batch(
            params["n"],
            params["f"],
            seeds,
            epsilon=params["epsilon"],
            window=params["window"],
            selector=params["selector"],
            crash_nodes=params["crash_nodes"],
            crash_start=params["crash_start"],
            max_rounds=params["max_rounds"],
            backend=backend,
        )

    def vectorizable(self, params):
        # The vectorized DAC kernel replicates the rotate structure only.
        return params.get("selector", "rotate") == "rotate"


@register_algorithm("dbac", version=1)
class DbacFamily(AlgorithmFamily):
    """Boundary DBAC: Byzantine equivocators under the quorum adversary."""

    params = (
        ParamSpec("n", "int"),
        ParamSpec("f", "int", default=None, nullable=True),
        ParamSpec("epsilon", "float", default=1e-3),
        ParamSpec("max_rounds", "int", default=50_000),
    )
    components = {
        "network": ("dynadegree",),
        "adversary": ("quorum",),
        "faults": ("byzantine",),
    }
    component_param_defaults = {"network": {"selector": "nearest"}}
    harness_defaults = {"max_rounds": 2_000}
    conformance = {
        "quorum": ({"n": 6}, {"n": 6, "strategy": "pin-high"}),
    }
    rounds_param = "max_rounds"
    trial = staticmethod(run_dbac_trial)

    def normalize(self, params):
        if params.get("f") is None:
            params["f"] = (params["n"] - 1) // 5
        return params

    def build(self, *, seed, **params):
        factory = TRIAL_BYZANTINE_STRATEGIES[params["strategy"]]
        return build_dbac_execution(
            n=params["n"],
            f=params["f"],
            epsilon=params["epsilon"],
            seed=seed,
            window=params["window"],
            selector=params["selector"],
            byzantine_factory=lambda node: factory(),
            max_rounds=params["max_rounds"],
        )

    def batch(self, seeds, *, backend="auto", **params):
        from repro.sim.batch import run_dbac_batch

        return run_dbac_batch(
            params["n"],
            params["f"],
            seeds,
            epsilon=params["epsilon"],
            window=params["window"],
            selector=params["selector"],
            strategy=params["strategy"],
            max_rounds=params["max_rounds"],
            backend=backend,
        )

    def vectorizable(self, params):
        # RNG-stream consumers fall back to the python backend.
        return (
            params.get("selector") != "random"
            and params.get("strategy") != "random"
        )


@register_algorithm("byz", version=1)
class ByzFamily(AlgorithmFamily):
    """Fault-free DAC under the mobile-omission power (Corollary 1)."""

    params = (
        ParamSpec("n", "int"),
        ParamSpec("epsilon", "float", default=1e-3),
        ParamSpec("max_rounds", "int", default=50_000),
    )
    components = {"adversary": ("mobile",)}
    harness_defaults = {"max_rounds": 2_000}
    conformance = {
        "mobile": ({"n": 5}, {"n": 4, "mode": "rotate"}),
    }
    rounds_param = "max_rounds"
    trial = staticmethod(run_byz_trial)

    def build(self, *, seed, **params):
        return build_mobile_execution(
            n=params["n"],
            mode=params["mode"],
            epsilon=params["epsilon"],
            seed=seed,
            max_rounds=params["max_rounds"],
        )

    def batch(self, seeds, *, backend="auto", **params):
        from repro.sim.batch import run_byz_batch

        return run_byz_batch(
            params["n"],
            None,
            seeds,
            epsilon=params["epsilon"],
            adversary=f"mobile-{params['mode']}",
            max_rounds=params["max_rounds"],
            backend=backend,
        )

    def trial_kwargs(self, params):
        mode = params.pop("mode")
        params["adversary"] = f"mobile-{mode}"
        return params

    def vectorizable(self, params):
        return True


@register_algorithm("baseline", version=1)
class BaselineFamily(AlgorithmFamily):
    """Reliable-channel averaging baselines under the quorum adversary."""

    params = (
        ParamSpec("n", "int"),
        ParamSpec(
            "algorithm", "str", default="midpoint",
            choices=("midpoint", "trimmed"),
        ),
        ParamSpec("f", "int", default=0),
        ParamSpec("epsilon", "float", default=1e-3),
        ParamSpec("num_rounds", "int", default=None, nullable=True),
    )
    components = {
        "network": ("dynadegree",),
        "adversary": ("quorum",),
    }
    conformance = {
        "quorum": ({"n": 6}, {"n": 5, "algorithm": "trimmed"}),
    }
    rounds_param = "num_rounds"
    trial = staticmethod(run_baseline_trial)

    def build(self, *, seed, **params):
        return build_baseline_execution(seed=seed, **params)

    def batch(self, seeds, *, backend="auto", **params):
        from repro.sim.batch import run_baseline_batch

        return run_baseline_batch(
            params["n"],
            seeds,
            algorithm=params["algorithm"],
            f=params["f"],
            epsilon=params["epsilon"],
            window=params["window"],
            selector=params["selector"],
            num_rounds=params["num_rounds"],
            backend=backend,
        )

    def vectorizable(self, params):
        # The value kernel replicates rotate/nearest selection only.
        return params.get("selector") in ("rotate", "nearest")
