"""Ready-made executions: the scenarios the paper reasons about.

Each builder assembles a full execution -- processes, adversary, port
numberings, fault plan -- and returns keyword arguments for
:func:`repro.sim.runner.run_consensus`, so examples, tests and
benchmarks share one vocabulary of scenarios:

- :func:`build_dac_execution` -- DAC at its feasibility boundary:
  ``n >= 2f + 1`` crash-faulty nodes under an enforcing
  ``(T, floor(n/2))`` worst-case adversary;
- :func:`build_dbac_execution` -- DBAC at its boundary:
  ``n >= 5f + 1`` with equivocating Byzantine nodes under an enforcing
  ``(T, floor((n+3f)/2))`` adversary;
- :func:`theorem9_split_execution` -- the Theorem 9 necessity
  construction (two silent halves);
- :func:`theorem10_split_execution` -- the Theorem 10 necessity
  construction (overlapping groups, two-faced Byzantine core).
"""

from __future__ import annotations

from typing import Any

from repro.adversary.constrained import (
    LastMinuteQuorumAdversary,
    RotatingQuorumAdversary,
)
from repro.adversary.split import (
    IsolateThenConnectAdversary,
    ReceiveSetsAdversary,
    SplitGroupsAdversary,
    halves_partition,
    theorem10_groups,
)
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.core.phases import dac_end_phase, rounds_upper_bound
from repro.faults.base import FaultPlan
from repro.faults.byzantine import ByzantineStrategy, ExtremeByzantine, TwoFacedByzantine
from repro.faults.crash import staggered_crashes
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs


def dac_degree(n: int) -> int:
    """The DAC sufficiency threshold ``D = floor(n/2)``."""
    return n // 2


def dbac_degree(n: int, f: int) -> int:
    """The DBAC sufficiency threshold ``D = floor((n+3f)/2)``."""
    return (n + 3 * f) // 2


def _quorum_adversary(window: int, degree: int, selector: str):
    if window == 1:
        return RotatingQuorumAdversary(degree, selector=selector)
    return LastMinuteQuorumAdversary(window, degree, selector=selector)


def build_dac_execution(
    n: int,
    f: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "rotate",
    crash_nodes: int | None = None,
    crash_start: int = 1,
    enable_jump: bool = True,
    stop_mode: str = "output",
    max_rounds: int | None = None,
) -> dict[str, Any]:
    """DAC under the enforcing ``(window, floor(n/2))`` adversary.

    ``crash_nodes`` (default: ``f``) of the highest-numbered nodes
    crash cleanly, staggered one per window starting at
    ``crash_start``. Inputs are uniform on [0, 1] from ``seed``.
    Returns kwargs for :func:`repro.sim.runner.run_consensus`.
    """
    if n < 2 * f + 1:
        raise ValueError(f"DAC needs n >= 2f+1, got n={n}, f={f}")
    num_crashes = f if crash_nodes is None else crash_nodes
    if num_crashes > f:
        raise ValueError(f"cannot crash {num_crashes} nodes with fault bound f={f}")
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    crashes = staggered_crashes(
        range(n - num_crashes, n), first_round=crash_start, spacing=window
    )
    plan = FaultPlan(n, crashes=crashes)
    processes = {
        node: DACProcess(
            n,
            f,
            inputs[node],
            ports.self_port(node),
            epsilon=epsilon,
            enable_jump=enable_jump,
        )
        for node in plan.non_byzantine
    }
    bound = rounds_upper_bound(window, dac_end_phase(epsilon))
    return {
        "processes": processes,
        "adversary": _quorum_adversary(window, dac_degree(n), selector),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": stop_mode,
        "max_rounds": max_rounds if max_rounds is not None else max(64, 4 * bound + 8 * window),
        "seed": seed,
    }


def build_dbac_execution(
    n: int,
    f: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    window: int = 1,
    selector: str = "nearest",
    byzantine_factory=None,
    end_phase: int | None = None,
    stop_mode: str = "oracle",
    max_rounds: int = 50_000,
) -> dict[str, Any]:
    """DBAC under the enforcing ``(window, floor((n+3f)/2))`` adversary.

    The ``f`` highest-numbered nodes are Byzantine
    (:class:`~repro.faults.byzantine.ExtremeByzantine` equivocators by
    default; pass ``byzantine_factory=lambda node: strategy`` to vary).
    Default stopping is oracle mode -- Equation 6's ``p_end`` is
    astronomically conservative (see DESIGN.md) -- pass ``end_phase``
    plus ``stop_mode="output"`` for algorithm-local termination.
    """
    if n < 5 * f + 1:
        raise ValueError(f"DBAC needs n >= 5f+1, got n={n}, f={f}")
    inputs = spawn_inputs(seed, n)
    ports = random_ports(n, child_rng(seed, "ports"))
    byz: dict[int, ByzantineStrategy] = {}
    for node in range(n - f, n):
        byz[node] = byzantine_factory(node) if byzantine_factory else ExtremeByzantine()
    plan = FaultPlan(n, byzantine=byz)
    processes = {
        node: DBACProcess(
            n,
            f,
            inputs[node],
            ports.self_port(node),
            epsilon=epsilon,
            end_phase=end_phase,
        )
        for node in plan.non_byzantine
    }
    return {
        "processes": processes,
        "adversary": _quorum_adversary(window, dbac_degree(n, f), selector),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": stop_mode,
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem9_split_execution(
    n: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    eager_quorum: bool = True,
    max_rounds: int = 400,
) -> dict[str, Any]:
    """The Theorem 9 construction: two silent halves, inputs 0 vs 1.

    The adversary keeps the two halves internally complete and mutually
    silent -- a ``(1, floor(n/2) - 1)``-dynaDegree trace, one short of
    DAC's requirement. With ``eager_quorum=True`` the processes run the
    proof's hypothetical algorithm (quorum lowered to ``floor(n/2)``,
    which *does* terminate at this degree): both halves decide, 0 vs 1,
    violating epsilon-agreement. With ``eager_quorum=False`` plain DAC
    runs and simply never terminates (the other horn of the dilemma).
    """
    if n < 4:
        raise ValueError(f"need n >= 4 for a meaningful split, got {n}")
    group_a, group_b = halves_partition(n)
    ports = random_ports(n, child_rng(seed, "ports"))
    quorum = (n // 2) if eager_quorum else None
    processes = {
        node: DACProcess(
            n,
            0,
            0.0 if node in group_a else 1.0,
            ports.self_port(node),
            epsilon=epsilon,
            quorum_override=quorum,
        )
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": SplitGroupsAdversary([group_a, group_b]),
        "ports": ports,
        "epsilon": epsilon,
        "f": 0,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem10_split_execution(
    f: int,
    n: int | None = None,
    epsilon: float = 1e-3,
    seed: int = 0,
    end_phase: int = 12,
    eager_quorum: bool = True,
    max_rounds: int = 2_000,
) -> dict[str, Any]:
    """The Theorem 10 construction: overlapping groups, two-faced core.

    Group A (size ``D = floor((n+3f)/2)``) and group B overlap in
    ``3f`` middle nodes; the central ``f`` are Byzantine and run the
    honest algorithm twice -- facing A as an honest node with input 0,
    facing B as one with input 1. The adversary pins every honest
    node's *listening set* inside one group (input-0 overlap nodes
    listen to A, input-1 ones to B), producing a
    ``(1, D - 1)``-dynaDegree trace -- one short of DBAC's requirement.

    With ``eager_quorum=True`` the processes run the proof's
    hypothetical algorithm (quorum lowered to ``D``, the most any
    algorithm can wait for at this degree): both sides terminate,
    A-listeners deciding near 0 and B-listeners near 1 --
    epsilon-agreement violated. With ``eager_quorum=False`` plain DBAC
    runs and its A-side never reaches quorum -- termination violated.
    """
    if f < 1:
        raise ValueError(f"Theorem 10 scenario needs f >= 1, got {f}")
    size = (5 * f + 1) if n is None else n
    group_a, group_b, byz_nodes = theorem10_groups(size, f)
    ports = random_ports(size, child_rng(seed, "ports"))

    # Inputs per the proof: 0 below the Byzantine band, 1 above it.
    low_end = (size - f) // 2  # nodes 0 .. low_end-1 have input 0
    high_start = (size + f) // 2  # nodes high_start .. size-1 have input 1
    degree = (size + 3 * f) // 2
    quorum = degree if eager_quorum else None

    # Honest listening assignment: input-0 nodes hear group A, input-1
    # nodes hear group B; the Byzantine band (omitted) hears everyone.
    receive_sets: dict[int, frozenset[int]] = {}
    for node in range(size):
        if node in byz_nodes:
            continue
        receive_sets[node] = group_a if node < low_end else group_b

    def dbac_factory(n_: int, f_: int, input_value: float, self_port: int) -> DBACProcess:
        return DBACProcess(
            n_,
            f_,
            input_value,
            self_port,
            epsilon=epsilon,
            end_phase=end_phase,
            quorum_override=quorum,
        )

    listeners_a = frozenset(v for v in receive_sets if receive_sets[v] is group_a)
    listeners_b = frozenset(v for v in receive_sets if receive_sets[v] is group_b)
    byz = {
        node: TwoFacedByzantine(
            dbac_factory,
            group_a,
            group_b,
            input_a=0.0,
            input_b=1.0,
            listeners_a=listeners_a,
            listeners_b=listeners_b,
        )
        for node in byz_nodes
    }
    plan = FaultPlan(size, byzantine=byz)
    processes = {
        node: dbac_factory(
            size,
            f,
            0.0 if node < high_start else 1.0,
            ports.self_port(node),
        )
        for node in plan.non_byzantine
    }
    return {
        "processes": processes,
        "adversary": ReceiveSetsAdversary(receive_sets),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": plan,
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def theorem9_part2_execution(
    n: int,
    epsilon: float = 1e-3,
    seed: int = 0,
    isolation_rounds: int = 32,
    max_rounds: int = 200,
) -> dict[str, Any]:
    """Theorem 9, second construction: ``n <= 2f`` beats any finite ``T``.

    With ``n = 2f`` an algorithm must be able to decide after
    communicating with only ``f`` nodes (all others may have crashed),
    i.e. quorum ``n/2``. The adversary isolates the two halves just
    long enough for that decision (``isolation_rounds`` rounds covers
    the eager algorithm's ``p_end`` phases) and then restores the
    complete graph forever. The resulting trace satisfies
    ``(isolation_rounds + 1, n - 1)``-dynaDegree -- maximal stability
    for a window the algorithm cannot know -- yet outputs are 0 vs 1.
    """
    if n < 4 or n % 2 != 0:
        raise ValueError(f"need even n >= 4 (n = 2f construction), got {n}")
    f = n // 2
    group_a, group_b = halves_partition(n)
    ports = random_ports(n, child_rng(seed, "ports"))
    processes = {
        node: DACProcess(
            n,
            f,
            0.0 if node in group_a else 1.0,
            ports.self_port(node),
            epsilon=epsilon,
            quorum_override=n // 2,
        )
        for node in range(n)
    }
    return {
        "processes": processes,
        "adversary": IsolateThenConnectAdversary([group_a, group_b], isolation_rounds),
        "ports": ports,
        "epsilon": epsilon,
        "f": f,
        "fault_plan": FaultPlan.fault_free_plan(n),
        "stop_mode": "output",
        "max_rounds": max_rounds,
        "seed": seed,
    }


def run_dac_trial(
    n: int,
    f: int | None = None,
    epsilon: float = 1e-3,
    window: int = 1,
    selector: str = "rotate",
    seed: int = 0,
    fast: bool = True,
) -> dict[str, Any]:
    """One boundary DAC execution reduced to a small, picklable summary.

    The module-level trial function for parallel sweeps
    (:mod:`repro.sim.parallel` requires picklable callables): builds
    the standard ``n >= 2f + 1`` execution, runs it -- untraced and
    without phase bookkeeping by default, so the engine takes its fast
    path -- and returns plain scalars that ship cheaply between
    processes. ``f`` defaults to the boundary ``(n - 1) // 2``.
    """
    from repro.sim.runner import run_consensus  # local import: runner is heavy

    if f is None:
        f = (n - 1) // 2
    report = run_consensus(
        **build_dac_execution(
            n=n, f=f, epsilon=epsilon, seed=seed, window=window, selector=selector
        ),
        record_trace=not fast,
        verify_promise=not fast,
        track_phases=not fast,
    )
    return {
        "rounds": report.rounds,
        "spread": report.output_spread,
        "terminated": report.terminated,
        "correct": report.correct,
    }
