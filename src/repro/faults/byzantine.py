"""Byzantine strategies: arbitrary, possibly equivocating behavior.

A Byzantine node in the paper's model can send *different messages to
different receivers* in the same round, and -- crucially -- anonymity
makes this undetectable: receivers cannot compare notes about "node X"
because ports are local, so reliable-broadcast-style defenses are
unavailable (Section VI-C uses exactly this power).

What a Byzantine node cannot do is forge the port its messages arrive
on (the communication layer is authenticated), and it cannot influence
which links the adversary chooses -- though our strategies may
*collude* with the adversary by reading the same engine view.

Strategies are bound to a node by the engine (:meth:`ByzantineStrategy.bind`),
asked for their per-receiver messages every round, and shown the
messages the faulty node received (so stateful strategies, such as the
two-faced simulation of Theorem 10, can maintain internal state).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from collections.abc import Callable, Collection, Mapping
from dataclasses import dataclass
from typing import Any

from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery


class ByzantineStrategy(ABC):
    """Base class: produces the faulty node's outgoing messages each round."""

    def __init__(self) -> None:
        self.node: int | None = None
        self.n: int = 0
        self.f: int = 0
        self.input_value: float = 0.0
        self.rng: random.Random = random.Random(0)

    def bind(self, node: int, n: int, f: int, input_value: float, rng: random.Random) -> None:
        """Attach the strategy to a concrete node; called once by the engine."""
        self.node = node
        self.n = n
        self.f = f
        self.input_value = input_value
        self.rng = rng
        self._on_bind()

    def _on_bind(self) -> None:
        """Hook for subclasses needing post-bind initialization."""

    @abstractmethod
    def messages(self, t: int, view: Any) -> Mapping[int, Any] | Any:
        """Outgoing messages for round ``t``.

        Return either a single message (sent to every receiver the
        adversary connects) or a mapping ``receiver_id -> message`` for
        equivocation. ``view`` is the engine's omniscient round view.
        """

    def observe(self, t: int, received: list[tuple[int, Any]]) -> None:
        """Messages the faulty node received in round ``t``.

        ``received`` pairs the *true sender ID* with the payload --
        Byzantine nodes are allowed to be omniscient. Default: ignore.
        """


class FixedValueByzantine(ByzantineStrategy):
    """Always advertises one fixed value.

    ``phase_mode`` controls the phase field: ``"track"`` mirrors the
    maximum fault-free phase (so the lie is always fresh enough to be
    accepted by DBAC's ``p_j >= p_i`` filter), an integer pins a
    constant phase.
    """

    def __init__(self, value: float, phase_mode: int | str = "track") -> None:
        super().__init__()
        if isinstance(phase_mode, str) and phase_mode != "track":
            raise ValueError(f"unknown phase_mode {phase_mode!r}")
        self.value = value
        self.phase_mode = phase_mode

    def _phase(self, view: Any) -> int:
        if self.phase_mode == "track":
            return max(0, view.max_fault_free_phase())
        return int(self.phase_mode)

    def messages(self, t: int, view: Any) -> StateMessage:
        return StateMessage(self.value, self._phase(view))


class ExtremeByzantine(ByzantineStrategy):
    """Equivocates between the extremes: low to even receivers, high to odd.

    Designed to stretch receivers' observed ranges as far as possible;
    DBAC's f+1-trimming must neutralize it.
    """

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        super().__init__()
        self.low = low
        self.high = high

    def messages(self, t: int, view: Any) -> dict[int, StateMessage]:
        phase = max(0, view.max_fault_free_phase())
        return {
            receiver: StateMessage(self.low if receiver % 2 == 0 else self.high, phase)
            for receiver in range(self.n)
            if receiver != self.node
        }


class RandomByzantine(ByzantineStrategy):
    """Independent uniformly-random value and plausible phase per receiver."""

    def __init__(self, low: float = 0.0, high: float = 1.0) -> None:
        super().__init__()
        self.low = low
        self.high = high

    def messages(self, t: int, view: Any) -> dict[int, StateMessage]:
        top = max(0, view.max_fault_free_phase())
        out: dict[int, StateMessage] = {}
        for receiver in range(self.n):
            if receiver == self.node:
                continue
            phase = self.rng.randint(0, top + 1)
            out[receiver] = StateMessage(self.rng.uniform(self.low, self.high), phase)
        return out


class PhaseLiarByzantine(ByzantineStrategy):
    """Claims a far-future phase with an extreme value.

    Against DAC this would be devastating (DAC jumps to higher phases),
    which is precisely why DAC only claims crash tolerance; DBAC stores
    such values but trims them. Used in robustness tests.
    """

    def __init__(self, value: float = 1.0, phase_lead: int = 1000) -> None:
        super().__init__()
        if phase_lead < 0:
            raise ValueError(f"phase_lead must be non-negative, got {phase_lead}")
        self.value = value
        self.phase_lead = phase_lead

    def messages(self, t: int, view: Any) -> StateMessage:
        return StateMessage(self.value, max(0, view.max_fault_free_phase()) + self.phase_lead)


@dataclass(frozen=True)
class BothFaces:
    """Byzantine-to-Byzantine payload carrying both faces' broadcasts.

    Colluding two-faced nodes exchange both simulations in one
    (conceptual) message so each peer's face-A sees the other's face-A
    and likewise for B. Never delivered to honest nodes.
    """

    face_a: Any
    face_b: Any


class TwoFacedByzantine(ByzantineStrategy):
    """Runs two sandboxed honest instances -- one face per audience.

    This is the Byzantine behavior of the Theorem 10 impossibility
    proof: the faulty node behaves toward group A's audience *exactly
    as an honest node with input ``a`` would*, and toward group B's as
    an honest node with input ``b``. Anonymity makes the duplicity
    invisible.

    Each face is a real :class:`~repro.sim.node.ConsensusProcess` built
    by ``process_factory`` (e.g. a DBAC constructor). Face A consumes
    the messages of *senders* in ``group_a``; face B those of
    ``group_b``. Which face a *receiver* is shown is decided by the
    listener sets (``listeners_a`` / ``listeners_b``, defaulting to the
    groups themselves): Theorem 10's adversary pins each honest node's
    listening inside one group, and the lie must match. Byzantine
    peers receive :class:`BothFaces` so the collusion stays exact.

    Parameters
    ----------
    process_factory:
        ``(n, f, input_value, self_port) -> ConsensusProcess``.
    group_a, group_b:
        Sender groups feeding face A / face B (engine-side IDs).
    input_a, input_b:
        The inputs the two faces pretend to have started with.
    listeners_a, listeners_b:
        Receivers shown face A / face B. A receiver in neither set
        gets face A. Defaults: the groups themselves.
    """

    def __init__(
        self,
        process_factory: Callable[[int, int, float, int], ConsensusProcess],
        group_a: Collection[int],
        group_b: Collection[int],
        input_a: float,
        input_b: float,
        listeners_a: Collection[int] | None = None,
        listeners_b: Collection[int] | None = None,
    ) -> None:
        super().__init__()
        self._factory = process_factory
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        self.listeners_a = frozenset(listeners_a) if listeners_a is not None else self.group_a
        self.listeners_b = frozenset(listeners_b) if listeners_b is not None else self.group_b
        self.input_a = input_a
        self.input_b = input_b
        self._face_a: ConsensusProcess | None = None
        self._face_b: ConsensusProcess | None = None
        self._round_messages: dict[int, tuple[Any, Any]] = {}

    def _on_bind(self) -> None:
        assert self.node is not None
        # Inside each face, sender IDs double as ports: a consistent
        # private bijection, which is all a port numbering must be.
        self._face_a = self._factory(self.n, self.f, self.input_a, self.node)
        self._face_b = self._factory(self.n, self.f, self.input_b, self.node)

    def _broadcasts(self, t: int) -> tuple[Any, Any]:
        if t not in self._round_messages:
            assert self._face_a is not None and self._face_b is not None
            self._round_messages = {t: (self._face_a.broadcast(), self._face_b.broadcast())}
        return self._round_messages[t]

    def messages(self, t: int, view: Any) -> dict[int, Any]:
        msg_a, msg_b = self._broadcasts(t)
        out: dict[int, Any] = {}
        for receiver in range(self.n):
            if receiver == self.node:
                continue
            if view.fault_plan.is_byzantine(receiver):
                out[receiver] = BothFaces(msg_a, msg_b)
            elif receiver in self.listeners_b:
                out[receiver] = msg_b
            else:
                out[receiver] = msg_a
        return out

    def observe(self, t: int, received: list[tuple[int, Any]]) -> None:
        msg_a, msg_b = self._broadcasts(t)
        assert self._face_a is not None and self._face_b is not None
        assert self.node is not None
        batch_a = [Delivery(self.node, msg_a)]
        batch_b = [Delivery(self.node, msg_b)]
        for sender, message in received:
            if isinstance(message, BothFaces):
                if sender in self.group_a:
                    batch_a.append(Delivery(sender, message.face_a))
                if sender in self.group_b:
                    batch_b.append(Delivery(sender, message.face_b))
                continue
            if sender in self.group_a:
                batch_a.append(Delivery(sender, message))
            if sender in self.group_b:
                batch_b.append(Delivery(sender, message))
        self._face_a.deliver(sorted(batch_a, key=lambda d: d.port))
        self._face_b.deliver(sorted(batch_b, key=lambda d: d.port))
