"""The fault plan: which nodes fail, how, and when.

A :class:`FaultPlan` is the single source of truth the engine, the
adversary, and the analysis layer consult about node faults. It
enforces the model's ground rules (a node is crash-faulty *or*
Byzantine, never both; at most ``f`` faulty nodes when validated
against a bound) and answers the per-round questions the engine asks:
who sends this round, to whom, and who still processes messages.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.faults.byzantine import ByzantineStrategy
from repro.faults.crash import CrashEvent


class FaultPlan:
    """Crash events and Byzantine assignments for one execution.

    Parameters
    ----------
    n:
        Network size.
    crashes:
        ``node -> CrashEvent`` for crash-faulty nodes.
    byzantine:
        ``node -> ByzantineStrategy`` for Byzantine nodes. Strategies
        are bound to their node by the engine at start-up.
    """

    def __init__(
        self,
        n: int,
        crashes: Mapping[int, CrashEvent] | None = None,
        byzantine: Mapping[int, ByzantineStrategy] | None = None,
    ) -> None:
        self.n = n
        self.crashes: dict[int, CrashEvent] = dict(crashes or {})
        self.byzantine: dict[int, ByzantineStrategy] = dict(byzantine or {})
        for node, event in self.crashes.items():
            if not (0 <= node < n):
                raise ValueError(f"crash node {node} out of range for n={n}")
            if event.node != node:
                raise ValueError(f"crash event for node {event.node} keyed as {node}")
        for node in self.byzantine:
            if not (0 <= node < n):
                raise ValueError(f"byzantine node {node} out of range for n={n}")
        overlap = set(self.crashes) & set(self.byzantine)
        if overlap:
            raise ValueError(f"nodes {sorted(overlap)} are both crash and Byzantine")
        # The plan is immutable after construction, so the membership
        # sets and per-round live profiles are memoized: the engine and
        # the enforcing adversaries consult them every round, and the
        # live set only changes when a crash event fires.
        self._crash_order: tuple[int, ...] = tuple(sorted(self.crashes))
        self._fault_free: frozenset[int] | None = None
        self._non_byzantine: frozenset[int] | None = None
        self._live_cache: dict[tuple[bool, ...], tuple[frozenset[int], tuple[int, ...]]] = {}
        self._round_cache: dict[
            tuple[int, ...],
            tuple[dict[int, frozenset[int] | None], frozenset[int]],
        ] = {}
        self._mask_cache: dict[
            tuple[int, ...],
            tuple[frozenset[int], dict[int, frozenset[int]], frozenset[int]],
        ] = {}

    @classmethod
    def fault_free_plan(cls, n: int) -> "FaultPlan":
        """The plan with no faulty nodes at all (f = 0 executions)."""
        return cls(n)

    @property
    def num_faulty(self) -> int:
        """Total faulty nodes (crash + Byzantine)."""
        return len(self.crashes) + len(self.byzantine)

    def validate_bound(self, f: int) -> None:
        """Raise unless the plan respects the fault bound ``f``."""
        if self.num_faulty > f:
            raise ValueError(f"plan has {self.num_faulty} faulty nodes, bound is f={f}")

    # -- Membership queries ----------------------------------------------

    @property
    def fault_free(self) -> frozenset[int]:
        """The paper's ``H``: nodes that never fail."""
        cached = self._fault_free
        if cached is None:
            cached = frozenset(
                v
                for v in range(self.n)
                if v not in self.crashes and v not in self.byzantine
            )
            self._fault_free = cached
        return cached

    @property
    def non_byzantine(self) -> frozenset[int]:
        """Fault-free plus crash-faulty nodes.

        Validity is stated over *non-Byzantine* inputs: a node that
        eventually crashes still contributes a legitimate input.
        """
        cached = self._non_byzantine
        if cached is None:
            cached = frozenset(v for v in range(self.n) if v not in self.byzantine)
            self._non_byzantine = cached
        return cached

    def is_byzantine(self, node: int) -> bool:
        """Whether ``node`` runs a Byzantine strategy."""
        return node in self.byzantine

    def crash_round(self, node: int) -> int | None:
        """The round ``node`` crashes in, or ``None``."""
        event = self.crashes.get(node)
        return None if event is None else event.round

    # -- Per-round behavior ----------------------------------------------

    def send_targets(self, node: int, t: int) -> frozenset[int] | None:
        """Receiver whitelist for ``node`` in round ``t``.

        ``None`` means unrestricted (healthy or Byzantine sender); the
        empty set means the node is silent (crashed).
        """
        event = self.crashes.get(node)
        if event is None:
            return None
        return event.send_targets_at(t)

    def processes_at(self, node: int, t: int) -> bool:
        """Whether ``node`` consumes deliveries and updates state in round ``t``.

        Byzantine nodes "process" in the sense that their strategy
        observes traffic; crash-faulty nodes stop at their crash round.
        """
        event = self.crashes.get(node)
        if event is None:
            return True
        return event.processes_at(t)

    def _phase_key(self, t: int) -> tuple[int, ...]:
        """The crash-phase memo key: where ``t`` sits relative to every
        crash round (before / at / after). Shared by the per-round
        memos below so their tables can never key differently."""
        return tuple(
            0 if t < self.crashes[node].round else 1 if t == self.crashes[node].round else 2
            for node in self._crash_order
        )

    def round_profile(
        self, t: int
    ) -> tuple[dict[int, frozenset[int] | None], frozenset[int]]:
        """Per-round crash metadata, memoized: ``(targets_map, stopped)``.

        ``targets_map`` holds :meth:`send_targets` entries for *crash*
        nodes only (absent means unrestricted -- exactly the ``None``
        those nodes would return); ``stopped`` is the set of nodes that
        no longer process (:meth:`processes_at` false). The engine asks
        both questions for every node every round; this answers them
        with one dict hit per round, since they change only when a
        crash event passes through its crash round.
        """
        key = self._phase_key(t)
        cached = self._round_cache.get(key)
        if cached is None:
            targets_map = {
                node: event.send_targets_at(t) for node, event in self.crashes.items()
            }
            stopped = frozenset(
                node for node, event in self.crashes.items() if not event.processes_at(t)
            )
            cached = (targets_map, stopped)
            self._round_cache[key] = cached
        return cached

    def sender_masks(
        self, t: int
    ) -> tuple[frozenset[int], dict[int, frozenset[int]], frozenset[int]]:
        """Sender-axis crash masks for round ``t``, memoized.

        Returns ``(silent, restricted, stopped)``:

        - ``silent`` -- senders that transmit nothing this round (clean
          crashes past their crash round); the delivery sweep drops
          them before any fan-in work;
        - ``restricted`` -- ``node -> receiver whitelist`` for senders
          crashing *mid-broadcast* this round (non-empty whitelists
          only); empty most rounds, so the sweep can branch on it once;
        - ``stopped`` -- nodes no longer processing deliveries, exactly
          :meth:`round_profile`'s second element.

        This is :meth:`round_profile` re-cut along the sender axis: the
        engine's port-major sweep masks senders *before* fan-in instead
        of filtering per edge, so it wants the silent/partial split
        precomputed. Memoized on the same crash-phase key, since masks
        only change when a crash event passes through its round.
        """
        key = self._phase_key(t)
        cached = self._mask_cache.get(key)
        if cached is None:
            targets_map, stopped = self.round_profile(t)
            silent = frozenset(
                node
                for node, targets in targets_map.items()
                if targets is not None and not targets
            )
            restricted = {
                node: targets for node, targets in targets_map.items() if targets
            }
            cached = (silent, restricted, stopped)
            self._mask_cache[key] = cached
        return cached

    def live_senders(self, t: int) -> frozenset[int]:
        """Nodes guaranteed to transmit (fully) in round ``t``.

        Used by enforcing adversaries when counting links toward the
        ``(T, D)`` promise in the crash model: a partially-crashing
        sender is conservatively *not* counted (DESIGN.md note 4).
        Byzantine nodes always transmit (possibly garbage) and count.
        """
        return self._live_profile(t)[0]

    def live_senders_sorted(self, t: int) -> tuple[int, ...]:
        """:meth:`live_senders` as a sorted tuple (memo-key friendly).

        The enforcing adversaries key their per-round graph memos on
        this tuple; memoizing it here removes the per-round
        ``tuple(sorted(...))`` rebuild from every enforced round.
        """
        return self._live_profile(t)[1]

    def _live_profile(self, t: int) -> tuple[frozenset[int], tuple[int, ...]]:
        # The live set depends on t only through which crash events
        # have fired, so it is memoized on that (small) bool vector.
        key = tuple(
            self.crashes[node].sends_fully_at(t) for node in self._crash_order
        )
        cached = self._live_cache.get(key)
        if cached is None:
            alive = set(self.byzantine)
            for node in range(self.n):
                if node in self.byzantine:
                    continue
                event = self.crashes.get(node)
                if event is None or event.sends_fully_at(t):
                    alive.add(node)
            ordered = tuple(sorted(alive))
            cached = (frozenset(ordered), ordered)
            self._live_cache[key] = cached
        return cached
