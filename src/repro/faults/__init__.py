"""Node fault models: crash schedules and Byzantine strategies.

The paper's hybrid fault model allows up to ``f`` nodes to crash (stop
at any point, possibly mid-broadcast) or behave arbitrarily
(Byzantine). The message adversary is a separate, additional adversary
-- see :mod:`repro.adversary`.
"""

from repro.faults.base import FaultPlan
from repro.faults.byzantine import (
    ByzantineStrategy,
    ExtremeByzantine,
    FixedValueByzantine,
    PhaseLiarByzantine,
    RandomByzantine,
    TwoFacedByzantine,
)
from repro.faults.crash import CrashEvent, staggered_crashes

__all__ = [
    "FaultPlan",
    "CrashEvent",
    "staggered_crashes",
    "ByzantineStrategy",
    "FixedValueByzantine",
    "ExtremeByzantine",
    "RandomByzantine",
    "PhaseLiarByzantine",
    "TwoFacedByzantine",
]
