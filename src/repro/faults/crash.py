"""Crash faults: a node stops executing at any point of time.

The classic synchronous crash model lets a node fail *during* its
broadcast, so that only a subset of that round's receivers get its last
message. :class:`CrashEvent` captures both flavors:

- a **clean crash** at round ``r`` (``receivers=None`` by convention
  with ``partial=False``): the node behaves normally through round
  ``r - 1`` and is silent from round ``r`` on;
- a **partial crash** at round ``r``: in round ``r`` the node's
  broadcast reaches only the listed receivers (further intersected with
  the adversary's chosen links), after which the node is silent.

In both cases the node stops *processing* incoming messages from round
``r`` on -- it is dead, it never outputs.
"""

from __future__ import annotations

from collections.abc import Collection, Iterable
from dataclasses import dataclass


@dataclass(frozen=True)
class CrashEvent:
    """The crash of one node.

    Parameters
    ----------
    node:
        The crashing node's (engine-side) ID.
    round:
        The round during which the node dies. Round 0 means the node
        was dead on arrival (it never sends anything).
    receivers:
        For a partial crash: the receivers that still get the round-
        ``round`` broadcast. ``None`` means a clean crash (nothing is
        sent in round ``round``).
    """

    node: int
    round: int
    receivers: frozenset[int] | None = None

    def __post_init__(self) -> None:
        if self.round < 0:
            raise ValueError(f"crash round must be non-negative, got {self.round}")
        if self.receivers is not None and self.node in self.receivers:
            raise ValueError("a crashing node cannot deliver its last message to itself")

    def sends_fully_at(self, t: int) -> bool:
        """True when the node broadcasts normally in round ``t``."""
        return t < self.round

    def send_targets_at(self, t: int) -> frozenset[int] | None:
        """Receiver whitelist for round ``t``: ``None`` = unrestricted.

        Returns the empty set when the node is silent in round ``t``.
        """
        if t < self.round:
            return None
        if t == self.round and self.receivers is not None:
            return self.receivers
        return frozenset()

    def processes_at(self, t: int) -> bool:
        """True when the node still updates state in round ``t``."""
        return t < self.round


def staggered_crashes(
    nodes: Iterable[int],
    first_round: int = 0,
    spacing: int = 1,
) -> dict[int, CrashEvent]:
    """Clean crashes spread over time: one node every ``spacing`` rounds.

    A convenient worst-ish-case workload: the algorithm keeps losing
    participants as it runs rather than all at once.
    """
    if spacing < 0:
        raise ValueError(f"spacing must be non-negative, got {spacing}")
    events: dict[int, CrashEvent] = {}
    for index, node in enumerate(sorted(set(nodes))):
        events[node] = CrashEvent(node, first_round + index * spacing)
    return events


def simultaneous_crashes(nodes: Iterable[int], at_round: int) -> dict[int, CrashEvent]:
    """Clean crashes of all the given nodes in the same round."""
    return {node: CrashEvent(node, at_round) for node in sorted(set(nodes))}


def partial_crash(node: int, at_round: int, receivers: Collection[int]) -> CrashEvent:
    """A crash mid-broadcast: the last message reaches only ``receivers``."""
    return CrashEvent(node, at_round, frozenset(receivers))
