"""Post-hoc analysis: verdicts, convergence extraction, trial statistics."""

from repro.analysis.agreement import OutputVerdict, judge_outputs
from repro.analysis.convergence import fit_geometric_rate, summarize_rates
from repro.analysis.probabilistic import (
    binomial_tail,
    expected_rounds_per_phase,
    prob_round_degree,
)
from repro.analysis.statistics import Summary, mean_confidence_interval, summarize

__all__ = [
    "OutputVerdict",
    "judge_outputs",
    "fit_geometric_rate",
    "summarize_rates",
    "binomial_tail",
    "prob_round_degree",
    "expected_rounds_per_phase",
    "Summary",
    "mean_confidence_interval",
    "summarize",
]
