"""Convergence-rate extraction from per-phase range series.

Experiments E2 and E5 compare the *measured* contraction of
``range(V(p))`` against the proven bounds (``1/2`` for DAC,
``1 - 2^-n`` for DBAC). Measured rates come from
:class:`repro.sim.metrics.PhaseRangeSeries`; this module reduces them
to the two numbers the tables print: the worst (max) observed rate and
a geometric fit over the whole series.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def summarize_rates(rates: Sequence[float]) -> dict[str, float]:
    """Worst, best, and mean per-phase contraction of a rate series."""
    if not rates:
        return {"max": 0.0, "min": 0.0, "mean": 0.0, "phases": 0.0}
    return {
        "max": max(rates),
        "min": min(rates),
        "mean": sum(rates) / len(rates),
        "phases": float(len(rates)),
    }


def fit_geometric_rate(
    range_series: Sequence[float | None], floor: float = 1e-12
) -> float | None:
    """Least-squares geometric rate of a decaying range series.

    Fits ``log(range_p) ~ log(range_0) + p * log(rho)`` over the phases
    with range above ``floor`` and returns ``rho``. ``None`` when fewer
    than two usable points exist. A pure geometric decay (e.g. DAC on a
    clean network) recovers its rate exactly. Empty phases (``None``
    entries of an aligned series) contribute no point but keep their
    neighbours at the correct phase index.
    """
    points = [
        (p, math.log(r))
        for p, r in enumerate(range_series)
        if r is not None and r > floor
    ]
    if len(points) < 2:
        return None
    count = len(points)
    mean_x = sum(p for p, _ in points) / count
    mean_y = sum(y for _, y in points) / count
    var_x = sum((p - mean_x) ** 2 for p, _ in points)
    if var_x == 0.0:
        return None
    slope = sum((p - mean_x) * (y - mean_y) for p, y in points) / var_x
    return math.exp(slope)


def phases_until(range_series: Sequence[float | None], epsilon: float) -> int | None:
    """Index of the first phase with range <= epsilon (``None`` if never).

    Empty phases (``None`` entries of an aligned series) are skipped:
    an unrecorded range is no evidence of convergence.
    """
    for phase, spread in enumerate(range_series):
        if spread is not None and spread <= epsilon:
            return phase
    return None
