"""Analytic model for the Section VII probabilistic message adversary.

When every directed link is reliable independently with probability
``p`` each round, the quantities driving DAC's progress have closed
forms:

- the chance one node hears at least ``D`` distinct neighbors in one
  round is a binomial tail ``P[Bin(n-1, p) >= D]``;
- a phase completes for a node once it has accumulated quorum-1
  distinct same-phase senders; a simple coupon-collector-style bound
  on the expected rounds per phase follows from the per-round hit
  distribution.

These are *models*, not theorems from the paper (Section VII only
proposes the direction); experiment X6 checks how well they predict
the measured rounds of X1, which is exactly the kind of
model-vs-measurement row a systems evaluation wants.
"""

from __future__ import annotations

import math


def binomial_tail(trials: int, p: float, at_least: int) -> float:
    """``P[Bin(trials, p) >= at_least]``."""
    if trials < 0:
        raise ValueError(f"trials must be non-negative, got {trials}")
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"probability must be in [0, 1], got {p}")
    k = max(0, at_least)
    if k > trials:
        return 0.0
    return sum(
        math.comb(trials, i) * p**i * (1.0 - p) ** (trials - i)
        for i in range(k, trials + 1)
    )


def prob_round_degree(n: int, p: float, degree: int) -> float:
    """Chance a node has >= ``degree`` in-neighbors in a single round."""
    return binomial_tail(n - 1, p, degree)


def expected_rounds_for_degree(n: int, p: float, degree: int) -> float:
    """Expected rounds until one *single round* supplies ``degree`` links.

    Geometric in :func:`prob_round_degree`; infinite if the per-round
    probability is zero.
    """
    q = prob_round_degree(n, p, degree)
    return math.inf if q == 0.0 else 1.0 / q


def expected_rounds_per_phase(n: int, p: float, quorum: int) -> float:
    """Expected rounds for a node to accumulate ``quorum - 1`` distinct
    senders (its own value is free), hearing each sender independently
    with probability ``p`` per round.

    This is a coupon-collector variant with parallel draws: sender
    ``j`` is first heard after Geometric(p) rounds, and the phase needs
    the ``(quorum-1)``-th order statistic of ``n-1`` i.i.d. geometrics.
    We compute its expectation exactly from the survival function:

    ``E[T] = sum_{t>=0} P[T > t]``, with
    ``P[T <= t] = P[Bin(n-1, 1-(1-p)^t) >= quorum-1]``.
    """
    if quorum < 1:
        raise ValueError(f"quorum must be >= 1, got {quorum}")
    need = quorum - 1
    if need == 0:
        return 0.0
    if need > n - 1:
        return math.inf
    if p <= 0.0:
        return math.inf
    total = 0.0
    t = 0
    while True:
        hit_by_t = 1.0 - (1.0 - p) ** t
        p_done = binomial_tail(n - 1, hit_by_t, need)
        survival = 1.0 - p_done
        total += survival
        t += 1
        if survival < 1e-12 or t > 100_000:
            return total


def predicted_rounds_to_epsilon(
    n: int, p: float, quorum: int, end_phase: int
) -> float:
    """Model prediction: expected rounds for ``end_phase`` phases.

    A deliberate simplification -- phases of different nodes overlap
    and jumps let laggards skip ahead, so this *overestimates* at high
    ``p`` and is an upper-trend guide, not an exact law. X6 reports
    model-vs-measured side by side.
    """
    per_phase = expected_rounds_per_phase(n, p, quorum)
    return per_phase * end_phase
