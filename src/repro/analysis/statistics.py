"""Trial statistics for repeated stochastic runs (experiment X1 etc.).

Plain-Python mean / standard deviation / normal-approximation
confidence intervals -- all the sweep harness needs, with no numpy
dependency in the core library.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

# Two-sided critical values of the standard normal distribution.
_Z_VALUES = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Summary:
    """Mean, spread and confidence interval of one sample set."""

    count: int
    mean: float
    std: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:
        return f"{self.mean:.4g} +/- {(self.ci_high - self.mean):.2g} (n={self.count})"


def mean_confidence_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, low, high)`` under the normal approximation.

    A single sample yields a degenerate interval at the point itself.
    """
    if not samples:
        raise ValueError("cannot summarize an empty sample set")
    if confidence not in _Z_VALUES:
        raise ValueError(f"confidence must be one of {sorted(_Z_VALUES)}, got {confidence}")
    count = len(samples)
    mean = sum(samples) / count
    if count == 1:
        return mean, mean, mean
    variance = sum((x - mean) ** 2 for x in samples) / (count - 1)
    half_width = _Z_VALUES[confidence] * math.sqrt(variance / count)
    return mean, mean - half_width, mean + half_width


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Full :class:`Summary` of a sample set."""
    mean, low, high = mean_confidence_interval(samples, confidence)
    count = len(samples)
    if count == 1:
        std = 0.0
    else:
        std = math.sqrt(sum((x - mean) ** 2 for x in samples) / (count - 1))
    return Summary(count=count, mean=mean, std=std, ci_low=low, ci_high=high)
