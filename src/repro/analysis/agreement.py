"""Standalone verdicts on output vectors (Definitions 2 and 3).

The runner embeds these checks in its report; this module exposes them
for analysis of arbitrary output collections (e.g. group-wise verdicts
in the impossibility experiments, where we must show that *each group*
internally agrees while the *groups* disagree).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

_FLOAT_SLACK = 1e-9


@dataclass(frozen=True)
class OutputVerdict:
    """Judgment of one set of outputs against one set of inputs."""

    spread: float
    epsilon_agreement: bool
    validity: bool
    hull: tuple[float, float]

    @property
    def correct(self) -> bool:
        """Both safety properties hold."""
        return self.epsilon_agreement and self.validity


def judge_outputs(
    outputs: Mapping[int, float],
    inputs: Mapping[int, float],
    epsilon: float,
) -> OutputVerdict:
    """Judge epsilon-agreement and validity.

    ``inputs`` must be the *non-Byzantine* inputs: validity requires
    every output inside their convex hull (Definition 3(ii)).
    """
    if not outputs:
        raise ValueError("cannot judge an empty output set")
    if not inputs:
        raise ValueError("cannot judge against an empty input set")
    values = list(outputs.values())
    spread = max(values) - min(values)
    hull_lo, hull_hi = min(inputs.values()), max(inputs.values())
    agrees = spread <= epsilon + _FLOAT_SLACK
    valid = all(hull_lo - _FLOAT_SLACK <= v <= hull_hi + _FLOAT_SLACK for v in values)
    return OutputVerdict(spread, agrees, valid, (hull_lo, hull_hi))


def groupwise_spread(
    outputs: Mapping[int, float],
    groups: Mapping[str, frozenset[int]],
) -> dict[str, float]:
    """Per-group output spread (for the Theorem 9/10 demonstrations).

    Only nodes present in ``outputs`` count; a group with fewer than
    one reporting node yields spread 0.0.
    """
    spreads: dict[str, float] = {}
    for name, members in groups.items():
        values = [outputs[v] for v in members if v in outputs]
        spreads[name] = (max(values) - min(values)) if values else 0.0
    return spreads


def cross_group_gap(
    outputs: Mapping[int, float],
    group_a: frozenset[int],
    group_b: frozenset[int],
) -> float:
    """Smallest |output_a - output_b| across the two groups.

    A large gap with small within-group spreads is the signature of the
    forced-disagreement constructions.
    """
    values_a = [outputs[v] for v in group_a if v in outputs]
    values_b = [outputs[v] for v in group_b if v in outputs]
    if not values_a or not values_b:
        return 0.0
    return min(abs(a - b) for a in values_a for b in values_b)
