"""Termination-phase formulas and convergence-rate bounds.

The paper derives, for inputs scaled to ``[0, 1]``:

- DAC converges with rate ``1/2`` per phase (Remark 1) and outputs at
  phase ``p_end = log_(1/2)(epsilon)`` (Equation 2);
- DBAC converges with rate at most ``1 - 2^-n`` per phase (Theorem 7)
  and outputs at ``p_end = log(epsilon) / log(1 - 2^-n)`` (Equation 6).

Both formulas are ceilinged to integers here (the paper leaves the
rounding implicit; an algorithm can only terminate at a whole phase,
and rounding *down* could leave the range just above epsilon).

DBAC's bound is exponentially conservative -- ``p_end`` grows like
``2^n ln(1/epsilon)`` -- which experiment E5 quantifies by comparing it
with measured phase counts.
"""

from __future__ import annotations

import math


def dac_convergence_rate() -> float:
    """The proven per-phase rate of DAC: exactly ``1/2`` (Remark 1).

    This matches the lower bound of Fuegger-Nowak-Schwarz (JACM'21),
    so DAC is rate-optimal.
    """
    return 0.5


def dbac_convergence_rate(n: int) -> float:
    """The proven per-phase rate bound of DBAC: ``1 - 2^-n`` (Theorem 7)."""
    if n < 1:
        raise ValueError(f"need n >= 1, got {n}")
    return 1.0 - 2.0 ** (-n)


def _end_phase(epsilon: float, rate: float, initial_range: float) -> int:
    """Smallest integer ``p`` with ``initial_range * rate^p <= epsilon``."""
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not (0.0 < rate < 1.0):
        raise ValueError(f"rate must be in (0, 1), got {rate}")
    if initial_range <= epsilon:
        return 0
    # p >= log(epsilon / range) / log(rate); guard float error at the edge.
    exact = math.log(epsilon / initial_range) / math.log(rate)
    p = max(0, math.ceil(exact))
    while initial_range * rate**p > epsilon:
        p += 1
    return p


def dac_end_phase(epsilon: float, initial_range: float = 1.0) -> int:
    """Equation 2: DAC's termination phase ``p_end = log_(1/2)(epsilon)``.

    ``initial_range`` generalizes the paper's ``[0, 1]`` scaling: with
    inputs spanning ``r``, the same derivation gives
    ``p_end = log2(r / epsilon)``.
    """
    return _end_phase(epsilon, dac_convergence_rate(), initial_range)


def dbac_end_phase(epsilon: float, n: int, initial_range: float = 1.0) -> int:
    """Equation 6: DBAC's termination phase under the ``1 - 2^-n`` bound.

    For moderate ``n`` this is astronomically conservative (it is a
    *worst-case* bound); prefer oracle-stopping when measuring real
    convergence, and see experiment E5 for the measured gap.
    """
    if epsilon <= 0.0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if initial_range <= epsilon:
        return 0
    # log(1 - 2^-n) via log1p for precision at large n.
    log_rate = math.log1p(-(2.0 ** (-n)))
    if log_rate == 0.0:
        raise OverflowError(f"rate bound 1 - 2^-{n} indistinguishable from 1.0")
    exact = math.log(epsilon / initial_range) / log_rate
    return max(0, math.ceil(exact))


def rounds_upper_bound(window: int, end_phase: int) -> int:
    """Worst-case rounds to terminate: ``T * p_end`` (Section VII).

    Each phase completes within one ``T``-round window once every
    fault-free node is in the phase, so ``T * p_end`` rounds suffice.
    """
    if window < 1:
        raise ValueError(f"window T must be >= 1, got {window}")
    if end_phase < 0:
        raise ValueError(f"end phase must be non-negative, got {end_phase}")
    return window * end_phase


def measured_phases_to_epsilon(
    range_series: list[float | None], epsilon: float
) -> int | None:
    """First phase whose recorded range is within ``epsilon``.

    Utility for experiments comparing the analytic ``p_end`` against
    what an execution actually needed; ``None`` when the series never
    got there. Delegates to :func:`repro.analysis.convergence.phases_until`
    (one implementation of the search, including the skip over empty
    ``None`` phases of an aligned series).
    """
    # lint: ignore[layering] — documented delegation upward: the one search implementation lives in analysis; deferred so core never imports it at module load
    from repro.analysis.convergence import phases_until

    return phases_until(range_series, epsilon)
