"""Asymptotic (non-terminating) averaging -- Section II-D, category (ii).

The paper sorts prior algorithms into three families; the second
"relaxes termination": nodes average forever and the states converge
asymptotically, with no output ever produced. Charron-Bost, Fuegger
and Nowak (ICALP'15) showed such averaging converges whenever every
round's graph has a rooted spanning tree -- a property *incomparable*
to dynaDegree (Section II-B).

:class:`AsymptoticAveragingProcess` is that family's representative:
each round the node moves to a convex combination (midpoint or mean)
of everything it heard. It never outputs -- ``has_output`` is always
false -- so it is judged with the runner's oracle mode.

Experiment X5 runs it head-to-head with DAC under a rooted-star
adversary: DAC (which needs floor(n/2) in-neighbors to clear a phase)
stalls, while asymptotic averaging glides to agreement -- and, under
the paper's own (1, floor(n/2)) adversary, both converge. Executable
incomparability.
"""

from __future__ import annotations

from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery


class AsymptoticAveragingProcess(ConsensusProcess):
    """Memoryless averaging without termination.

    Parameters
    ----------
    combine:
        ``"midpoint"`` moves to ``(min + max) / 2`` of the received
        values (the contraction the paper's algorithms use);
        ``"mean"`` moves to their arithmetic mean (the classic
        averaging-dynamics choice).
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        combine: str = "midpoint",
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        if combine not in ("midpoint", "mean"):
            raise ValueError(f"unknown combine rule {combine!r}")
        self.combine = combine
        self._v = float(input_value)
        self._round = 0

    @property
    def value(self) -> float:
        """Current state."""
        return self._v

    @property
    def phase(self) -> int:
        """Rounds completed (one averaging step per round)."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(self._v, self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        values = [float(d.message.value) for d in deliveries]
        if values:
            if self.combine == "midpoint":
                self._v = 0.5 * (min(values) + max(values))
            else:
                self._v = sum(values) / len(values)
        self._round += 1

    def has_output(self) -> bool:
        """Never: the algorithm only converges asymptotically."""
        return False

    def output(self) -> float:
        raise RuntimeError("asymptotic averaging never outputs; use oracle mode")

    def state_key(self) -> tuple:
        return (self._v, self._round)
