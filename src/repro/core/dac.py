"""DAC -- Dynamic Approximate Consensus (Algorithm 1).

Crash-tolerant approximate consensus for anonymous dynamic networks.
Correct when ``n >= 2f + 1`` and the network satisfies
``(T, floor(n/2))``-dynaDegree (Theorems 3 and 9 make the pair
sufficient and necessary).

The algorithm is phase-based with two ways to advance:

1. **jump** -- on receiving a state from a *higher* phase ``q``, copy
   it and move straight to ``q`` (lines 5-8). Jumping is what lets DAC
   cope with message loss under the O(log n) bandwidth limit without
   retransmitting old phases;
2. **quorum** -- on having received ``floor(n/2) + 1`` distinct
   phase-``p`` states (self included, tracked by the port bit vector
   ``R_i``), update to the midpoint of the observed extremes and enter
   phase ``p + 1`` (lines 12-15).

Each node stores only ``v_min``/``v_max`` of the current phase -- not
the full multiset -- so its memory is O(n) bits (the ``R_i`` vector)
plus two values, matching the paper's storage discipline.

The node outputs ``v_i`` upon reaching ``p_end = log2(1/epsilon)``
(Equation 2) and freezes its state there; it keeps broadcasting its
final state forever, which is what lets slower nodes jump to ``p_end``
and terminate too. (The paper's infinite loop keeps broadcasting past
``p_end`` as well; freezing guarantees no node can jump *over* the
output phase and miss line 16's equality test.)

``enable_jump=False`` gives the X3 ablation: without jumping the
algorithm can stall forever behind one fast node, which the jump
benchmark demonstrates.
"""

from __future__ import annotations

from repro.core.phases import dac_end_phase
from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery


class DACProcess(ConsensusProcess):
    """One fault-free node running DAC.

    Parameters
    ----------
    n, f:
        Network size and fault bound (the node only uses ``n``; DAC's
    	quorum is ``floor(n/2) + 1`` regardless of ``f``).
    input_value:
        The node's input ``x_i``. The paper scales inputs to
        ``[0, 1]``; any bounded range works if ``initial_range`` covers it.
    self_port:
        Port on which this node hears itself (``R_i[i]`` in the paper).
    epsilon:
        Agreement tolerance; sets ``p_end`` via Equation 2.
    initial_range:
        Width of the input interval (1.0 for the paper's scaling).
    end_phase:
        Explicit override of ``p_end`` (tests / experiments).
    enable_jump:
        Ablation switch for the jump rule (X3). Default on, per paper.
    quorum_override:
        Replace the paper's quorum ``floor(n/2) + 1`` (experiment hook:
        Theorem 9's necessity argument studies the hypothetical
        algorithm that decides after hearing only ``floor(n/2)`` nodes,
        i.e. quorum ``floor(n/2)`` -- it terminates under the
        too-weak degree but provably disagrees).
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        epsilon: float = 1e-3,
        initial_range: float = 1.0,
        end_phase: int | None = None,
        enable_jump: bool = True,
        quorum_override: int | None = None,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        self.epsilon = epsilon
        self.end_phase = (
            dac_end_phase(epsilon, initial_range) if end_phase is None else end_phase
        )
        if self.end_phase < 0:
            raise ValueError(f"end phase must be non-negative, got {self.end_phase}")
        self.enable_jump = enable_jump
        self.quorum = (n // 2 + 1) if quorum_override is None else quorum_override
        if self.quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {self.quorum}")

        # Algorithm 1, initialization block.
        self._v = float(input_value)
        self._v_min = self._v
        self._v_max = self._v
        self._p = 0
        self._received = [False] * n
        self._received[self_port] = True
        self._received_count = 1
        self._output: float | None = None
        self._check_output()

    # -- Introspection ----------------------------------------------------

    @property
    def value(self) -> float:
        """Current state ``v_i``."""
        return self._v

    @property
    def phase(self) -> int:
        """Current phase ``p_i``."""
        return self._p

    @property
    def received_count(self) -> int:
        """``|R_i|``: distinct same-phase senders heard (self included)."""
        return self._received_count

    # -- Protocol ----------------------------------------------------------

    def broadcast(self) -> StateMessage:
        """Line 2: broadcast the current state and phase."""
        return StateMessage(self._v, self._p)

    def deliver(self, deliveries: list[Delivery]) -> None:
        """Lines 4-17: process one round's messages in port order."""
        for port, message in deliveries:
            if self._output is not None:
                return  # frozen at p_end
            incoming_phase = int(message.phase)
            incoming_value = float(message.value)
            if incoming_phase > self._p:
                if self.enable_jump:
                    # Lines 5-8: copy the future state and jump.
                    self._v = incoming_value
                    self._p = incoming_phase
                    self._reset()
                    self._check_output()
            elif incoming_phase == self._p and not self._received[port]:
                # Lines 9-15: record a fresh same-phase state.
                self._received[port] = True
                self._received_count += 1
                self._store(incoming_value)
                if self._received_count >= self.quorum:
                    self._v = 0.5 * (self._v_min + self._v_max)
                    self._p += 1
                    self._reset()
                    self._check_output()

    def has_output(self) -> bool:
        """Whether the node has reached ``p_end`` and output."""
        return self._output is not None

    def output(self) -> float:
        """The decided value; raises until :meth:`has_output`."""
        if self._output is None:
            raise RuntimeError(f"node has not terminated (phase {self._p}/{self.end_phase})")
        return self._output

    # -- Algorithm 1 helper functions ---------------------------------------

    def _reset(self) -> None:
        """Lines 18-20: clear the port bits, re-anchor the extremes."""
        for port in range(self.n):
            self._received[port] = False
        self._received[self.self_port] = True
        self._received_count = 1
        self._v_min = self._v
        self._v_max = self._v

    def _store(self, incoming_value: float) -> None:
        """Lines 21-25: fold one value into the phase extremes."""
        if incoming_value < self._v_min:
            self._v_min = incoming_value
        elif incoming_value > self._v_max:
            self._v_max = incoming_value

    def _check_output(self) -> None:
        """Line 16: output (and freeze) upon reaching ``p_end``."""
        if self._output is None and self._p >= self.end_phase:
            self._p = self.end_phase
            self._output = self._v

    def state_key(self) -> tuple:
        """Hashable full-state key (used by the model checker)."""
        return (
            self._v,
            self._p,
            tuple(self._received),
            self._v_min,
            self._v_max,
            self._output,
        )
