"""Charron-Bost-style averaging algorithms for dynamic graphs.

The averaging class of Charron-Bost, Fuegger and Nowak (ICALP'15):
each round a node broadcasts its value and replaces it with an
average of everything received that round. They generalize the
reliable-channel baselines in :mod:`repro.core.baselines` -- the
``"midpoint"`` rule is the same mean-of-extremes update, while the
``"mean"`` rule is the full arithmetic mean -- and converge on any
rooted dynamic graph sequence, which makes them the natural first
*new* family for the scenario registry (they are registered through
the public :mod:`repro.scenario` API only, in
:mod:`repro.families.averaging`, as the registry's pluggability
proof).

Like every process in the repo, the update is a deterministic
function of the delivered multiset: the ``mean`` rule sums the values
in sorted order, so port-major and sender-major delivery orders
produce bit-identical floats.
"""

from __future__ import annotations

from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery

#: The per-round update rules this process implements.
AVERAGING_RULES = ("mean", "midpoint")


class AveragingProcess(ConsensusProcess):
    """Per-round neighbor averaging with a fixed round budget.

    One phase per round: broadcast ``v``; set ``v`` to the average of
    the values received this round (self included, the engine's
    self-delivery) under ``rule`` -- ``"mean"`` (arithmetic mean,
    summed in sorted order for delivery-order determinism) or
    ``"midpoint"`` (mean of the extremes); output after
    ``num_rounds`` rounds. Both rules are convex, so validity holds
    under any message adversary; convergence needs the graph-sequence
    guarantees the paper's adversaries deliberately withhold.
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        rule: str = "mean",
        num_rounds: int = 10,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        if rule not in AVERAGING_RULES:
            raise ValueError(f"unknown rule {rule!r}; known: {AVERAGING_RULES}")
        if num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {num_rounds}")
        self.rule = rule
        self.num_rounds = num_rounds
        self._v = float(input_value)
        self._round = 0
        self._output: float | None = self._v if num_rounds == 0 else None

    @property
    def value(self) -> float:
        """Current state."""
        return self._v

    @property
    def phase(self) -> int:
        """Rounds completed (one phase per round)."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(self._v, self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        if self._output is not None:
            return
        values = sorted(float(d.message.value) for d in deliveries)
        if values:
            if self.rule == "mean":
                self._v = sum(values) / len(values)
            else:
                self._v = 0.5 * (values[0] + values[-1])
        self._round += 1
        if self._round >= self.num_rounds:
            self._output = self._v

    def has_output(self) -> bool:
        return self._output is not None

    def output(self) -> float:
        if self._output is None:
            raise RuntimeError(f"not terminated (round {self._round}/{self.num_rounds})")
        return self._output

    def state_key(self) -> tuple:
        return (self._v, self._round, self._output)
