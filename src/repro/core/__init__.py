"""The paper's algorithms and their baselines.

- :mod:`repro.core.dac` -- Algorithm 1 (DAC), crash-tolerant
  approximate consensus with phase *jumping*.
- :mod:`repro.core.dbac` -- Algorithm 2 (DBAC), Byzantine approximate
  consensus with f+1-trimmed recording lists.
- :mod:`repro.core.phases` -- termination-phase formulas (Equations 2
  and 6) and the proven convergence-rate bounds.
- :mod:`repro.core.baselines` -- reliable-channel iterated averaging
  and trimmed-mean algorithms from the classic literature, plus the
  exact-consensus candidates fed to the impossibility model checker.
- :mod:`repro.core.piggyback` -- the Section VII bandwidth /
  convergence trade-off extension (crash model).
"""

from repro.core.asymptotic import AsymptoticAveragingProcess
from repro.core.baselines import (
    FloodMinProcess,
    IteratedMidpointProcess,
    MajorityVoteProcess,
    TrimmedMeanProcess,
)
from repro.core.dac import DACProcess
from repro.core.dbac import DBACProcess
from repro.core.phases import (
    dac_convergence_rate,
    dac_end_phase,
    dbac_convergence_rate,
    dbac_end_phase,
    rounds_upper_bound,
)
from repro.core.piggyback import PiggybackDACProcess

__all__ = [
    "DACProcess",
    "AsymptoticAveragingProcess",
    "DBACProcess",
    "PiggybackDACProcess",
    "IteratedMidpointProcess",
    "TrimmedMeanProcess",
    "FloodMinProcess",
    "MajorityVoteProcess",
    "dac_end_phase",
    "dbac_end_phase",
    "dac_convergence_rate",
    "dbac_convergence_rate",
    "rounds_upper_bound",
]
