"""DBAC -- Dynamic Byzantine Approximate Consensus (Algorithm 2).

Byzantine approximate consensus for anonymous dynamic networks.
Correct when ``n >= 5f + 1`` and the network satisfies
``(T, floor((n+3f)/2))``-dynaDegree (Theorems 4/7 and 10 make the pair
sufficient and necessary).

Structure mirrors DAC, with three changes to survive Byzantine values:

1. nodes **never jump** -- copying an unverified future state would
   hand Byzantine senders the steering wheel;
2. a state message counts toward the current phase whenever its phase
   is ``>= p_i`` (not only ``==``), one count per port (bit vector
   ``R_i``);
3. the update is Byzantine-trimmed: the node tracks the ``f+1`` lowest
   and ``f+1`` highest stored values (``R_low`` / ``R_high``) and, upon
   collecting ``floor((n+3f)/2) + 1`` states, moves to
   ``(max(R_low) + min(R_high)) / 2`` -- i.e. the midpoint of the
   (f+1)-st lowest and (f+1)-st highest received states, each of which
   is anchored by at least one fault-free value.

Fidelity notes (see DESIGN.md):

- the node's own value is stored into ``R_low``/``R_high`` at phase
  start (the paper's pseudo-code pre-marks ``R_i[i]`` without storing,
  but its proof counts the self value among the received states);
- ``R_low``/``R_high`` hold exactly ``f+1`` entries (the pseudo-code's
  ``<= f+1`` guard would admit ``f+2``).

The node outputs at ``p_end`` from Equation 6 -- the *proven* bound
``log(epsilon)/log(1 - 2^-n)``, which is exponentially conservative;
experiments run it in oracle mode to measure the real phase count, or
override ``end_phase``.

This class is also the executable specification of the vectorized
DBAC lanes in :mod:`repro.sim.batch`: the kernel replicates
:meth:`DBACProcess.deliver` port by port across ``(B, n)`` state
arrays, with ``R_low``/``R_high`` as fixed-width sorted rows (see
:attr:`DBACProcess.stored_count` and docs/batching.md). Changes to the
delivery or trimming rules here must be mirrored there; the
determinism suite pins the two bit for bit.
"""

from __future__ import annotations

import bisect

from repro.core.phases import dbac_end_phase
from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery


class DBACProcess(ConsensusProcess):
    """One fault-free node running DBAC.

    Parameters
    ----------
    n, f:
        Network size and Byzantine bound; the quorum is
        ``floor((n+3f)/2) + 1`` and the trimming depth is ``f+1``.
    input_value, self_port:
        As in :class:`~repro.core.dac.DACProcess`.
    epsilon:
        Agreement tolerance; sets ``p_end`` via Equation 6 unless
        ``end_phase`` overrides it.
    initial_range:
        Width of the input interval (1.0 for the paper's scaling).
    end_phase:
        Explicit override of ``p_end``. Strongly recommended for
        simulation studies -- Equation 6 is a worst-case bound of order
        ``2^n ln(1/epsilon)`` phases.
    quorum_override:
        Replace the paper's quorum ``floor((n+3f)/2) + 1`` (experiment
        hook: Theorem 10's necessity argument studies the hypothetical
        algorithm that decides after hearing ``floor((n+3f)/2)`` nodes
        -- it terminates under the too-weak degree but disagrees).
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        epsilon: float = 1e-3,
        initial_range: float = 1.0,
        end_phase: int | None = None,
        quorum_override: int | None = None,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        self.epsilon = epsilon
        self.end_phase = (
            dbac_end_phase(epsilon, n, initial_range) if end_phase is None else end_phase
        )
        if self.end_phase < 0:
            raise ValueError(f"end phase must be non-negative, got {self.end_phase}")
        self.quorum = ((n + 3 * f) // 2 + 1) if quorum_override is None else quorum_override
        if self.quorum < 1:
            raise ValueError(f"quorum must be >= 1, got {self.quorum}")
        self.trim = f + 1

        # Algorithm 2, initialization block.
        self._v = float(input_value)
        self._p = 0
        self._received = [False] * n
        self._received[self_port] = True
        self._received_count = 1
        self._r_low: list[float] = []  # ascending; at most f+1 lowest stored
        self._r_high: list[float] = []  # ascending; at most f+1 highest stored
        self._store(self._v)  # fidelity note: self value is stored
        self._output: float | None = None
        self._check_output()

    # -- Introspection ------------------------------------------------------

    @property
    def value(self) -> float:
        """Current state ``v_i``."""
        return self._v

    @property
    def phase(self) -> int:
        """Current phase ``p_i``."""
        return self._p

    @property
    def received_count(self) -> int:
        """``|R_i|``: ports heard this phase (self included)."""
        return self._received_count

    @property
    def recording_lists(self) -> tuple[tuple[float, ...], tuple[float, ...]]:
        """Snapshots of ``(R_low, R_high)`` (ascending order each)."""
        return tuple(self._r_low), tuple(self._r_high)

    @property
    def stored_count(self) -> int:
        """Values stored into ``R_low``/``R_high`` this phase.

        Invariant: every accepted port (plus the phase-start self
        value) stores exactly one value, so this equals
        :attr:`received_count` and both recording lists hold exactly
        ``min(stored_count, f + 1)`` entries -- the ``f+1`` smallest /
        largest stored values of the phase, ascending. The vectorized
        batch kernel (:mod:`repro.sim.batch`) relies on this to keep
        only a flat per-phase stored-value buffer and reconstruct the
        exact ``R_low``/``R_high`` lists (and the trimmed extremes at
        quorum time) from it; the invariant is asserted against real
        executions in the determinism suite.
        """
        return self._received_count

    # -- Protocol ------------------------------------------------------------

    def broadcast(self) -> StateMessage:
        """Line 2: broadcast the current state and phase."""
        return StateMessage(self._v, self._p)

    def deliver(self, deliveries: list[Delivery]) -> None:
        """Lines 4-13: process one round's messages in port order."""
        for port, message in deliveries:
            if self._output is not None:
                return  # frozen at p_end
            incoming_phase = int(message.phase)
            if incoming_phase < self._p or self._received[port]:
                continue
            # Lines 5-7: fresh port with a current-or-future state.
            self._received[port] = True
            self._received_count += 1
            self._store(float(message.value))
            if self._received_count >= self.quorum:
                # Lines 8-11: trimmed-midpoint update, next phase.
                self._v = 0.5 * (self._r_low[-1] + self._r_high[0])
                self._p += 1
                self._reset()
                self._check_output()

    def has_output(self) -> bool:
        """Whether the node has reached ``p_end`` and output."""
        return self._output is not None

    def output(self) -> float:
        """The decided value; raises until :meth:`has_output`."""
        if self._output is None:
            raise RuntimeError(f"node has not terminated (phase {self._p}/{self.end_phase})")
        return self._output

    # -- Algorithm 2 helper functions -----------------------------------------

    def _reset(self) -> None:
        """Lines 14-16 plus the self-value store (fidelity note 1)."""
        for port in range(self.n):
            self._received[port] = False
        self._received[self.self_port] = True
        self._received_count = 1
        self._r_low = []
        self._r_high = []
        self._store(self._v)

    def _store(self, incoming_value: float) -> None:
        """Lines 17-25 with exact ``f+1`` bounds (fidelity note 2).

        ``R_low`` keeps the ``f+1`` smallest stored values, ``R_high``
        the ``f+1`` largest; one incoming value may enter both (e.g.
        the first ``f+1`` values seen in a phase).
        """
        bisect.insort(self._r_low, incoming_value)
        if len(self._r_low) > self.trim:
            self._r_low.pop()  # drop the largest of the lows
        bisect.insort(self._r_high, incoming_value)
        if len(self._r_high) > self.trim:
            self._r_high.pop(0)  # drop the smallest of the highs

    def _check_output(self) -> None:
        """Line 12: output (and freeze) upon reaching ``p_end``."""
        if self._output is None and self._p >= self.end_phase:
            self._p = self.end_phase
            self._output = self._v

    def state_key(self) -> tuple:
        """Hashable full-state key (used by the model checker)."""
        return (
            self._v,
            self._p,
            tuple(self._received),
            tuple(self._r_low),
            tuple(self._r_high),
            self._output,
        )
