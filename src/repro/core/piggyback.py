"""The Section VII bandwidth / convergence trade-off extension.

The paper observes that with *unlimited* bandwidth one can simulate the
classic reliable-channel algorithm of Dolev et al. [13] by
piggybacking the entire history of past messages, recovering rate
``1/2`` per phase trivially; and that piggybacking a *limited* set of
old messages should buy some convergence at some bandwidth cost,
leaving the exact trade-off open.

:class:`PiggybackDACProcess` realizes the limited version for the crash
model: alongside its own ``(value, phase)`` state each node relays up
to ``k`` of the freshest *other* states it has recently received.
Receivers treat relayed entries as ordinary state observations except
that they never consume a port's once-per-phase budget (a relay is not
a distinct same-phase *sender*, so counting it toward the quorum could
double-count a node). Concretely, a relayed entry:

- triggers a jump if its phase is higher (it is a genuine state of
  some node -- sound in the crash model where nobody lies);
- widens ``v_min``/``v_max`` if it belongs to the current phase.

With ``k = 0`` this is exactly DAC. As ``k`` grows each node sees a
larger sample of every phase, the phase extremes at different nodes
coincide more often, and the *measured* contraction per phase drops
below the worst-case ``1/2`` -- at a bandwidth cost of
``k * (VALUE_BITS + PHASE_BITS)`` extra bits per message, which
experiment X2 charges and reports.

The Byzantine analogue is intentionally absent: a Byzantine relay can
fabricate arbitrarily many "old messages", defeating the f+1-trimming
argument, and the paper leaves that trade-off as an open problem.
"""

from __future__ import annotations

from repro.core.dac import DACProcess
from repro.sim.messages import StateMessage
from repro.sim.node import Delivery


class PiggybackDACProcess(DACProcess):
    """DAC plus relaying of up to ``k`` recently-received states.

    Parameters
    ----------
    k:
        Maximum number of relayed ``(value, phase)`` entries per
        broadcast. ``0`` reduces to plain DAC (asserted by tests).

    Other parameters are those of :class:`~repro.core.dac.DACProcess`.
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        epsilon: float = 1e-3,
        initial_range: float = 1.0,
        end_phase: int | None = None,
        enable_jump: bool = True,
        k: int = 2,
    ) -> None:
        super().__init__(
            n,
            f,
            input_value,
            self_port,
            epsilon=epsilon,
            initial_range=initial_range,
            end_phase=end_phase,
            enable_jump=enable_jump,
        )
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        self.k = k
        # Freshest states heard from others, newest first, deduplicated.
        self._relay_buffer: list[tuple[float, int]] = []

    def broadcast(self) -> StateMessage:
        """Own state plus up to ``k`` relayed entries."""
        return StateMessage(self._v, self._p, tuple(self._relay_buffer[: self.k]))

    def _remember(self, value: float, phase: int) -> None:
        entry = (value, phase)
        if entry in self._relay_buffer:
            return
        self._relay_buffer.insert(0, entry)
        # Keep a small working set: prefer fresh, high-phase entries.
        self._relay_buffer.sort(key=lambda e: -e[1])
        del self._relay_buffer[self.k * 2 + 1 :]

    def _absorb_relayed(self, value: float, phase: int) -> None:
        """Apply one relayed state: jump on future, widen on current."""
        if phase > self._p:
            if self.enable_jump:
                self._v = value
                self._p = phase
                self._reset()
                self._check_output()
        elif phase == self._p:
            self._store(value)

    def deliver(self, deliveries: list[Delivery]) -> None:
        """DAC's rules on the primary entries, relay rules on history."""
        for port, message in deliveries:
            if self._output is not None:
                return
            # Primary entry: exact DAC treatment (and relay-remember it).
            primary = StateMessage(message.value, message.phase)
            if port != self.self_port:
                self._remember(float(message.value), int(message.phase))
            super().deliver([Delivery(port, primary)])
            if self._output is not None:
                return
            # Relayed entries: state observations without a port budget.
            for value, phase in message.history:
                self._remember(float(value), int(phase))
                self._absorb_relayed(float(value), int(phase))

    def state_key(self) -> tuple:
        return super().state_key() + (tuple(self._relay_buffer),)
