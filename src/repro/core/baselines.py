"""Baseline algorithms from the classic (reliable-channel) literature.

These serve two purposes:

- **comparison** (experiment X4): the iterated-midpoint algorithm of
  Dolev et al. (JACM'86) and the trimmed-mean Byzantine iteration
  achieve rate ``1/2`` per round on *reliable* complete graphs; DAC
  matches that rate per *phase* in a hostile dynamic network, which is
  the paper's optimality claim;
- **impossibility targets** (experiment I1): FloodMin and
  majority-vote are deterministic *exact* consensus candidates with a
  fixed round budget. Corollary 1 says no such algorithm can work with
  ``(1, n-2)``-dynaDegree; the model checker and the mobile-omission
  adversary find violating executions for each of them.

All baselines speak :class:`~repro.sim.messages.StateMessage` so they
run on the same engine, adversaries, and fault plans as DAC/DBAC.
"""

from __future__ import annotations

from repro.sim.messages import StateMessage
from repro.sim.node import ConsensusProcess, Delivery


class IteratedMidpointProcess(ConsensusProcess):
    """Dolev et al.-style crash-tolerant iterated averaging.

    One phase per round: broadcast ``v``, set ``v`` to the midpoint of
    the extremes of everything received this round (self included),
    output after ``num_rounds`` rounds. On a reliable complete graph
    this contracts the global range by exactly ``1/2`` per round.

    It assumes reliable delivery -- under a message adversary it can
    lose both convergence and validity guarantees, which is the paper's
    motivation for DAC (Section II-D, category (i)).
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        num_rounds: int = 10,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        if num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {num_rounds}")
        self.num_rounds = num_rounds
        self._v = float(input_value)
        self._round = 0
        self._output: float | None = self._v if num_rounds == 0 else None

    @property
    def value(self) -> float:
        """Current state."""
        return self._v

    @property
    def phase(self) -> int:
        """Rounds completed (one phase per round)."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(self._v, self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        if self._output is not None:
            return
        values = [float(d.message.value) for d in deliveries]
        if values:
            self._v = 0.5 * (min(values) + max(values))
        self._round += 1
        if self._round >= self.num_rounds:
            self._output = self._v

    def has_output(self) -> bool:
        return self._output is not None

    def output(self) -> float:
        if self._output is None:
            raise RuntimeError(f"not terminated (round {self._round}/{self.num_rounds})")
        return self._output

    def state_key(self) -> tuple:
        return (self._v, self._round, self._output)


class TrimmedMeanProcess(ConsensusProcess):
    """Classic synchronous Byzantine iterated averaging (trim f per side).

    Each round: broadcast ``v``; drop the ``f`` lowest and ``f``
    highest received values; set ``v`` to the midpoint of the remaining
    extremes. Sound on reliable complete graphs with ``n >= 3f + 1``
    (Dolev et al. '86 / the BAC family the paper cites as [14]); it has
    no defense against message loss, unlike DBAC.
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        num_rounds: int = 10,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        if num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {num_rounds}")
        self.num_rounds = num_rounds
        self._v = float(input_value)
        self._round = 0
        self._output: float | None = self._v if num_rounds == 0 else None

    @property
    def value(self) -> float:
        """Current state."""
        return self._v

    @property
    def phase(self) -> int:
        """Rounds completed (one phase per round)."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(self._v, self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        if self._output is not None:
            return
        values = sorted(float(d.message.value) for d in deliveries)
        trimmed = values[self.f : len(values) - self.f] if len(values) > 2 * self.f else []
        if trimmed:
            self._v = 0.5 * (trimmed[0] + trimmed[-1])
        self._round += 1
        if self._round >= self.num_rounds:
            self._output = self._v

    def has_output(self) -> bool:
        return self._output is not None

    def output(self) -> float:
        if self._output is None:
            raise RuntimeError(f"not terminated (round {self._round}/{self.num_rounds})")
        return self._output

    def state_key(self) -> tuple:
        return (self._v, self._round, self._output)


class FloodMinProcess(ConsensusProcess):
    """Exact-consensus candidate: flood the minimum for ``num_rounds``.

    With reliable links and ``num_rounds >= n - 1`` every node learns
    the global minimum and exact agreement holds. Under the
    ``(1, n-2)`` mobile-omission adversary the minimum can be blocked
    forever (each receiver loses exactly the one link that matters), so
    agreement fails -- the executable content of Corollary 1.
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        num_rounds: int | None = None,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        self.num_rounds = (n - 1) if num_rounds is None else num_rounds
        if self.num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {self.num_rounds}")
        self._v = float(input_value)
        self._round = 0
        self._output: float | None = self._v if self.num_rounds == 0 else None

    @property
    def value(self) -> float:
        """Smallest value seen so far."""
        return self._v

    @property
    def phase(self) -> int:
        """Rounds completed."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(self._v, self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        if self._output is not None:
            return
        for delivery in deliveries:
            incoming = float(delivery.message.value)
            if incoming < self._v:
                self._v = incoming
        self._round += 1
        if self._round >= self.num_rounds:
            self._output = self._v

    def has_output(self) -> bool:
        return self._output is not None

    def output(self) -> float:
        if self._output is None:
            raise RuntimeError(f"not terminated (round {self._round}/{self.num_rounds})")
        return self._output

    def state_key(self) -> tuple:
        return (self._v, self._round, self._output)


class MajorityVoteProcess(ConsensusProcess):
    """Exact-consensus candidate: decide the majority of observed inputs.

    Counts, per port, the latest binary value advertised; outputs the
    majority (ties break to 0) after ``num_rounds`` rounds. Another
    natural deterministic algorithm for the checker to break.
    """

    def __init__(
        self,
        n: int,
        f: int,
        input_value: float,
        self_port: int,
        num_rounds: int | None = None,
    ) -> None:
        super().__init__(n, f, input_value, self_port)
        self.num_rounds = (n - 1) if num_rounds is None else num_rounds
        if self.num_rounds < 0:
            raise ValueError(f"num_rounds must be non-negative, got {self.num_rounds}")
        self._seen: list[float | None] = [None] * n
        self._seen[self_port] = float(input_value)
        self._round = 0
        self._output: float | None = None
        if self.num_rounds == 0:
            self._output = self._decide()

    def _decide(self) -> float:
        values = [v for v in self._seen if v is not None]
        ones = sum(1 for v in values if v >= 0.5)
        return 1.0 if ones * 2 > len(values) else 0.0

    @property
    def value(self) -> float:
        """Current tentative decision."""
        return self._decide() if self._output is None else self._output

    @property
    def phase(self) -> int:
        """Rounds completed."""
        return self._round

    def broadcast(self) -> StateMessage:
        return StateMessage(float(self._seen[self.self_port] or 0.0), self._round)

    def deliver(self, deliveries: list[Delivery]) -> None:
        if self._output is not None:
            return
        for port, message in deliveries:
            self._seen[port] = float(message.value)
        self._round += 1
        if self._round >= self.num_rounds:
            self._output = self._decide()

    def has_output(self) -> bool:
        return self._output is not None

    def output(self) -> float:
        if self._output is None:
            raise RuntimeError(f"not terminated (round {self._round}/{self.num_rounds})")
        return self._output

    def state_key(self) -> tuple:
        return (tuple(self._seen), self._round, self._output)
