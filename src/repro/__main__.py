"""``python -m repro`` runs the scenario CLI (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
