#!/usr/bin/env python3
"""Docs hygiene checker: dead markdown links under docs/ (and the repo
root), exit non-zero on any miss.

Checks every ``[text](target)`` link in ``docs/*.md`` and the top-level
``*.md`` files:

- external targets (``http://``, ``https://``, ``mailto:``) are left
  alone (CI must not depend on the network);
- pure-anchor targets (``#section``) are left alone;
- everything else is treated as a path relative to the linking file's
  directory (any ``#fragment`` stripped) and must exist.

Also verifies rule-id parity between the ``repro.lint`` registry and
``docs/static-analysis.md`` in both directions: every registered rule
must have a ``### `rule-id` `` section on the docs page, and every
such section must name a registered rule -- so the rule set and its
documentation cannot drift apart.

Used two ways: CI runs it as a standalone step, and
``tests/test_docs.py`` runs it inside tier-1 so a dead link fails the
ordinary test suite too.

Usage::

    python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) with no nested parens in the target; images (![..])
# resolve the same way, so the optional leading ! needs no special case.
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> list[Path]:
    """The markdown set under check: docs/*.md plus top-level *.md."""
    files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    files += sorted(root.glob("*.md"))
    return files


def dead_links(root: Path) -> list[str]:
    """All dead relative links, as ``file: target`` strings."""
    problems: list[str] = []
    for path in doc_files(root):
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: {target}")
    return problems


# ### `rule-id` section headings on the static-analysis page.
_RULE_HEADING = re.compile(r"^### `([a-z][a-z0-9-]*)`\s*$", re.MULTILINE)


def lint_rule_parity(root: Path) -> list[str]:
    """Registry vs docs/static-analysis.md rule-id drift, both ways."""
    page = root / "docs" / "static-analysis.md"
    if not page.is_file():
        return [f"missing docs page: {page.relative_to(root)}"]
    sys.path.insert(0, str(root / "src"))
    try:
        from repro.lint.registry import known_ids
    finally:
        sys.path.pop(0)
    registered = known_ids()
    documented = set(_RULE_HEADING.findall(page.read_text()))
    problems = [
        f"rule {rule_id!r} is registered but has no section in {page.name}"
        for rule_id in sorted(registered - documented)
    ]
    problems += [
        f"{page.name} documents {rule_id!r}, which is not a registered rule"
        for rule_id in sorted(documented - registered)
    ]
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    files = doc_files(root)
    problems = dead_links(root)
    for problem in problems:
        print(f"dead link: {problem}")
    parity = lint_rule_parity(root)
    for problem in parity:
        print(f"rule parity: {problem}")
    problems += parity
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if problems else 'OK'} ({len(problems)} problems)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
