#!/usr/bin/env python3
"""Docs hygiene checker: dead markdown links under docs/ (and the repo
root), exit non-zero on any miss.

Checks every ``[text](target)`` link in ``docs/*.md`` and the top-level
``*.md`` files:

- external targets (``http://``, ``https://``, ``mailto:``) are left
  alone (CI must not depend on the network);
- pure-anchor targets (``#section``) are left alone;
- everything else is treated as a path relative to the linking file's
  directory (any ``#fragment`` stripped) and must exist.

Used two ways: CI runs it as a standalone step, and
``tests/test_docs.py`` runs it inside tier-1 so a dead link fails the
ordinary test suite too.

Usage::

    python tools/check_docs.py [repo_root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

# [text](target) with no nested parens in the target; images (![..])
# resolve the same way, so the optional leading ! needs no special case.
_LINK = re.compile(r"\[[^\]]*\]\(([^()\s]+)\)")

_EXTERNAL = ("http://", "https://", "mailto:")


def doc_files(root: Path) -> list[Path]:
    """The markdown set under check: docs/*.md plus top-level *.md."""
    files = sorted((root / "docs").glob("*.md")) if (root / "docs").is_dir() else []
    files += sorted(root.glob("*.md"))
    return files


def dead_links(root: Path) -> list[str]:
    """All dead relative links, as ``file: target`` strings."""
    problems: list[str] = []
    for path in doc_files(root):
        text = path.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL) or target.startswith("#"):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(root)}: {target}")
    return problems


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = Path(argv[0]).resolve() if argv else Path(__file__).resolve().parent.parent
    files = doc_files(root)
    problems = dead_links(root)
    for problem in problems:
        print(f"dead link: {problem}")
    print(f"checked {len(files)} markdown files: "
          f"{'FAIL' if problems else 'OK'} ({len(problems)} dead links)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
