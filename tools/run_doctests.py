#!/usr/bin/env python
"""Run doctests for modules imported *canonically*, by dotted name.

``python -m doctest path/to/file.py`` imports the file as a flat
top-level module outside its package, so a module the package has
already pulled in (``repro/__init__`` imports ``repro.workloads``)
executes a second time under a different name. For modules with
import-time side effects -- the scenario registry's module-level
registrations -- that second execution trips the
duplicate-registration guard by design. Importing by module name runs
each module exactly once, the way production code sees it.

Usage: PYTHONPATH=src python tools/run_doctests.py repro.workloads ...
"""

from __future__ import annotations

import doctest
import importlib
import sys


def main(names: list[str]) -> int:
    if not names:
        print("usage: run_doctests.py MODULE [MODULE ...]", file=sys.stderr)
        return 2
    failed = 0
    for name in names:
        module = importlib.import_module(name)
        result = doctest.testmod(module)
        print(f"{name}: {result.attempted} examples, {result.failed} failed")
        failed += result.failed
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
