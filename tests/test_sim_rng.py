"""Unit tests for repro.sim.rng: the determinism discipline."""

import pytest

from repro.sim.rng import child_rng, derive_seed, spawn_inputs


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "adversary") == derive_seed(42, "adversary")

    def test_label_separates_streams(self):
        assert derive_seed(42, "adversary") != derive_seed(42, "inputs")

    def test_root_separates_streams(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_stable_value(self):
        # Pin one derivation: platform-independent reproducibility.
        assert derive_seed(0, "inputs") == derive_seed(0, "inputs")
        assert isinstance(derive_seed(0, "inputs"), int)

    def test_no_label_prefix_collision(self):
        # "1" + "2/x" must differ from "12" + "/x" style collisions.
        assert derive_seed(1, "2/x") != derive_seed(12, "x")


class TestChildRng:
    def test_independent_instances(self):
        a = child_rng(7, "a")
        b = child_rng(7, "a")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_differ(self):
        a = child_rng(7, "a")
        b = child_rng(7, "b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestSpawnInputs:
    def test_count_and_range(self):
        xs = spawn_inputs(3, 10)
        assert len(xs) == 10
        assert all(0.0 <= x <= 1.0 for x in xs)

    def test_custom_interval(self):
        xs = spawn_inputs(3, 50, low=2.0, high=5.0)
        assert all(2.0 <= x <= 5.0 for x in xs)

    def test_deterministic(self):
        assert spawn_inputs(11, 6) == spawn_inputs(11, 6)

    def test_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            spawn_inputs(0, 0)
        with pytest.raises(ValueError, match="empty input interval"):
            spawn_inputs(0, 3, low=1.0, high=0.0)
