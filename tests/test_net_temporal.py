"""Unit tests for temporal reachability (the multi-hop probe)."""

import random

import pytest

from repro.net.dynadegree import max_degree_for_window
from repro.net.dynamic import DynamicGraph
from repro.net.generators import cycle_edges, random_edges
from repro.net.graph import DirectedGraph
from repro.net.temporal import (
    check_dynareach,
    max_reach_for_window,
    window_reach_sets,
)


def ring_trace(n, rounds):
    ring = DirectedGraph(n, cycle_edges(n, bidirectional=False))
    dyn = DynamicGraph(n)
    for _ in range(rounds):
        dyn.record(ring)
    return dyn


class TestWindowReachSets:
    def test_single_round_is_direct_links_plus_self(self):
        g = DirectedGraph(4, [(0, 1), (2, 1)])
        reach = window_reach_sets([g])
        assert reach[1] == {0, 1, 2}
        assert reach[0] == {0}

    def test_two_hop_journey_over_two_rounds(self):
        # 0 -> 1 in round 0, 1 -> 2 in round 1: origin 0 reaches node 2.
        r0 = DirectedGraph(3, [(0, 1)])
        r1 = DirectedGraph(3, [(1, 2)])
        reach = window_reach_sets([r0, r1])
        assert 0 in reach[2]

    def test_journeys_respect_time_order(self):
        # Reversed rounds: 1 -> 2 happens before 0 -> 1, so origin 0
        # cannot reach node 2.
        r0 = DirectedGraph(3, [(1, 2)])
        r1 = DirectedGraph(3, [(0, 1)])
        reach = window_reach_sets([r0, r1])
        assert 0 not in reach[2]
        assert 0 in reach[1]

    def test_directed_ring_reach_grows_one_hop_per_round(self):
        n = 6
        trace = ring_trace(n, n)
        for window in range(1, n):
            reach = window_reach_sets(trace.window(0, window))
            # Node v is reached by its `window` ring predecessors.
            assert len(reach[0] - {0}) == min(window, n - 1)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="at least one round"):
            window_reach_sets([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="mixes graphs"):
            window_reach_sets([DirectedGraph(3), DirectedGraph(4)])


class TestCheckDynaReach:
    def test_ring_reach_vs_degree_gap(self):
        # The static directed ring: dynaDegree is stuck at 1 for every
        # window, but dynaReach climbs to n-1 -- the multi-hop gap.
        n = 6
        trace = ring_trace(n, 2 * n)
        assert max_degree_for_window(trace, n) == 1
        assert max_reach_for_window(trace, n - 1) == n - 1
        assert check_dynareach(trace, n - 1, n - 1).holds
        assert not check_dynareach(trace, 2, 3).holds

    def test_reach_dominates_degree_on_random_traces(self):
        rng = random.Random(5)
        for _ in range(10):
            n = rng.randint(3, 7)
            dyn = DynamicGraph(n)
            for _ in range(6):
                dyn.record(DirectedGraph(n, random_edges(n, 0.3, rng)))
            for window in (1, 2, 4):
                assert max_reach_for_window(dyn, window) >= max_degree_for_window(
                    dyn, window
                )

    def test_single_round_reach_equals_degree(self):
        rng = random.Random(9)
        dyn = DynamicGraph(5)
        for _ in range(4):
            dyn.record(DirectedGraph(5, random_edges(5, 0.4, rng)))
        assert max_reach_for_window(dyn, 1) == max_degree_for_window(dyn, 1)

    def test_parameter_validation(self):
        trace = ring_trace(4, 4)
        with pytest.raises(ValueError, match="T must be >= 1"):
            check_dynareach(trace, 0, 1)
        with pytest.raises(ValueError, match="D must be in"):
            check_dynareach(trace, 1, 4)

    def test_fault_free_restriction(self):
        # A node with no in-links ever fails reach 1; excluding it
        # rescues the property.
        dyn = DynamicGraph(3)
        for _ in range(3):
            dyn.record(DirectedGraph(3, [(0, 1), (1, 0)]))
        assert not check_dynareach(dyn, 2, 1).holds
        assert check_dynareach(dyn, 2, 1, fault_free=[0, 1]).holds

    def test_vacuous_short_trace(self):
        verdict = check_dynareach(ring_trace(4, 2), 5, 2)
        assert verdict.holds and verdict.vacuous
