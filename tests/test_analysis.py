"""Unit tests for the analysis package (verdicts, convergence, stats)."""

import math

import pytest

from repro.analysis.agreement import cross_group_gap, groupwise_spread, judge_outputs
from repro.analysis.convergence import (
    fit_geometric_rate,
    phases_until,
    summarize_rates,
)
from repro.analysis.statistics import mean_confidence_interval, summarize


class TestJudgeOutputs:
    def test_agreeing_valid_outputs(self):
        verdict = judge_outputs(
            {0: 0.50, 1: 0.51}, {0: 0.0, 1: 1.0}, epsilon=0.05
        )
        assert verdict.correct
        assert verdict.spread == pytest.approx(0.01)
        assert verdict.hull == (0.0, 1.0)

    def test_disagreement_detected(self):
        verdict = judge_outputs({0: 0.0, 1: 1.0}, {0: 0.0, 1: 1.0}, epsilon=0.1)
        assert not verdict.epsilon_agreement
        assert verdict.validity

    def test_validity_violation_detected(self):
        verdict = judge_outputs({0: 1.5}, {0: 0.0, 1: 1.0}, epsilon=1.0)
        assert not verdict.validity
        assert not verdict.correct

    def test_boundary_outputs_are_valid(self):
        verdict = judge_outputs({0: 0.0, 1: 1.0}, {0: 0.0, 1: 1.0}, epsilon=2.0)
        assert verdict.validity

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            judge_outputs({}, {0: 0.5}, 0.1)
        with pytest.raises(ValueError):
            judge_outputs({0: 0.5}, {}, 0.1)


class TestGroupAnalysis:
    def test_groupwise_spread(self):
        outputs = {0: 0.0, 1: 0.02, 2: 1.0, 3: 0.98}
        spreads = groupwise_spread(
            outputs, {"a": frozenset({0, 1}), "b": frozenset({2, 3})}
        )
        assert spreads["a"] == pytest.approx(0.02)
        assert spreads["b"] == pytest.approx(0.02)

    def test_groupwise_ignores_missing_nodes(self):
        spreads = groupwise_spread({0: 0.5}, {"a": frozenset({0, 9})})
        assert spreads["a"] == 0.0

    def test_cross_group_gap(self):
        outputs = {0: 0.0, 1: 0.1, 2: 0.9, 3: 1.0}
        gap = cross_group_gap(outputs, frozenset({0, 1}), frozenset({2, 3}))
        assert gap == pytest.approx(0.8)

    def test_cross_group_gap_empty_side(self):
        assert cross_group_gap({0: 0.5}, frozenset({0}), frozenset({9})) == 0.0


class TestConvergence:
    def test_summarize_rates(self):
        stats = summarize_rates([0.5, 0.4, 0.6])
        assert stats["max"] == 0.6
        assert stats["min"] == 0.4
        assert stats["mean"] == pytest.approx(0.5)
        assert stats["phases"] == 3.0

    def test_summarize_empty(self):
        assert summarize_rates([])["phases"] == 0.0

    def test_fit_recovers_geometric_decay(self):
        series = [1.0 * 0.5**p for p in range(8)]
        assert fit_geometric_rate(series) == pytest.approx(0.5, rel=1e-9)

    def test_fit_needs_two_points(self):
        assert fit_geometric_rate([1.0]) is None
        assert fit_geometric_rate([0.0, 0.0]) is None

    def test_fit_ignores_collapsed_tail(self):
        series = [1.0, 0.5, 0.25, 0.0, 0.0]
        assert fit_geometric_rate(series) == pytest.approx(0.5, rel=1e-9)

    def test_phases_until(self):
        assert phases_until([1.0, 0.4, 0.1], 0.4) == 1
        assert phases_until([1.0, 0.9], 0.1) is None


class TestStatistics:
    def test_mean_ci_basic(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert low < mean < high

    def test_single_sample_degenerate(self):
        mean, low, high = mean_confidence_interval([5.0])
        assert mean == low == high == 5.0

    def test_known_width(self):
        samples = [0.0, 2.0]  # mean 1, s = sqrt(2), se = 1
        mean, low, high = mean_confidence_interval(samples, confidence=0.95)
        assert high - mean == pytest.approx(1.96, rel=1e-3)

    def test_summary_object(self):
        s = summarize([1.0, 1.0, 1.0])
        assert s.mean == 1.0
        assert s.std == 0.0
        assert s.count == 3
        assert "n=3" in str(s)

    def test_std_is_sample_std(self):
        s = summarize([0.0, 2.0])
        assert s.std == pytest.approx(math.sqrt(2.0))

    def test_validation(self):
        with pytest.raises(ValueError, match="empty"):
            mean_confidence_interval([])
        with pytest.raises(ValueError, match="confidence"):
            mean_confidence_interval([1.0], confidence=0.5)
