"""Tests for the one-step-lookahead adversary.

The headline assertion: even an adversary that *simulates the
algorithm's response* before choosing links cannot push DAC past the
proven worst case -- rate stays <= 1/2 and correctness holds.
"""

import pytest

from repro.adversary.greedy import LookaheadQuorumAdversary
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.crash import CrashEvent
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus


def run_dac_against(adversary, n=9, f=0, fault_plan=None, seed=5, max_rounds=200):
    ports = random_ports(n, child_rng(seed, "ports"))
    inputs = spawn_inputs(seed, n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    procs = {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-3)
        for v in plan.non_byzantine
    }
    return run_consensus(
        procs,
        adversary,
        ports,
        epsilon=1e-3,
        f=f,
        fault_plan=plan,
        max_rounds=max_rounds,
    )


class TestConstruction:
    def test_objective_validated(self):
        with pytest.raises(ValueError, match="objective"):
            LookaheadQuorumAdversary(3, objective="chaos")

    def test_portfolio_validated(self):
        with pytest.raises(ValueError, match="portfolio"):
            LookaheadQuorumAdversary(3, portfolio=())

    def test_promise(self):
        assert LookaheadQuorumAdversary(4).promised_dynadegree() == (1, 4)


class TestBehaviour:
    def test_keeps_its_promise(self):
        adv = LookaheadQuorumAdversary(4)
        report = run_dac_against(adv)
        assert report.dynadegree_verified is True
        trace = report.trace.dynamic_graph()
        assert check_dynadegree(trace, 1, 4).holds

    def test_cannot_beat_the_half_rate(self):
        # The tightness claim with teeth: simulated-lookahead search
        # still contracts at most 1/2 per phase.
        adv = LookaheadQuorumAdversary(4, objective="max_range")
        report = run_dac_against(adv)
        assert report.correct, report.summary()
        assert report.convergence_rates
        for rate in report.convergence_rates:
            assert rate <= 0.5 + 1e-9

    def test_discovers_the_nearest_policy(self):
        # Against midpoint averaging, nearest-value delivery maximizes
        # retained range; the search should figure that out on its own.
        adv = LookaheadQuorumAdversary(4, objective="max_range")
        run_dac_against(adv)
        assert adv.chosen_policies
        nearest_share = adv.chosen_policies.count("nearest") / len(adv.chosen_policies)
        assert nearest_share >= 0.5

    def test_min_progress_objective_still_cannot_block(self):
        # With (1, D) delivered every round, progress is unavoidable:
        # the run still terminates within p_end + slack rounds.
        adv = LookaheadQuorumAdversary(4, objective="min_progress")
        report = run_dac_against(adv)
        assert report.correct
        assert report.rounds <= 12

    def test_correct_with_crashes(self):
        n, f = 9, 4
        plan = FaultPlan(n, crashes={v: CrashEvent(v, 1 + v) for v in range(5, 9)})
        adv = LookaheadQuorumAdversary(4)
        report = run_dac_against(adv, f=f, fault_plan=plan)
        assert report.correct, report.summary()


class TestOverlayReplacesDeepcopy:
    def test_candidate_loop_never_deepcopies(self, monkeypatch):
        # The acceptance contract of the Topology PR: candidate
        # evaluation runs against the copy-on-write overlay, not
        # per-candidate process deep copies.
        import copy as copy_module

        def forbidden(*args, **kwargs):  # pragma: no cover - should not run
            raise AssertionError("copy.deepcopy called in the candidate loop")

        monkeypatch.setattr(copy_module, "deepcopy", forbidden)
        adv = LookaheadQuorumAdversary(4)
        report = run_dac_against(adv, max_rounds=6)
        assert report.rounds == 6

    def test_overlay_leaves_live_state_untouched_between_rounds(self):
        # Choosing must not perturb the real processes: two engines,
        # one under lookahead and one replaying its chosen graphs,
        # stay in lockstep (indirectly asserted by determinism tests);
        # here we pin the direct invariant that a single choose() call
        # is state-neutral.
        from repro.sim.engine import Engine, EngineView

        n = 9
        ports = random_ports(n, child_rng(3, "ports"))
        inputs = spawn_inputs(3, n)
        procs = {
            v: DACProcess(n, 0, inputs[v], ports.self_port(v), epsilon=1e-3)
            for v in range(n)
        }
        adv = LookaheadQuorumAdversary(4)
        engine = Engine(procs, adv, ports, record_trace=False)
        before = {v: proc.state_key() for v, proc in engine.processes.items()}
        broadcasts = {v: proc.broadcast() for v, proc in engine.processes.items()}
        adv.choose(0, EngineView(engine, 0, broadcasts))
        after = {v: proc.state_key() for v, proc in engine.processes.items()}
        assert after == before


class TestStateOverlayExactness:
    def test_restore_preserves_attribute_aliasing_and_drops_new_attrs(self):
        from repro.adversary.greedy import _StateOverlay

        class Proc:
            def __init__(self):
                self.shared = [1, 2]
                self.alias = self.shared  # two names, one container
                self.scalar = 0.5

        proc = Proc()
        overlay = _StateOverlay({0: proc})
        proc.shared.append(3)
        proc.scalar = 9.9
        proc.lazily_added = ["leak"]
        overlay.restore()
        assert proc.shared == [1, 2] and proc.scalar == 0.5
        assert proc.alias is proc.shared  # aliasing survives the rewind
        assert not hasattr(proc, "lazily_added")
        # A second candidate gets an equally pristine rewind.
        proc.alias.append(4)
        overlay.restore()
        assert proc.shared == [1, 2] and proc.alias is proc.shared
