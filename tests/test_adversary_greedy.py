"""Tests for the one-step-lookahead adversary.

The headline assertion: even an adversary that *simulates the
algorithm's response* before choosing links cannot push DAC past the
proven worst case -- rate stays <= 1/2 and correctness holds.
"""

import pytest

from repro.adversary.greedy import LookaheadQuorumAdversary
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.crash import CrashEvent
from repro.net.dynadegree import check_dynadegree
from repro.net.ports import random_ports
from repro.sim.rng import child_rng, spawn_inputs
from repro.sim.runner import run_consensus


def run_dac_against(adversary, n=9, f=0, fault_plan=None, seed=5, max_rounds=200):
    ports = random_ports(n, child_rng(seed, "ports"))
    inputs = spawn_inputs(seed, n)
    plan = fault_plan or FaultPlan.fault_free_plan(n)
    procs = {
        v: DACProcess(n, f, inputs[v], ports.self_port(v), epsilon=1e-3)
        for v in plan.non_byzantine
    }
    return run_consensus(
        procs,
        adversary,
        ports,
        epsilon=1e-3,
        f=f,
        fault_plan=plan,
        max_rounds=max_rounds,
    )


class TestConstruction:
    def test_objective_validated(self):
        with pytest.raises(ValueError, match="objective"):
            LookaheadQuorumAdversary(3, objective="chaos")

    def test_portfolio_validated(self):
        with pytest.raises(ValueError, match="portfolio"):
            LookaheadQuorumAdversary(3, portfolio=())

    def test_promise(self):
        assert LookaheadQuorumAdversary(4).promised_dynadegree() == (1, 4)


class TestBehaviour:
    def test_keeps_its_promise(self):
        adv = LookaheadQuorumAdversary(4)
        report = run_dac_against(adv)
        assert report.dynadegree_verified is True
        trace = report.trace.dynamic_graph()
        assert check_dynadegree(trace, 1, 4).holds

    def test_cannot_beat_the_half_rate(self):
        # The tightness claim with teeth: simulated-lookahead search
        # still contracts at most 1/2 per phase.
        adv = LookaheadQuorumAdversary(4, objective="max_range")
        report = run_dac_against(adv)
        assert report.correct, report.summary()
        assert report.convergence_rates
        for rate in report.convergence_rates:
            assert rate <= 0.5 + 1e-9

    def test_discovers_the_nearest_policy(self):
        # Against midpoint averaging, nearest-value delivery maximizes
        # retained range; the search should figure that out on its own.
        adv = LookaheadQuorumAdversary(4, objective="max_range")
        run_dac_against(adv)
        assert adv.chosen_policies
        nearest_share = adv.chosen_policies.count("nearest") / len(adv.chosen_policies)
        assert nearest_share >= 0.5

    def test_min_progress_objective_still_cannot_block(self):
        # With (1, D) delivered every round, progress is unavoidable:
        # the run still terminates within p_end + slack rounds.
        adv = LookaheadQuorumAdversary(4, objective="min_progress")
        report = run_dac_against(adv)
        assert report.correct
        assert report.rounds <= 12

    def test_correct_with_crashes(self):
        n, f = 9, 4
        plan = FaultPlan(n, crashes={v: CrashEvent(v, 1 + v) for v in range(5, 9)})
        adv = LookaheadQuorumAdversary(4)
        report = run_dac_against(adv, f=f, fault_plan=plan)
        assert report.correct, report.summary()
