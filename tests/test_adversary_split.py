"""Unit tests for the partitioning adversaries (Theorems 9 and 10)."""

import pytest

from repro.adversary.split import (
    IsolateThenConnectAdversary,
    ReceiveSetsAdversary,
    SplitGroupsAdversary,
    halves_partition,
    theorem10_groups,
)
from repro.faults.base import FaultPlan
from repro.net.graph import DirectedGraph
from repro.sim.rng import child_rng


def setup(adversary, n):
    adversary.setup(n, FaultPlan.fault_free_plan(n), child_rng(0, "adv"))
    return adversary


class TestSplitGroups:
    def test_groups_isolated(self):
        adv = setup(SplitGroupsAdversary([{0, 1, 2}, {3, 4, 5}]), 6)
        g = adv.choose(0, None)
        assert (0, 1) in g and (3, 4) in g
        assert (0, 3) not in g and (4, 1) not in g

    def test_promise_reflects_group_degree(self):
        adv = setup(SplitGroupsAdversary([{0, 1, 2}, {3, 4, 5}]), 6)
        assert adv.promised_dynadegree() == (1, 2)

    def test_needs_groups(self):
        with pytest.raises(ValueError, match="at least one group"):
            SplitGroupsAdversary([])

    def test_out_of_range_group_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            setup(SplitGroupsAdversary([{0, 9}]), 3)

    def test_static_over_time(self):
        adv = setup(SplitGroupsAdversary([{0, 1}, {2, 3}]), 4)
        assert adv.choose(0, None) == adv.choose(17, None)


class TestReceiveSets:
    def test_listening_sets_enforced(self):
        adv = setup(
            ReceiveSetsAdversary({0: {1, 2}, 1: {0}, 2: {0, 1}}),
            3,
        )
        g = adv.choose(0, None)
        assert g.in_neighbors(0) == {1, 2}
        assert g.in_neighbors(1) == {0}
        assert g.in_neighbors(2) == {0, 1}

    def test_unlisted_node_hears_everyone(self):
        adv = setup(ReceiveSetsAdversary({0: {1}}), 3)
        g = adv.choose(0, None)
        assert g.in_neighbors(2) == {0, 1}

    def test_promise_is_min_listening_degree(self):
        adv = setup(ReceiveSetsAdversary({0: {1, 2}, 1: {0}}), 3)
        assert adv.promised_dynadegree() == (1, 1)

    def test_self_in_receive_set_ignored(self):
        adv = setup(ReceiveSetsAdversary({0: {0, 1}}), 2)
        g = adv.choose(0, None)
        assert g.in_neighbors(0) == {1}

    def test_out_of_range_sender_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            setup(ReceiveSetsAdversary({0: {7}}), 3)


class TestIsolateThenConnect:
    def test_phases(self):
        adv = setup(IsolateThenConnectAdversary([{0, 1}, {2, 3}], 3), 4)
        assert (0, 2) not in adv.choose(0, None)
        assert (0, 2) not in adv.choose(2, None)
        assert adv.choose(3, None) == DirectedGraph.complete(4)
        assert adv.choose(99, None) == DirectedGraph.complete(4)

    def test_promise(self):
        adv = setup(IsolateThenConnectAdversary([{0, 1}, {2, 3}], 5), 4)
        assert adv.promised_dynadegree() == (6, 3)

    def test_negative_isolation_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            IsolateThenConnectAdversary([{0}], -1)

    def test_zero_isolation_means_always_complete(self):
        adv = setup(IsolateThenConnectAdversary([{0, 1}, {2, 3}], 0), 4)
        assert adv.choose(0, None) == DirectedGraph.complete(4)


class TestPartitionHelpers:
    def test_halves_even(self):
        a, b = halves_partition(8)
        assert a == frozenset(range(4))
        assert b == frozenset(range(4, 8))

    def test_halves_odd(self):
        a, b = halves_partition(7)
        assert len(a) == 3 and len(b) == 4
        assert a | b == frozenset(range(7))

    def test_theorem10_groups_structure(self):
        for f in (1, 2, 3):
            n = 5 * f + 1
            a, b, byz = theorem10_groups(n, f)
            assert len(a) == (n + 3 * f) // 2
            assert len(a & b) == 3 * f
            assert len(byz) == f
            assert byz <= (a & b)
            assert a | b == frozenset(range(n))

    def test_theorem10_needs_enough_nodes(self):
        with pytest.raises(ValueError, match="3f"):
            theorem10_groups(3, 1)
