"""Unit tests for EngineView -- the adversary's window into the system."""

from repro.adversary.base import MessageAdversary, StaticAdversary
from repro.core.dac import DACProcess
from repro.faults.base import FaultPlan
from repro.faults.byzantine import FixedValueByzantine
from repro.faults.crash import CrashEvent
from repro.net.graph import DirectedGraph
from repro.net.ports import identity_ports
from repro.sim.engine import Engine, EngineView

from tests.helpers import spread_inputs


class ViewProbe(MessageAdversary):
    """Adversary that records what it saw each round."""

    def __init__(self):
        super().__init__()
        self.observations = []

    def choose(self, t, view: EngineView):
        self.observations.append(
            {
                "round": view.round,
                "values": [view.value(v) for v in range(view.n)],
                "phases": [view.phase(v) for v in range(view.n)],
                "max_phase": view.max_fault_free_phase(),
                "live": view.live_senders(),
                "undecided": view.undecided_fault_free(),
                "broadcast0": view.broadcast_of(0),
            }
        )
        return DirectedGraph.complete(self.n)


def build(n=5, plan=None, f=0, epsilon=0.25):
    ports = identity_ports(n)
    plan = plan or FaultPlan.fault_free_plan(n)
    inputs = spread_inputs(n)
    procs = {
        v: DACProcess(n, f, inputs[v], v, epsilon=epsilon)
        for v in plan.non_byzantine
    }
    probe = ViewProbe()
    engine = Engine(procs, probe, ports, fault_plan=plan, f=f)
    return engine, probe


class TestEngineView:
    def test_sees_pre_round_state(self):
        engine, probe = build()
        engine.run(2)
        first = probe.observations[0]
        assert first["round"] == 0
        assert first["values"] == spread_inputs(5)
        assert first["phases"] == [0] * 5

    def test_sees_broadcast_content(self):
        engine, probe = build()
        engine.run(1)
        msg = probe.observations[0]["broadcast0"]
        assert msg.value == 0.0 and msg.phase == 0

    def test_max_phase_advances(self):
        engine, probe = build()
        engine.run(3)
        phases = [obs["max_phase"] for obs in probe.observations]
        assert phases[0] == 0
        assert phases[-1] > 0

    def test_byzantine_nodes_opaque(self):
        plan = FaultPlan(5, byzantine={4: FixedValueByzantine(9.0)})
        engine, probe = build(plan=plan, f=1)
        engine.run(1)
        obs = probe.observations[0]
        assert obs["values"][4] is None
        assert obs["phases"][4] is None

    def test_live_senders_shrink_on_crash(self):
        plan = FaultPlan(5, crashes={3: CrashEvent(3, 1)})
        engine, probe = build(plan=plan, f=1)
        engine.run(2)
        assert 3 in probe.observations[0]["live"]
        assert 3 not in probe.observations[1]["live"]

    def test_undecided_set_empties(self):
        engine, probe = build(epsilon=0.5)  # p_end = 1: fast finish
        engine.run(4)
        assert probe.observations[0]["undecided"] == frozenset(range(5))
        assert probe.observations[-1]["undecided"] == frozenset()

    def test_process_accessor(self):
        engine, _ = build()
        view = EngineView(engine, 0, {})
        assert view.process(0) is engine.processes[0]
        assert view.fault_plan is engine.fault_plan


class TestByzantineInputs:
    def test_byzantine_inputs_forwarded_to_bind(self):
        n = 4
        ports = identity_ports(n)
        strategy = FixedValueByzantine(0.0)
        plan = FaultPlan(n, byzantine={3: strategy})
        procs = {
            v: DACProcess(n, 1, 0.5, v, epsilon=0.25) for v in plan.non_byzantine
        }
        Engine(
            procs,
            StaticAdversary(),
            ports,
            fault_plan=plan,
            f=1,
            byzantine_inputs={3: 0.77},
        )
        assert strategy.input_value == 0.77
