"""Unit tests for repro.net.graph.DirectedGraph."""

import pytest

from repro.net.graph import DirectedGraph


class TestConstruction:
    def test_empty_graph_has_no_edges(self):
        g = DirectedGraph(4)
        assert len(g) == 0
        assert g.n == 4

    def test_single_node_graph_is_legal(self):
        g = DirectedGraph(1)
        assert g.n == 1
        assert len(g) == 0

    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            DirectedGraph(0)

    def test_edges_are_stored(self):
        g = DirectedGraph(3, [(0, 1), (1, 2)])
        assert (0, 1) in g
        assert (1, 2) in g
        assert (2, 0) not in g

    def test_duplicate_edges_collapse(self):
        g = DirectedGraph(3, [(0, 1), (0, 1), (0, 1)])
        assert len(g) == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            DirectedGraph(3, [(1, 1)])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            DirectedGraph(3, [(0, 3)])
        with pytest.raises(ValueError, match="out of range"):
            DirectedGraph(3, [(-1, 0)])

    def test_complete_graph_edge_count(self):
        for n in (1, 2, 3, 7):
            g = DirectedGraph.complete(n)
            assert len(g) == n * (n - 1)

    def test_empty_classmethod(self):
        g = DirectedGraph.empty(5)
        assert len(g) == 0 and g.n == 5


class TestNeighborhoods:
    def test_in_and_out_neighbors_directed(self):
        g = DirectedGraph(3, [(0, 1)])
        assert g.in_neighbors(1) == {0}
        assert g.out_neighbors(0) == {1}
        assert g.in_neighbors(0) == frozenset()
        assert g.out_neighbors(1) == frozenset()

    def test_degrees(self):
        g = DirectedGraph(4, [(0, 3), (1, 3), (2, 3), (3, 0)])
        assert g.in_degree(3) == 3
        assert g.out_degree(3) == 1
        assert g.in_degree(0) == 1
        assert g.in_degree(1) == 0

    def test_complete_graph_degrees(self):
        g = DirectedGraph.complete(6)
        for v in range(6):
            assert g.in_degree(v) == 5
            assert g.out_degree(v) == 5


class TestOperations:
    def test_union_merges_edges(self):
        a = DirectedGraph(3, [(0, 1)])
        b = DirectedGraph(3, [(1, 2)])
        u = a.union(b)
        assert (0, 1) in u and (1, 2) in u
        assert len(u) == 2

    def test_union_size_mismatch_rejected(self):
        with pytest.raises(ValueError, match="union"):
            DirectedGraph(3).union(DirectedGraph(4))

    def test_restrict_targets(self):
        g = DirectedGraph(3, [(0, 1), (0, 2), (1, 2)])
        r = g.restrict_targets([2])
        assert (0, 2) in r and (1, 2) in r and (0, 1) not in r

    def test_without_sources(self):
        g = DirectedGraph(3, [(0, 1), (1, 2), (2, 0)])
        r = g.without_sources([1])
        assert (1, 2) not in r
        assert (0, 1) in r and (2, 0) in r

    def test_subgraph_relation(self):
        small = DirectedGraph(3, [(0, 1)])
        big = DirectedGraph(3, [(0, 1), (1, 2)])
        assert small.is_subgraph_of(big)
        assert not big.is_subgraph_of(small)
        assert not small.is_subgraph_of(DirectedGraph(4, [(0, 1)]))


class TestEqualityAndHashing:
    def test_equal_graphs(self):
        a = DirectedGraph(3, [(0, 1), (1, 2)])
        b = DirectedGraph(3, [(1, 2), (0, 1)])
        assert a == b
        assert hash(a) == hash(b)

    def test_unequal_edge_sets(self):
        assert DirectedGraph(3, [(0, 1)]) != DirectedGraph(3, [(1, 0)])

    def test_unequal_sizes(self):
        assert DirectedGraph(3) != DirectedGraph(4)

    def test_usable_in_sets(self):
        graphs = {DirectedGraph(3, [(0, 1)]), DirectedGraph(3, [(0, 1)])}
        assert len(graphs) == 1

    def test_iteration_yields_edges(self):
        edges = {(0, 1), (2, 1)}
        g = DirectedGraph(3, edges)
        assert set(g) == edges

    def test_repr_mentions_sizes(self):
        assert "n=3" in repr(DirectedGraph(3, [(0, 1)]))
